#!/usr/bin/env python
"""Extending the library with a custom content distribution strategy.

Implements "SUB-LRU": push-time placement by subscription density (like
SUB) combined with plain LRU at access time, registers it under a new
name, and benchmarks it against the paper's strategies on the same
trace — about 60 lines for a complete new strategy.

Run:  python examples/custom_policy.py
"""

from repro import SimulationConfig, make_trace, run_simulation
from repro.cache.entry import CacheEntry, ACCESS_MODULE, PUSH_MODULE
from repro.core._base import HeapCache
from repro.core.policy import Policy, PushOutcome, RequestOutcome
from repro.core.registry import register_strategy
from repro.core.values import sub_value


class SubLRUPolicy(Policy):
    """SUB-valued pushes, LRU-valued accesses, one shared cache."""

    name = "sub-lru"

    def __init__(self, capacity_bytes: int, cost: float = 1.0) -> None:
        super().__init__(capacity_bytes, cost)
        self._cache = HeapCache(capacity_bytes)

    def _entry_value(self, entry: CacheEntry, now: float) -> float:
        if entry.access_count == 0:
            # Never-read pushed pages rank by subscription density,
            # scaled to compete with recency timestamps.
            return sub_value(entry.match_count, entry.cost, entry.size)
        return now  # LRU: most recent access wins

    def on_publish(self, page_id, version, size, match_count, now):
        existing = self._cache.get(page_id)
        if existing is not None:
            if existing.version == version:
                return PushOutcome(stored=False)
            existing.version = version
            existing.match_count = match_count
            self.stats.record_push(stored=True, size=size, transferred=True)
            return PushOutcome(stored=True, refreshed=True)
        entry = CacheEntry(
            page_id=page_id, version=version, size=size, cost=self.cost,
            match_count=match_count, module=PUSH_MODULE, last_access_time=now,
        )
        value = self._entry_value(entry, now)
        result = self._cache.evict_cheaper_for(size, threshold=value)
        if not result.success:
            self.stats.record_push(stored=False, size=size, transferred=False)
            return PushOutcome(stored=False)
        for evicted in result.evicted:
            self.stats.record_eviction(evicted.size)
        self._cache.add(entry, value)
        self.stats.record_push(stored=True, size=size, transferred=True)
        return PushOutcome(stored=True)

    def on_request(self, page_id, version, size, match_count, now):
        entry = self._cache.get(page_id)
        if entry is not None:
            stale = entry.version != version
            entry.version = version
            entry.record_access(now)
            self._cache.reprice(entry, self._entry_value(entry, now))
            self._record_request(hit=not stale, size=size, now=now, stale=stale)
            return RequestOutcome(hit=not stale, stale=stale, cached_after=True)
        self._record_request(hit=False, size=size, now=now)
        result = self._cache.evict_for(size)
        if not result.success:
            return RequestOutcome(hit=False, cached_after=False)
        for evicted in result.evicted:
            self.stats.record_eviction(evicted.size)
        entry = CacheEntry(
            page_id=page_id, version=version, size=size, cost=self.cost,
            match_count=match_count, access_count=1, module=ACCESS_MODULE,
            last_access_time=now,
        )
        self._cache.add(entry, self._entry_value(entry, now))
        return RequestOutcome(hit=False, cached_after=True)

    def contains(self, page_id):
        return page_id in self._cache

    def cached_version(self, page_id):
        entry = self._cache.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self):
        return self._cache.used_bytes

    def check_invariants(self):
        self._cache.check_invariants()


def main() -> None:
    register_strategy("sub-lru", SubLRUPolicy)

    trace = make_trace("news", scale=0.05, seed=7)
    print(f"Comparing strategies on {trace.request_count} requests:\n")
    for strategy in ("gdstar", "sub", "sg2", "sub-lru"):
        result = run_simulation(
            trace, SimulationConfig(strategy=strategy, capacity_fraction=0.05)
        )
        print(result.summary())


if __name__ == "__main__":
    main()
