#!/usr/bin/env python
"""The paper's news-delivery scenario end to end.

Reproduces the §5.3 comparison (Figure 4) at a configurable scale:
every strategy from Table 1, three cache-capacity settings, both the
NEWS (α = 1.5) and ALTERNATIVE (α = 1.0) traces, plus the Table 2
relative improvements.

Run:  python examples/news_site.py [--scale 0.1] [--seed 7] [--full]
"""

import argparse

from repro.experiments.figures import figure4
from repro.experiments.tables import table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale (1.0 = the paper's 195k-request trace)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--full",
        action="store_true",
        help="shorthand for --scale 1.0 (several minutes of runtime)",
    )
    args = parser.parse_args()
    scale = 1.0 if args.full else args.scale

    print(f"Running the Figure 4 grid at scale {scale:g} (seed {args.seed})…\n")
    for panel in figure4(scale=scale, seed=args.seed).values():
        print(panel.text)
        print()

    print("Table 2 — relative improvement over the GD* baseline:\n")
    print(table2(scale=scale, seed=args.seed).text)


if __name__ == "__main__":
    main()
