#!/usr/bin/env python
"""How much does subscription accuracy matter?  (the paper's Fig. 5)

Sweeps the subscription quality SQ — the probability that a subscriber
actually reads a matched page — and shows how each strategy's hit ratio
responds.  SR leans entirely on the subscription-based demand estimate
and collapses first; SG1 and DC-LAP blend in access history and stay
robust; GD* ignores subscriptions and is flat.

Run:  python examples/subscription_quality.py [--scale 0.1]
"""

import argparse

from repro.experiments.report import render_table
from repro.experiments.runner import run_cell
from repro.experiments.spec import CellKey

STRATEGIES = ("gdstar", "sub", "sg1", "sg2", "sr", "dc-lap")
QUALITIES = (0.25, 0.5, 0.75, 1.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    rows = {}
    for strategy in STRATEGIES:
        row = []
        for quality in QUALITIES:
            result = run_cell(
                CellKey("news", strategy, 0.05, sq=quality),
                scale=args.scale,
                seed=args.seed,
            )
            row.append(100.0 * result.hit_ratio)
        rows[strategy] = row
        print(f"  {strategy}: done")

    print()
    print(
        render_table(
            "Hit ratio (%) vs subscription quality (NEWS, capacity 5 %)",
            [f"SQ={q:g}" for q in QUALITIES],
            rows,
        )
    )
    most_sensitive = max(rows, key=lambda s: rows[s][-1] - rows[s][0])
    print(
        f"\nMost SQ-sensitive strategy: {most_sensitive} "
        f"(+{rows[most_sensitive][-1] - rows[most_sensitive][0]:.1f} points "
        f"from SQ=0.25 to SQ=1)"
    )


if __name__ == "__main__":
    main()
