#!/usr/bin/env python
"""Quickstart: compare subscription-aware distribution with pure caching.

Generates a small NEWS-style trace (the paper's §4 workload at 5 % of
full size), runs the access-only GD* baseline and the best combined
strategy SG2 on identical inputs, and prints the paper's metrics.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, make_trace, run_simulation


def main() -> None:
    trace = make_trace("news", scale=0.05, seed=7)
    print(
        f"Trace: {trace.label} — {len(trace.pages)} pages, "
        f"{trace.publish_count} publish events, "
        f"{trace.request_count} requests, "
        f"{trace.config.server_count} proxy servers over 7 days\n"
    )

    results = {}
    for strategy in ("gdstar", "sg2"):
        config = SimulationConfig(strategy=strategy, capacity_fraction=0.05)
        results[strategy] = run_simulation(trace, config)
        print(results[strategy].summary())

    baseline = results["gdstar"].hit_ratio
    combined = results["sg2"].hit_ratio
    print(
        f"\nSG2 (push-time + access-time placement from subscriptions and "
        f"access patterns)\nimproves the global hit ratio by "
        f"{100 * (combined / baseline - 1):.0f}% over access-based caching "
        f"alone."
    )


if __name__ == "__main__":
    main()
