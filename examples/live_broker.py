#!/usr/bin/env python
"""A live publish/subscribe system on the DES kernel — no trace files.

Unlike the paper-reproduction experiments (which replay generated
traces), this example wires the *real* components together:

* explicit subscribers with topic and keyword predicates,
* a :class:`~repro.pubsub.broker.Broker` with a counting matching
  engine and shortest-path notification routing over a Waxman topology,
* per-proxy SG2 content distribution policies,
* generator-based processes on :class:`repro.sim.Environment`: a
  publisher process emits breaking-news pages, subscriber processes
  react to notifications after a think time and read through their
  proxy's cache.

Run:  python examples/live_broker.py
"""

import numpy as np

from repro.core import make_policy
from repro.network.topology import build_topology
from repro.pubsub.broker import Broker
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import Subscription, keyword_any, topic_is
from repro.sim.engine import Environment
from repro.sim.resources import Store

TOPICS = ["politics", "sports", "tech", "world"]
KEYWORDS = ["election", "playoffs", "chips", "summit", "markets", "launch"]
PROXY_COUNT = 4
SUBSCRIBERS_PER_PROXY = 5
PAGE_COUNT = 60
HOUR = 3600.0


def build_subscribers(broker, rng):
    """Flow 1 of Fig. 1: users announce their interests."""
    inboxes = {}
    for proxy_id in range(PROXY_COUNT):
        for user in range(SUBSCRIBERS_PER_PROXY):
            subscriber_id = proxy_id * 100 + user
            predicates = [topic_is(TOPICS[rng.integers(len(TOPICS))])]
            if rng.random() < 0.5:
                predicates.append(
                    keyword_any({KEYWORDS[rng.integers(len(KEYWORDS))]})
                )
            broker.subscribe(
                Subscription(
                    subscriber_id=subscriber_id,
                    proxy_id=proxy_id,
                    predicates=tuple(predicates),
                )
            )
            inboxes[subscriber_id] = None  # filled with a Store later
    return inboxes


def main() -> None:
    rng = np.random.default_rng(42)
    env = Environment()

    topology = build_topology(PROXY_COUNT, rng, extra_nodes=4)
    broker = Broker(topology)
    inboxes = build_subscribers(broker, rng)
    for subscriber_id in inboxes:
        inboxes[subscriber_id] = Store(env)

    policies = [
        make_policy("sg2", capacity_bytes=60_000, cost=topology.fetch_cost(i))
        for i in range(PROXY_COUNT)
    ]
    stats = {"notifications": 0, "reads": 0, "local_hits": 0}

    # Content distribution engine: push matched pages into proxy caches
    # and fan notifications out to that proxy's interested subscribers.
    def on_publish(page, version):
        counts = broker.matching.match_counts(page)
        for proxy_id, count in counts.items():
            policies[proxy_id].on_publish(
                page.page_id, version, page.size, count, env.now
            )
        for subscription in broker.matching.matching_subscriptions(page):
            stats["notifications"] += 1
            inboxes[subscription.subscriber_id].put((page, version))

    def publisher_process():
        """Flow 2: the news site publishes pages through the day."""
        for page_id in range(PAGE_COUNT):
            yield env.timeout(float(rng.exponential(0.2 * HOUR)))
            page = Page(
                page_id=page_id,
                size=int(rng.lognormal(9.0, 1.0)) + 200,
                topic=TOPICS[rng.integers(len(TOPICS))],
                keywords=frozenset(
                    {KEYWORDS[rng.integers(len(KEYWORDS))] for _ in range(2)}
                ),
            )
            version = broker.publish(page, at=env.now)
            on_publish(page, version.version)

    def subscriber_process(subscriber_id, proxy_id):
        """Flow 3 consumers: read notified pages after a think time."""
        while True:
            page, version = yield inboxes[subscriber_id].get()
            yield env.timeout(float(rng.exponential(0.5 * HOUR)))
            current = broker.current_version(page.page_id)
            outcome = policies[proxy_id].on_request(
                page.page_id, current, page.size,
                broker.matching.match_counts(page).get(proxy_id, 0), env.now,
            )
            stats["reads"] += 1
            if outcome.hit:
                stats["local_hits"] += 1

    env.process(publisher_process())
    for proxy_id in range(PROXY_COUNT):
        for user in range(SUBSCRIBERS_PER_PROXY):
            env.process(subscriber_process(proxy_id * 100 + user, proxy_id))

    env.run(until=24 * HOUR)

    print(f"published pages          : {broker.published_count}")
    print(f"notifications delivered  : {stats['notifications']}")
    print(f"routed link messages     : {broker.routing.total_messages}")
    print(f"pages read by users      : {stats['reads']}")
    hit_ratio = stats["local_hits"] / max(1, stats["reads"])
    print(f"served from proxy caches : {stats['local_hits']} ({hit_ratio:.0%})")
    for proxy_id, policy in enumerate(policies):
        print(
            f"  proxy {proxy_id}: {policy.stats.requests} requests, "
            f"hit ratio {policy.stats.hit_ratio:.0%}, "
            f"{policy.used_bytes}/{policy.capacity_bytes} bytes used"
        )


if __name__ == "__main__":
    main()
