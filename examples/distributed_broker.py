#!/usr/bin/env python
"""Distributed brokering and cooperative proxies — the scaling story.

Two extensions beyond the paper's centralized evaluation:

1. **Broker tree** (`repro.pubsub.overlay`): the matching engine is
   spread over a shortest-path tree of brokers.  Subscriptions
   aggregate upward with covering (duplicate interests stop at the
   first broker that already forwarded them) and publications descend
   only into branches with matching interests.  The per-proxy match
   counts are *identical* to the centralized engine — the example
   verifies this — while the matching load distributes.

2. **Cooperative proxies** (`repro.system.cooperation`): on a miss, a
   proxy fetches from a strictly-closer peer that holds the current
   version instead of the origin, offloading publisher traffic and
   cutting the modelled response time.

Run:  python examples/distributed_broker.py
"""

import numpy as np

from repro.network.topology import build_topology
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.overlay import BrokerTree
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import Subscription, keyword_any, topic_is
from repro.system import SimulationConfig, run_cooperative_simulation, run_simulation
from repro.workload.presets import make_trace

PROXY_COUNT = 12
TOPICS = ["politics", "sports", "tech", "world", "business"]
WORDS = ["election", "playoffs", "chips", "summit", "markets"]


def broker_tree_demo() -> None:
    rng = np.random.default_rng(3)
    topology = build_topology(PROXY_COUNT, rng, extra_nodes=8)
    tree = BrokerTree(topology)
    flat = MatchingEngine()

    subscriptions = []
    for subscriber in range(300):
        predicates = [topic_is(TOPICS[rng.integers(len(TOPICS))])]
        if rng.random() < 0.5:
            predicates.append(keyword_any({WORDS[rng.integers(len(WORDS))]}))
        subscriptions.append(
            Subscription(
                subscriber_id=subscriber,
                proxy_id=int(rng.integers(PROXY_COUNT)),
                predicates=tuple(predicates),
            )
        )
    control = sum(tree.subscribe(subscription) for subscription in subscriptions)
    for subscription in subscriptions:
        flat.subscribe(subscription)

    mismatches = 0
    for page_id in range(200):
        page = Page(
            page_id=page_id,
            size=1000,
            topic=TOPICS[rng.integers(len(TOPICS))],
            keywords=frozenset({WORDS[rng.integers(len(WORDS))]}),
        )
        if tree.match_counts(page) != flat.match_counts(page):
            mismatches += 1

    load = tree.evaluation_load()
    root_load = load.pop(tree.root.node_id)
    print("== distributed broker tree ==")
    print(f"brokers                     : {tree.broker_count}")
    print(
        f"subscription control msgs   : {control} "
        f"(naive flooding would be {300 * (tree.broker_count - 1)})"
    )
    print(f"publication hop messages    : {tree.total_publication_messages()}")
    print(f"root matching evaluations   : {root_load}")
    print(
        f"non-root evaluations        : total {sum(load.values())}, "
        f"max per broker {max(load.values())}"
    )
    print(f"mismatches vs centralized   : {mismatches} (must be 0)")


def cooperation_demo() -> None:
    trace = make_trace("news", scale=0.1, seed=7)
    config = SimulationConfig(strategy="sg2", capacity_fraction=0.05)
    solo = run_simulation(trace, config)
    print("\n== cooperative proxies (SG2, NEWS, 5% capacity) ==")
    print(
        f"independent : H={solo.hit_ratio:.1%} rt={1000 * solo.mean_response_time:.1f}ms "
        f"origin fetches={solo.fetch_pages}"
    )
    for neighbors in (2, 5, 10):
        coop = run_cooperative_simulation(trace, config, neighbor_count=neighbors)
        misses = coop.fetch_pages + coop.peer_fetch_pages
        offload = coop.peer_fetch_pages / misses if misses else 0.0
        print(
            f"k={neighbors:<2d} peers  : H={coop.hit_ratio:.1%} "
            f"rt={1000 * coop.mean_response_time:.1f}ms "
            f"origin fetches={coop.fetch_pages} "
            f"(peers serve {offload:.0%} of misses)"
        )


if __name__ == "__main__":
    broker_tree_demo()
    cooperation_demo()
