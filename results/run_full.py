"""Run every paper experiment at full scale and dump the renderings."""
import sys, time
from repro.experiments.figures import figure3, figure4, figure5, figure6, figure7, beta_sweep
from repro.experiments.tables import table2

def emit(text):
    print(text, flush=True)

t0 = time.time()
emit("=== Full-scale experiment suite (scale=1.0, seed=7) ===")
emit("\n--- Figure 3 ---"); emit(figure3(scale=1.0).text)
emit("\n--- Figure 4 ---")
for p in figure4(scale=1.0).values(): emit(p.text + "\n")
emit("\n--- Table 2 ---"); emit(table2(scale=1.0).text)
emit("\n--- Figure 5 ---")
for p in figure5(scale=1.0).values(): emit(p.text + "\n")
emit("\n--- Figure 6 ---")
for p in figure6(scale=1.0).values(): emit(p.text + "\n")
emit("\n--- Figure 7 ---")
for p in figure7(scale=1.0).values(): emit(p.text + "\n")
emit("\n--- beta sweep (NEWS) ---"); emit(beta_sweep(scale=1.0).text)
emit("\n--- beta sweep (ALTERNATIVE) ---"); emit(beta_sweep(scale=1.0, trace="alternative").text)
emit(f"\ntotal wall time: {time.time()-t0:.0f}s")
