"""Publish/subscribe brokering substrate.

Implements the three communication streams of the paper's Figure 1:

1. subscribers announce interests (:mod:`repro.pubsub.subscriptions`),
2. producers publish pages (:mod:`repro.pubsub.pages`),
3. the broker matches and notifies (:mod:`repro.pubsub.matching`,
   :mod:`repro.pubsub.routing`, :mod:`repro.pubsub.broker`).

The matching engine supports both topic subscriptions and content-based
attribute predicates, with a counting-based evaluation in the style of
Fabret et al. (SIGMOD 2001): equality predicates resolve through
inverted indexes and a per-event counter array determines which
subscriptions are fully satisfied.

Both :class:`~repro.pubsub.matching.MatchingEngine` and the
:class:`~repro.pubsub.overlay.BrokerTree` leaf engines accept an
optional ``lease_until`` per subscription: leased registrations are
retired lazily during matching (or eagerly by ``expire_leases``),
supporting the subscription-lifecycle layer of the simulator.

The trace-driven simulator only needs *match counts per proxy*
(eq. 7 of the paper constructs these from request counts and the
subscription quality SQ); :class:`~repro.pubsub.matching.MatchingEngine`
and :class:`~repro.pubsub.matching.TraceMatchCounts` both implement the
:class:`~repro.pubsub.matching.MatchCountProvider` protocol so either a
real subscription population or the paper's synthetic construction can
drive the content distribution engine.
"""

from repro.pubsub.pages import Page, PageVersion, Notification
from repro.pubsub.subscriptions import (
    Subscription,
    Predicate,
    attribute_equals,
    attribute_in,
    attribute_range,
    keyword_any,
    keyword_all,
    topic_is,
)
from repro.pubsub.matching import (
    MatchCountProvider,
    MatchingEngine,
    TraceMatchCounts,
)
from repro.pubsub.routing import RoutingEngine, RoutingTable
from repro.pubsub.broker import Broker
from repro.pubsub.overlay import BrokerTree, BrokerNode
from repro.pubsub.population import (
    EngineMatchCounts,
    build_population,
    engine_from_table,
)

__all__ = [
    "Page",
    "PageVersion",
    "Notification",
    "Subscription",
    "Predicate",
    "attribute_equals",
    "attribute_in",
    "attribute_range",
    "keyword_any",
    "keyword_all",
    "topic_is",
    "MatchCountProvider",
    "MatchingEngine",
    "TraceMatchCounts",
    "RoutingEngine",
    "RoutingTable",
    "Broker",
    "BrokerTree",
    "BrokerNode",
    "EngineMatchCounts",
    "build_population",
    "engine_from_table",
]
