"""Materializing subscription tables into explicit populations.

The experiments drive the simulator with eq. 7's *counts*
(`TraceMatchCounts`).  This module closes the loop to a real
publish/subscribe system: it synthesizes an explicit
:class:`~repro.pubsub.subscriptions.Subscription` population whose
match counts are **exactly** a given table, registers it with a
:class:`~repro.pubsub.matching.MatchingEngine` (or a distributed
:class:`~repro.pubsub.overlay.BrokerTree`), and adapts the engine to
the simulator's ``match_counts_by_id`` interface.

Construction: every page carries a topic ``page:<id>`` plus a category
``cat:<page_id mod categories>``; a table entry ``S(i, j) = k`` becomes
``k`` subscribers at proxy ``j``.  Most subscribe to the page topic
directly; with ``category_fraction > 0`` a share subscribe to the
page's *category and* its topic — exercising multi-predicate matching
while preserving exact counts.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.pubsub.matching import MatchingEngine
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import Subscription, attribute_equals, topic_is


def page_topic(page_id: int) -> str:
    """The synthetic topic a page publishes under."""
    return f"page:{page_id}"


def page_category(page_id: int, categories: int = 16) -> str:
    """The synthetic category of a page (stable hash bucket)."""
    return f"cat:{page_id % max(1, categories)}"


def make_page(page_id: int, size: int, categories: int = 16) -> Page:
    """A :class:`Page` carrying the synthetic topic/category metadata."""
    return Page(
        page_id=page_id,
        size=size,
        topic=page_topic(page_id),
        attributes=(("category", page_category(page_id, categories)),),
    )


def build_population(
    table: Mapping[int, Mapping[int, int]],
    rng: np.random.Generator,
    category_fraction: float = 0.25,
    categories: int = 16,
) -> List[Subscription]:
    """Subscriptions whose per-proxy match counts equal ``table``.

    Args:
        table: ``table[page_id][proxy_id] = count`` (eq. 7 output).
        rng: stream deciding which subscribers get the richer
            two-predicate form.
        category_fraction: share of subscribers whose subscription is
            ``category == cat(page) AND topic == page:<id>`` instead of
            the bare topic (same match semantics, more predicates).
        categories: number of category buckets.
    """
    if not 0.0 <= category_fraction <= 1.0:
        raise ValueError(
            f"category_fraction must be in [0, 1], got {category_fraction}"
        )
    population: List[Subscription] = []
    subscriber = 0
    for page_id in sorted(table):
        for proxy_id in sorted(table[page_id]):
            for _ in range(int(table[page_id][proxy_id])):
                predicates: Tuple = (topic_is(page_topic(page_id)),)
                if rng.uniform() < category_fraction:
                    predicates = (
                        attribute_equals(
                            "category", page_category(page_id, categories)
                        ),
                    ) + predicates
                population.append(
                    Subscription(
                        subscriber_id=subscriber,
                        proxy_id=int(proxy_id),
                        predicates=predicates,
                    )
                )
                subscriber += 1
    return population


class EngineMatchCounts:
    """Adapt a live matcher to the simulator's count interface.

    Wraps any object with ``match_counts(page)`` (a
    :class:`MatchingEngine` or a :class:`~repro.pubsub.overlay.BrokerTree`)
    plus the page metadata needed to reconstruct pages from ids, and
    memoizes per page — subscriptions are static, so the counts are
    too.
    """

    def __init__(
        self, engine, sizes: Mapping[int, int], categories: int = 16
    ) -> None:
        self._engine = engine
        self._sizes = dict(sizes)
        self._categories = categories
        self._memo: Dict[int, Dict[int, int]] = {}

    def match_counts(self, page: Page) -> Dict[int, int]:
        return self.match_counts_by_id(page.page_id)

    def match_counts_by_id(self, page_id: int) -> Dict[int, int]:
        counts = self._memo.get(page_id)
        if counts is None:
            page = make_page(
                page_id, self._sizes.get(page_id, 1), self._categories
            )
            # One-pass aggregation when the engine offers it (a
            # MatchingEngine); BrokerTree and other adapters fall back
            # to the per-subscription match_counts path.
            batch = getattr(self._engine, "match_count_vector", None)
            if batch is not None:
                counts = dict(batch(page))
            else:
                counts = dict(self._engine.match_counts(page))
            self._memo[page_id] = counts
        return dict(counts)

    def count_for(self, page_id: int, proxy_id: int) -> int:
        return self.match_counts_by_id(page_id).get(proxy_id, 0)


def engine_from_table(
    table: Mapping[int, Mapping[int, int]],
    sizes: Mapping[int, int],
    rng: np.random.Generator,
    category_fraction: float = 0.25,
) -> EngineMatchCounts:
    """One call from eq. 7 table to a simulator-ready live matcher."""
    engine = MatchingEngine()
    for subscription in build_population(
        table, rng, category_fraction=category_fraction
    ):
        engine.subscribe(subscription)
    return EngineMatchCounts(engine, sizes)
