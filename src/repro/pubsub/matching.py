"""Matching engines.

Two implementations of a single protocol:

* :class:`MatchingEngine` — a real counting-based matcher over explicit
  :class:`~repro.pubsub.subscriptions.Subscription` objects, in the
  style of Fabret et al. (SIGMOD 2001).  Index-friendly predicates
  (topic/equality/membership) resolve through inverted indexes; the
  remaining predicates are evaluated only for subscriptions whose
  indexed part already matched (or that have no indexed part).
* :class:`TraceMatchCounts` — the paper's §4.3 construction: a static
  table of "number of subscriptions at proxy j matching page i",
  derived from request counts and the subscription quality SQ by
  :mod:`repro.workload.subscriptions`.

The content distribution engine only consumes *per-proxy match counts*,
so either implementation can drive a simulation.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Sequence, Set, Tuple

from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import Subscription


class MatchCountProvider(Protocol):
    """Per-proxy subscription match counts for a page."""

    def match_counts(self, page: Page) -> Dict[int, int]:
        """Map proxy_id -> number of matching subscriptions (omit zeros)."""
        ...  # pragma: no cover - protocol


class MatchingEngine:
    """Counting-based content matcher over explicit subscriptions.

    Each subscription is split into an *indexed part* (terms served by
    inverted indexes) and a *residual part* (keyword and range
    predicates, evaluated lazily).  For an incoming page the engine:

    1. looks up every (attribute, value) pair of the page in the
       indexes, counting hits per subscription;
    2. selects subscriptions whose required indexed-term count is met;
    3. evaluates residual predicates for those (plus purely residual
       subscriptions registered in a scan list);
    4. aggregates matches per proxy.
    """

    def __init__(self) -> None:
        self._subscriptions: Dict[int, Subscription] = {}
        # (attribute, value) -> subscription ids having that term.
        self._index: Dict[Tuple[str, object], Set[int]] = defaultdict(set)
        # subscription id -> number of indexed predicates that must hit.
        self._required_hits: Dict[int, int] = {}
        # Subscriptions with no indexable predicate: always evaluated.
        self._scan_list: Set[int] = set()
        # subscription id -> its indexed terms, so unsubscribe touches
        # only the owning buckets instead of scanning the whole index.
        self._terms_by_sid: Dict[int, List[Tuple[str, object]]] = {}
        # subscription id -> lease expiry time; absent means unleased
        # (permanent).  Expiry is *lazy*: expired entries are retired
        # when a match or an explicit expire_leases() sweep meets them.
        self._lease_until: Dict[int, float] = {}

    # -- registration ---------------------------------------------------

    def subscribe(
        self, subscription: Subscription, lease_until: Optional[float] = None
    ) -> None:
        """Register a subscription (idempotent per subscription_id).

        ``lease_until`` bounds the registration in simulated time;
        re-subscribing an existing id updates (or clears) its lease
        without touching the index.
        """
        sid = subscription.subscription_id
        if sid in self._subscriptions:
            if lease_until is None:
                self._lease_until.pop(sid, None)
            else:
                self._lease_until[sid] = lease_until
            return
        if lease_until is not None:
            self._lease_until[sid] = lease_until
        self._subscriptions[sid] = subscription
        indexed_predicates = 0
        own_terms: List[Tuple[str, object]] = []
        for predicate in subscription.predicates:
            terms = predicate.indexable_terms
            if terms is None:
                continue
            indexed_predicates += 1
            for term in terms:
                self._index[term].add(sid)
                own_terms.append(term)
        if own_terms:
            self._terms_by_sid[sid] = own_terms
        if indexed_predicates:
            self._required_hits[sid] = indexed_predicates
        else:
            self._scan_list.add(sid)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a subscription; unknown ids are ignored.

        O(own terms), not O(index size): the reverse map recorded at
        subscribe time names the buckets holding this id, and buckets
        emptied by the removal are dropped so churn cannot grow the
        index without bound.
        """
        sid = subscription.subscription_id
        if sid not in self._subscriptions:
            return
        del self._subscriptions[sid]
        self._required_hits.pop(sid, None)
        self._scan_list.discard(sid)
        self._lease_until.pop(sid, None)
        for term in self._terms_by_sid.pop(sid, ()):
            bucket = self._index.get(term)
            if bucket is None:
                continue
            bucket.discard(sid)
            if not bucket:
                del self._index[term]

    def subscribe_all(self, subscriptions: Iterable[Subscription]) -> None:
        for subscription in subscriptions:
            self.subscribe(subscription)

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    # -- leases ----------------------------------------------------------

    def renew_lease(self, subscription_id: int, lease_until: float) -> bool:
        """Extend a registered subscription's lease; False if unknown."""
        if subscription_id not in self._subscriptions:
            return False
        self._lease_until[subscription_id] = lease_until
        return True

    def lease_expiry(self, subscription_id: int) -> Optional[float]:
        """The lease deadline for ``subscription_id`` (None = unleased)."""
        return self._lease_until.get(subscription_id)

    def expire_leases(self, now: float) -> int:
        """Retire every subscription whose lease deadline has passed.

        Returns the number retired.  This is the eager sweep; matching
        also retires lapsed candidates lazily, so calling this is an
        optimization (bounding index size under churn), not a
        correctness requirement.
        """
        lapsed = [
            sid for sid, until in self._lease_until.items() if until <= now
        ]
        for sid in lapsed:
            self.unsubscribe(self._subscriptions[sid])
        return len(lapsed)

    # -- matching ---------------------------------------------------------

    def matching_subscriptions(
        self, page: Page, now: Optional[float] = None
    ) -> List[Subscription]:
        """All registered subscriptions matching ``page``.

        When ``now`` is given, candidates whose lease deadline has
        passed (``lease_until <= now``) are retired on the spot (lazy
        expiry) and never reported as matches.
        """
        hits: Dict[int, int] = defaultdict(int)
        page_terms = list(page.attribute_dict.items())
        for term in page_terms:
            for sid in self._index.get(term, ()):
                hits[sid] += 1

        candidates: Set[int] = set(self._scan_list)
        for sid, hit_count in hits.items():
            required = self._required_hits.get(sid, 0)
            # A membership predicate can hit several of its terms on one
            # page only if the page had several values — pages carry one
            # value per attribute, so >= is correct and also tolerant.
            if hit_count >= required:
                candidates.add(sid)

        matched = []
        stale: List[int] = []
        for sid in candidates:
            if now is not None:
                until = self._lease_until.get(sid)
                if until is not None and until <= now:
                    stale.append(sid)
                    continue
            subscription = self._subscriptions[sid]
            if subscription.matches(page):
                matched.append(subscription)
        for sid in stale:
            self.unsubscribe(self._subscriptions[sid])
        matched.sort(key=lambda sub: sub.subscription_id)
        return matched

    def match_counts(
        self, page: Page, now: Optional[float] = None
    ) -> Dict[int, int]:
        """Per-proxy count of subscriptions matching ``page``."""
        counts: Dict[int, int] = defaultdict(int)
        for subscription in self.matching_subscriptions(page, now=now):
            counts[subscription.proxy_id] += 1
        return dict(counts)

    def match_count_vector(
        self, page: Page, now: Optional[float] = None
    ) -> Dict[int, int]:
        """Per-proxy match counts in one pass over the subscription index.

        Equal (as a mapping) to :meth:`match_counts`, but each match is
        added straight into the per-proxy accumulator — the matched
        :class:`Subscription` objects are never collected into a list
        or sorted, so a publish costs one index sweep regardless of how
        many subscriptions match.  Lazy lease expiry behaves exactly as
        in :meth:`matching_subscriptions`: lapsed candidates are
        retired on the spot and never counted.
        """
        hits: Dict[int, int] = defaultdict(int)
        index_get = self._index.get
        for term in page.attribute_dict.items():
            bucket = index_get(term)
            if bucket is not None:
                for sid in bucket:
                    hits[sid] += 1

        required = self._required_hits
        candidates: Set[int] = set(self._scan_list)
        add_candidate = candidates.add
        for sid, hit_count in hits.items():
            # Same >= tolerance as matching_subscriptions: pages carry
            # one value per attribute, so a membership predicate cannot
            # over-hit in practice.
            if hit_count >= required.get(sid, 0):
                add_candidate(sid)

        subscriptions = self._subscriptions
        lease_until = self._lease_until if now is not None else None
        counts: Dict[int, int] = {}
        stale: List[int] = []
        for sid in candidates:
            if lease_until is not None:
                until = lease_until.get(sid)
                if until is not None and until <= now:
                    stale.append(sid)
                    continue
            subscription = subscriptions[sid]
            if subscription.matches(page):
                proxy_id = subscription.proxy_id
                counts[proxy_id] = counts.get(proxy_id, 0) + 1
        for sid in stale:
            self.unsubscribe(subscriptions[sid])
        return counts


class TraceMatchCounts:
    """Static match-count table (the paper's eq. 7 construction).

    The subscription information of interest is only "the number of
    subscriptions matching every page at every server" (§4.3); this
    class stores exactly that, keyed by page_id.
    """

    #: Shared empty vector — `match_vector` returns this for unknown
    #: pages so steady-state lookups never allocate.
    _EMPTY_VECTOR: Tuple[Tuple[int, int], ...] = ()

    def __init__(self, table: Mapping[int, Mapping[int, int]]) -> None:
        self._table: Dict[int, Dict[int, int]] = {}
        for page_id, per_proxy in table.items():
            cleaned = {
                int(proxy): int(count)
                for proxy, count in per_proxy.items()
                if count > 0
            }
            if any(count < 0 for count in per_proxy.values()):
                raise ValueError(f"negative match count for page {page_id}")
            if cleaned:
                self._table[int(page_id)] = cleaned
        # Columnar view: one immutable (proxy_id, count) vector per
        # page, ordered by proxy_id.  Precomputed once here so the
        # replay loop's per-publish work is a single dict probe —
        # no dict copy, no sort, no allocation.
        self._vectors: Dict[int, Tuple[Tuple[int, int], ...]] = {
            page_id: tuple(sorted(per_proxy.items()))
            for page_id, per_proxy in self._table.items()
        }

    def match_counts(self, page: Page) -> Dict[int, int]:
        """Counts for ``page`` (modified versions match like originals)."""
        return dict(self._table.get(page.page_id, {}))

    def match_counts_by_id(self, page_id: int) -> Dict[int, int]:
        """Counts looked up by page_id (the trace-driven simulator's path)."""
        return dict(self._table.get(page_id, {}))

    def match_vector(self, page_id: int) -> Tuple[Tuple[int, int], ...]:
        """Precomputed ((proxy_id, count), ...) for ``page_id``.

        Sorted by proxy_id, zero counts omitted, empty for unknown
        pages.  The returned tuple is the table's own immutable record:
        the replay hot path iterates it directly.
        """
        return self._vectors.get(page_id, self._EMPTY_VECTOR)

    def row(self, page_id: int) -> Mapping[int, int]:
        """The live proxy->count mapping for ``page_id`` (no copy).

        Read-only by contract; use :meth:`match_counts_by_id` when a
        mutable snapshot is needed.
        """
        return self._table.get(page_id, {})

    def count_for(self, page_id: int, proxy_id: int) -> int:
        """Convenience scalar lookup."""
        row = self._table.get(page_id)
        if row is None:
            return 0
        return row.get(proxy_id, 0)

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize the table (page_id -> {proxy: count}) to JSON."""
        return json.dumps(
            {
                str(page_id): {str(proxy): count for proxy, count in per_proxy.items()}
                for page_id, per_proxy in self._table.items()
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "TraceMatchCounts":
        """Rebuild a table serialized with :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            {
                int(page_id): {
                    int(proxy): int(count) for proxy, count in per_proxy.items()
                }
                for page_id, per_proxy in payload.items()
            }
        )

    @property
    def page_ids(self) -> Sequence[int]:
        return list(self._table)

    def total_subscriptions(self) -> int:
        """Sum of all match counts (an upper bound on future requests)."""
        return sum(
            count
            for per_proxy in self._table.values()
            for count in per_proxy.values()
        )
