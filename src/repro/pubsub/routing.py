"""Notification routing.

The routing engine delivers notifications (flow 3 of Figure 1) from the
broker to the proxies whose aggregated subscriptions matched a page.
In the paper the brokering system may be centralized or distributed;
this implementation routes over the proxy/publisher overlay from
:mod:`repro.network` along shortest paths, which lets the examples and
tests account for notification traffic per link as well.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.topology import Topology
from repro.pubsub.pages import Notification


class RoutingTable:
    """Shortest-path next-hop table rooted at the publisher node."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        graph = topology.graph
        source = topology.publisher_node
        # Dijkstra with parent pointers (hop metric, deterministic ties).
        import heapq

        distance: Dict[int, float] = {source: 0.0}
        parent: Dict[int, Optional[int]] = {source: None}
        frontier: List[Tuple[float, int]] = [(0.0, source)]
        while frontier:
            dist, node = heapq.heappop(frontier)
            if dist > distance.get(node, float("inf")):
                continue
            for neighbor in sorted(graph.neighbors(node)):
                candidate = dist + 1.0
                if candidate < distance.get(neighbor, float("inf")):
                    distance[neighbor] = candidate
                    parent[neighbor] = node
                    heapq.heappush(frontier, (candidate, neighbor))
        self._parent = parent
        self._distance = distance

    def path_to(self, node: int) -> List[int]:
        """Publisher-to-node path as a list of nodes (inclusive)."""
        if node not in self._parent:
            raise KeyError(f"node {node} unreachable from publisher")
        path = [node]
        while self._parent[path[-1]] is not None:
            path.append(self._parent[path[-1]])
        path.reverse()
        return path

    def hops_to(self, node: int) -> int:
        return int(self._distance[node])


class SequenceTracker:
    """Receiver-side sequence bookkeeping over an unreliable channel.

    Tracks, per page, the highest sequence number delivered so far and
    classifies each arriving notification:

    * ``"duplicate"`` — the sequence was already seen (a retransmission
      racing its ack, or a late reordered copy of an old version);
      the receiver must suppress it.
    * ``"gap"`` — the sequence jumps past the expected next one: at
      least one earlier notification was lost or is still in flight.
      With latest-version-wins semantics the arriving notification
      itself heals the gap, but the detection is what access-time
      staleness repair and the metrics are keyed off.
    * ``"new"`` — the expected in-order delivery.

    A first-ever delivery with ``sequence > 0`` counts as a gap: under
    the static subscription tables of a simulation run a matched proxy
    is matched for every version, so the missing prefix was lost (for
    example while the proxy was down).
    """

    __slots__ = ("_last", "duplicates", "gaps")

    def __init__(self) -> None:
        self._last: Dict[int, int] = {}
        self.duplicates = 0
        self.gaps = 0

    def observe(self, page_id: int, sequence: int) -> str:
        """Classify one arrival and update the per-page high-water mark."""
        last = self._last.get(page_id)
        if last is not None and sequence <= last:
            self.duplicates += 1
            return "duplicate"
        expected = 0 if last is None else last + 1
        self._last[page_id] = sequence
        if sequence > expected:
            self.gaps += 1
            return "gap"
        return "new"

    def last_seen(self, page_id: int) -> Optional[int]:
        """Highest sequence delivered for ``page_id``, or None."""
        return self._last.get(page_id)

    def learn(self, page_id: int, sequence: int) -> None:
        """Raise the high-water mark out of band (e.g. after a demand
        fetch taught the receiver the current version)."""
        last = self._last.get(page_id)
        if last is None or sequence > last:
            self._last[page_id] = sequence

    def reset(self) -> None:
        """Forget all per-page state (receiver restarted cold)."""
        self._last.clear()


class RoutingEngine:
    """Delivers notifications to proxies and tallies link usage."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.table = RoutingTable(topology)
        #: (u, v) normalized edge -> number of notification messages carried.
        self.link_messages: Dict[Tuple[int, int], int] = defaultdict(int)
        self._delivery_hooks: List[Callable[[int, Notification], None]] = []

    def on_delivery(self, hook: Callable[[int, Notification], None]) -> None:
        """Register ``hook(proxy_index, notification)`` for each delivery."""
        self._delivery_hooks.append(hook)

    def deliver(self, notification: Notification, proxy_indices: Sequence[int]) -> int:
        """Route ``notification`` to each proxy in ``proxy_indices``.

        Link usage is counted per traversed edge with multicast
        de-duplication: an edge shared by several destination paths
        carries the message once, as a broker tree would.

        Returns the total number of link-level messages sent.
        """
        edges_used: set = set()
        for proxy_index in proxy_indices:
            node = self.topology.proxy_nodes[proxy_index]
            path = self.table.path_to(node)
            for u, v in zip(path, path[1:]):
                edges_used.add((min(u, v), max(u, v)))
        for edge in edges_used:
            self.link_messages[edge] += 1
        for proxy_index in proxy_indices:
            for hook in self._delivery_hooks:
                hook(proxy_index, notification)
        return len(edges_used)

    @property
    def total_messages(self) -> int:
        return sum(self.link_messages.values())
