"""Notification routing.

The routing engine delivers notifications (flow 3 of Figure 1) from the
broker to the proxies whose aggregated subscriptions matched a page.
In the paper the brokering system may be centralized or distributed;
this implementation routes over the proxy/publisher overlay from
:mod:`repro.network` along shortest paths, which lets the examples and
tests account for notification traffic per link as well.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.topology import Topology
from repro.pubsub.pages import Notification


class RoutingTable:
    """Shortest-path next-hop table rooted at the publisher node."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        graph = topology.graph
        source = topology.publisher_node
        # Dijkstra with parent pointers (hop metric, deterministic ties).
        import heapq

        distance: Dict[int, float] = {source: 0.0}
        parent: Dict[int, Optional[int]] = {source: None}
        frontier: List[Tuple[float, int]] = [(0.0, source)]
        while frontier:
            dist, node = heapq.heappop(frontier)
            if dist > distance.get(node, float("inf")):
                continue
            for neighbor in sorted(graph.neighbors(node)):
                candidate = dist + 1.0
                if candidate < distance.get(neighbor, float("inf")):
                    distance[neighbor] = candidate
                    parent[neighbor] = node
                    heapq.heappush(frontier, (candidate, neighbor))
        self._parent = parent
        self._distance = distance

    def path_to(self, node: int) -> List[int]:
        """Publisher-to-node path as a list of nodes (inclusive)."""
        if node not in self._parent:
            raise KeyError(f"node {node} unreachable from publisher")
        path = [node]
        while self._parent[path[-1]] is not None:
            path.append(self._parent[path[-1]])
        path.reverse()
        return path

    def hops_to(self, node: int) -> int:
        return int(self._distance[node])


class RoutingEngine:
    """Delivers notifications to proxies and tallies link usage."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.table = RoutingTable(topology)
        #: (u, v) normalized edge -> number of notification messages carried.
        self.link_messages: Dict[Tuple[int, int], int] = defaultdict(int)
        self._delivery_hooks: List[Callable[[int, Notification], None]] = []

    def on_delivery(self, hook: Callable[[int, Notification], None]) -> None:
        """Register ``hook(proxy_index, notification)`` for each delivery."""
        self._delivery_hooks.append(hook)

    def deliver(self, notification: Notification, proxy_indices: Sequence[int]) -> int:
        """Route ``notification`` to each proxy in ``proxy_indices``.

        Link usage is counted per traversed edge with multicast
        de-duplication: an edge shared by several destination paths
        carries the message once, as a broker tree would.

        Returns the total number of link-level messages sent.
        """
        edges_used: set = set()
        for proxy_index in proxy_indices:
            node = self.topology.proxy_nodes[proxy_index]
            path = self.table.path_to(node)
            for u, v in zip(path, path[1:]):
                edges_used.add((min(u, v), max(u, v)))
        for edge in edges_used:
            self.link_messages[edge] += 1
        for proxy_index in proxy_indices:
            for hook in self._delivery_hooks:
                hook(proxy_index, notification)
        return len(edges_used)

    @property
    def total_messages(self) -> int:
        return sum(self.link_messages.values())
