"""The publish/subscribe broker: matching + routing glued together.

:class:`Broker` implements the conceptual system of the paper's
Figure 1 for explicit subscription populations: producers call
:meth:`Broker.publish`, the matching engine finds interested
subscribers, and the routing engine carries one notification per
matched proxy.  The content distribution engine (:mod:`repro.system`)
hangs off the broker's delivery hook.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.network.topology import Topology
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.pages import Notification, Page, PageVersion
from repro.pubsub.routing import RoutingEngine
from repro.pubsub.subscriptions import Subscription


class Broker:
    """A centralized broker over an overlay of proxy servers."""

    def __init__(self, topology: Optional[Topology] = None) -> None:
        self.matching = MatchingEngine()
        self.routing = RoutingEngine(topology) if topology is not None else None
        self._versions: Dict[int, int] = {}
        self.published_count = 0
        self.notification_count = 0

    # -- flow 1: subscribe ---------------------------------------------------

    def subscribe(self, subscription: Subscription) -> None:
        """Register one subscriber interest."""
        self.matching.subscribe(subscription)

    def unsubscribe(self, subscription: Subscription) -> None:
        self.matching.unsubscribe(subscription)

    # -- flow 2 + 3: publish, match, notify -----------------------------------

    def publish(self, page: Page, at: float = 0.0) -> PageVersion:
        """Publish ``page`` (or a modification of it) and notify matches.

        Returns the concrete :class:`PageVersion` created.  Repeated
        publications of the same ``page_id`` increment the version.
        """
        version_number = self._versions.get(page.page_id, -1) + 1
        self._versions[page.page_id] = version_number
        page_version = PageVersion(page=page, version=version_number, published_at=at)
        self.published_count += 1

        counts = self.matching.match_count_vector(page)
        if counts and self.routing is not None:
            proxy_indices = sorted(counts)
            for proxy_index in proxy_indices:
                notification = Notification(
                    page_id=page.page_id,
                    version=version_number,
                    size=page.size,
                    published_at=at,
                    match_count=counts[proxy_index],
                    # Publisher-stamped per-page sequence number; the
                    # reliable-delivery layer keys duplicate suppression
                    # and gap detection off it.
                    sequence=version_number,
                )
                self.routing.deliver(notification, [proxy_index])
                self.notification_count += 1
        elif counts:
            self.notification_count += len(counts)
        return page_version

    def current_version(self, page_id: int) -> Optional[int]:
        """Latest published version of ``page_id``, if any."""
        return self._versions.get(page_id)

    def matched_proxies(self, page: Page) -> List[int]:
        """Proxies with at least one matching subscription for ``page``."""
        return sorted(self.matching.match_counts(page))
