"""A distributed broker overlay (Fig. 1: "these engines may be
centralized or distributed").

:class:`BrokerTree` spreads the matching work over a tree of brokers
rooted at the publisher, in the style of Siena's hierarchical servers:

* every proxy attaches to its nearest broker (leaf side);
* subscriptions propagate **upward** with aggregation — a broker only
  forwards a predicate set its parent has not seen yet, so the root is
  not a bottleneck for duplicate interests (the covering idea of
  Carzaniga et al., applied at predicate granularity);
* publications flow **downward** only along branches whose aggregated
  subscriptions match, with matching re-evaluated at each hop against
  that broker's own subscription store.

The result is functionally equivalent to the centralized
:class:`~repro.pubsub.broker.Broker` (same per-proxy match counts — the
test suite verifies the equivalence exactly) while distributing both
the matching work and the notification fan-out.  The class also counts
per-broker matching evaluations and per-link control messages so the
examples can show the load distribution.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.network.topology import Topology
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.pages import Page
from repro.pubsub.routing import RoutingTable
from repro.pubsub.subscriptions import Predicate, Subscription


class BrokerNode:
    """One broker in the tree: a local matching engine plus links."""

    def __init__(self, node_id: int, parent: Optional["BrokerNode"]) -> None:
        self.node_id = node_id
        self.parent = parent
        self.children: List["BrokerNode"] = []
        self.engine = MatchingEngine()
        #: Predicate sets already forwarded upward (covering filter).
        self._forwarded: Set[Tuple[Predicate, ...]] = set()
        #: Proxies attached directly to this broker.
        self.attached_proxies: Set[int] = set()
        #: Matching evaluations performed at this broker.
        self.match_evaluations = 0

    def covers(self, predicates: Tuple[Predicate, ...]) -> bool:
        """Whether an equivalent interest was already forwarded up."""
        return predicates in self._forwarded

    def mark_forwarded(self, predicates: Tuple[Predicate, ...]) -> None:
        self._forwarded.add(predicates)


class BrokerTree:
    """A tree of brokers over a :class:`Topology`.

    The tree is the shortest-path tree rooted at the publisher node, so
    notification paths coincide with the centralized router's paths and
    traffic numbers are comparable.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        table = RoutingTable(topology)
        self._nodes: Dict[int, BrokerNode] = {}
        root_id = topology.publisher_node
        self.root = self._materialize(root_id, table)
        # Attach each proxy to the broker on its own node.
        for proxy_index, node in enumerate(topology.proxy_nodes):
            self._nodes[node].attached_proxies.add(proxy_index)
        #: (parent, child) -> subscription-propagation messages.
        self.control_messages: Dict[Tuple[int, int], int] = defaultdict(int)
        #: (parent, child) -> publication messages carried.
        self.publication_messages: Dict[Tuple[int, int], int] = defaultdict(int)
        self.published_count = 0

    def _materialize(self, root_id: int, table: RoutingTable) -> BrokerNode:
        root = BrokerNode(root_id, parent=None)
        self._nodes[root_id] = root
        # Build children lists from the routing table's parent pointers.
        for node in self.topology.graph.nodes():
            if node == root_id or node not in table._parent:
                continue
            self._ensure_chain(node, table)
        return root

    def _ensure_chain(self, node: int, table: RoutingTable) -> BrokerNode:
        existing = self._nodes.get(node)
        if existing is not None:
            return existing
        parent_id = table._parent[node]
        parent = self._ensure_chain(parent_id, table)
        broker = BrokerNode(node, parent=parent)
        parent.children.append(broker)
        self._nodes[node] = broker
        return broker

    @property
    def broker_count(self) -> int:
        return len(self._nodes)

    def broker_for_proxy(self, proxy_index: int) -> BrokerNode:
        node = self.topology.proxy_nodes[proxy_index]
        return self._nodes[node]

    # -- flow 1: subscribe with upward aggregation -------------------------

    def subscribe(
        self, subscription: Subscription, lease_until: Optional[float] = None
    ) -> int:
        """Register a subscription at the subscriber's local broker and
        propagate the (deduplicated) interest toward the root.

        ``lease_until`` bounds only the *leaf* registration: aggregated
        upstream copies stay unleased, consistent with the stale-
        aggregate policy of :meth:`unsubscribe` (an expired lease costs
        wasted descent, never a wrong match count).

        Returns the number of upward control messages this subscription
        caused — 0 when every broker on the path had already forwarded
        an identical predicate set (the covering win).
        """
        broker = self.broker_for_proxy(subscription.proxy_id)
        broker.engine.subscribe(subscription, lease_until=lease_until)
        messages = 0
        predicates = subscription.predicates
        current = broker
        while current.parent is not None:
            if current.covers(predicates):
                break
            current.mark_forwarded(predicates)
            edge = (current.parent.node_id, current.node_id)
            self.control_messages[edge] += 1
            # The parent needs an interest entry so publications are
            # routed down this branch; proxy_id keeps the leaf target.
            current.parent.engine.subscribe(
                Subscription(
                    subscriber_id=subscription.subscriber_id,
                    proxy_id=subscription.proxy_id,
                    predicates=predicates,
                )
            )
            messages += 1
            current = current.parent
        return messages

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove ``subscription`` from its leaf broker.

        Only the leaf copy is removed.  The aggregated interest copies
        forwarded upward stay in place, and so do the ``_forwarded``
        covering markers: in Siena-style covering, an upward unadvertise
        would require reference counting every covered interest along
        the path, so hierarchical brokers let aggregated interests go
        *stale* instead.  The consequences, which the equivalence tests
        pin down:

        * per-proxy match counts stay exact — leaf delivery counts only
          the leaf engine's own subscriptions, and a stale upstream
          entry routes publications toward a branch where no leaf
          subscription matches any more (wasted descent, not a wrong
          count);
        * a later resubscribe of the same predicate set is covered and
          costs zero control messages.
        """
        broker = self.broker_for_proxy(subscription.proxy_id)
        broker.engine.unsubscribe(subscription)

    def expire_leases(self, now: float) -> int:
        """Sweep every leaf engine's lapsed leases; returns total retired."""
        return sum(
            broker.engine.expire_leases(now) for broker in self._nodes.values()
        )

    # -- flow 2+3: publish, match hop by hop, notify ------------------------

    def match_counts(
        self, page: Page, now: Optional[float] = None
    ) -> Dict[int, int]:
        """Per-proxy match counts, computed by tree descent.

        Only branches whose broker has at least one matching interest
        are descended into; every visited broker pays one matching
        evaluation (the distributed-work measurement).  ``now`` enables
        lazy lease expiry during the descent.
        """
        self.published_count += 1
        counts: Dict[int, int] = defaultdict(int)
        frontier = [self.root]
        while frontier:
            broker = frontier.pop()
            broker.match_evaluations += 1
            matched = broker.engine.matching_subscriptions(page, now=now)
            if not matched:
                continue
            matched_proxies = {sub.proxy_id for sub in matched}
            for proxy_index in matched_proxies & broker.attached_proxies:
                # Leaf delivery: count this broker's own subscribers.
                counts[proxy_index] = sum(
                    1
                    for sub in matched
                    if sub.proxy_id == proxy_index
                )
            for child in broker.children:
                descend = self._branch_has_interest(child, matched_proxies)
                if descend:
                    edge = (broker.node_id, child.node_id)
                    self.publication_messages[edge] += 1
                    frontier.append(child)
        return dict(counts)

    def _branch_has_interest(
        self, child: BrokerNode, matched_proxies: Set[int]
    ) -> bool:
        """Whether any matched proxy lives somewhere under ``child``."""
        stack = [child]
        while stack:
            broker = stack.pop()
            if broker.attached_proxies & matched_proxies:
                return True
            stack.extend(broker.children)
        return False

    # -- measurements --------------------------------------------------------

    def total_control_messages(self) -> int:
        return sum(self.control_messages.values())

    def total_publication_messages(self) -> int:
        return sum(self.publication_messages.values())

    def evaluation_load(self) -> Dict[int, int]:
        """Matching evaluations per broker node (load distribution)."""
        return {
            node_id: broker.match_evaluations
            for node_id, broker in self._nodes.items()
        }
