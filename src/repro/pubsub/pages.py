"""Pages, page versions and notifications.

A *page* is the unit of content: a news article identified by a stable
``page_id``.  Publishing a modification creates a new *version* of the
same page; the paper's workload re-publishes 2 400 of the 6 000 distinct
pages roughly ten times each over the 7-day horizon (§4.1).  A cached
copy of an old version is stale — serving it would violate freshness —
so the caches treat version mismatches as misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Tuple


@dataclass(frozen=True)
class Page:
    """Static identity and content metadata of a page.

    Attributes:
        page_id: stable identifier across modifications.
        size: content size in bytes (log-normal in the paper's workload).
        topic: the page's category (used by topic subscriptions).
        keywords: content keywords (used by content-based subscriptions).
        attributes: arbitrary extra attributes for content-based matching.
    """

    page_id: int
    size: int
    topic: str = ""
    keywords: FrozenSet[str] = frozenset()
    attributes: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"page size must be positive, got {self.size}")

    @property
    def attribute_dict(self) -> Dict[str, Any]:
        """Attributes as a dict (includes ``topic`` under key ``"topic"``)."""
        merged = dict(self.attributes)
        if self.topic:
            merged.setdefault("topic", self.topic)
        return merged


@dataclass(frozen=True)
class PageVersion:
    """A concrete published version of a page.

    ``version`` starts at 0 for the original publication and increments
    with every modification.  ``published_at`` is simulation seconds.
    """

    page: Page
    version: int
    published_at: float

    def __post_init__(self) -> None:
        if self.version < 0:
            raise ValueError(f"version must be >= 0, got {self.version}")
        if self.published_at < 0:
            raise ValueError(
                f"published_at must be >= 0, got {self.published_at}"
            )

    @property
    def page_id(self) -> int:
        return self.page.page_id

    @property
    def size(self) -> int:
        return self.page.size

    @property
    def key(self) -> Tuple[int, int]:
        """(page_id, version) — the cacheable identity."""
        return (self.page.page_id, self.version)


@dataclass(frozen=True)
class Notification:
    """Flow 3 of Figure 1: 'page X matching your interests was published'.

    Carries only metadata (a link plus the size) — the content itself is
    moved by the content distribution engine, which is the whole point
    of the paper.
    """

    page_id: int
    version: int
    size: int
    published_at: float
    match_count: int = field(default=0)
    #: Per-page sequence number stamped by the publisher.  Receivers
    #: use it for duplicate suppression and gap detection over an
    #: unreliable push path; it defaults to ``version`` (the publisher
    #: increments both in lock-step).
    sequence: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.match_count < 0:
            raise ValueError(
                f"match_count must be >= 0, got {self.match_count}"
            )
        if self.sequence < 0:
            object.__setattr__(self, "sequence", self.version)
