"""Subscriptions and content-based predicates.

A subscription is a conjunction of predicates over page metadata; a page
matches when every predicate holds.  Predicates come in the forms a news
notification service needs:

* ``topic_is("sports")`` — topic/category subscription,
* ``keyword_any({"election", "senate"})`` — at least one keyword,
* ``keyword_all({"nba", "finals"})`` — all keywords,
* ``attribute_equals("region", "eu")`` — equality on an attribute,
* ``attribute_in("region", {"eu", "us"})`` — membership,
* ``attribute_range("priority", low=3)`` — numeric range.

Equality and topic predicates are index-friendly: the matching engine
resolves them through inverted indexes rather than evaluation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Optional, Tuple

from repro.pubsub.pages import Page

_subscription_ids = itertools.count()


@dataclass(frozen=True)
class Predicate:
    """A single condition over a page.

    Attributes:
        kind: predicate family (``"topic"``, ``"kw_any"``, ``"kw_all"``,
            ``"eq"``, ``"in"``, ``"range"``).
        attribute: attribute name (empty for keyword/topic predicates).
        operand: the comparison operand (value, frozenset or bounds).
    """

    kind: str
    attribute: str
    operand: Any

    @property
    def indexable_terms(self) -> Optional[Tuple[Tuple[str, Any], ...]]:
        """(attribute, value) terms an inverted index can serve, or None.

        Equality has one term; topic is equality on ``"topic"``;
        ``in``-predicates expand to one term per member (any satisfies).
        Keyword and range predicates are not index-friendly here.
        """
        if self.kind == "eq":
            return ((self.attribute, self.operand),)
        if self.kind == "topic":
            return (("topic", self.operand),)
        if self.kind == "in":
            return tuple((self.attribute, value) for value in sorted(self.operand, key=repr))
        return None

    def matches(self, page: Page) -> bool:
        """Evaluate the predicate against ``page``."""
        if self.kind == "topic":
            return page.topic == self.operand
        if self.kind == "kw_any":
            return bool(page.keywords & self.operand)
        if self.kind == "kw_all":
            return self.operand <= page.keywords
        attributes = page.attribute_dict
        if self.kind == "eq":
            return attributes.get(self.attribute) == self.operand
        if self.kind == "in":
            return attributes.get(self.attribute) in self.operand
        if self.kind == "range":
            low, high = self.operand
            value = attributes.get(self.attribute)
            if not isinstance(value, (int, float)):
                return False
            if low is not None and value < low:
                return False
            if high is not None and value > high:
                return False
            return True
        raise ValueError(f"unknown predicate kind: {self.kind!r}")


def topic_is(topic: str) -> Predicate:
    """Match pages whose topic equals ``topic``."""
    return Predicate(kind="topic", attribute="", operand=topic)


def keyword_any(keywords) -> Predicate:
    """Match pages containing at least one of ``keywords``."""
    keywords = frozenset(keywords)
    if not keywords:
        raise ValueError("keyword_any requires at least one keyword")
    return Predicate(kind="kw_any", attribute="", operand=keywords)


def keyword_all(keywords) -> Predicate:
    """Match pages containing every keyword in ``keywords``."""
    keywords = frozenset(keywords)
    if not keywords:
        raise ValueError("keyword_all requires at least one keyword")
    return Predicate(kind="kw_all", attribute="", operand=keywords)


def attribute_equals(attribute: str, value: Any) -> Predicate:
    """Match pages whose ``attribute`` equals ``value``."""
    return Predicate(kind="eq", attribute=attribute, operand=value)


def attribute_in(attribute: str, values) -> Predicate:
    """Match pages whose ``attribute`` is one of ``values``."""
    values = frozenset(values)
    if not values:
        raise ValueError("attribute_in requires at least one value")
    return Predicate(kind="in", attribute=attribute, operand=values)


def attribute_range(
    attribute: str, low: Optional[float] = None, high: Optional[float] = None
) -> Predicate:
    """Match pages whose numeric ``attribute`` lies in [low, high]."""
    if low is None and high is None:
        raise ValueError("attribute_range requires at least one bound")
    if low is not None and high is not None and low > high:
        raise ValueError(f"empty range: low={low} > high={high}")
    return Predicate(kind="range", attribute=attribute, operand=(low, high))


@dataclass(frozen=True)
class Subscription:
    """A subscriber's statement of interest: a conjunction of predicates.

    Attributes:
        subscriber_id: the end-user who owns the subscription.
        proxy_id: the proxy server that aggregates this subscriber.
        predicates: conjunction; empty means "everything".
        subscription_id: unique id assigned at creation.
    """

    subscriber_id: int
    proxy_id: int
    predicates: Tuple[Predicate, ...] = ()
    subscription_id: int = field(default_factory=lambda: next(_subscription_ids))

    def matches(self, page: Page) -> bool:
        """``True`` when every predicate holds for ``page``."""
        return all(predicate.matches(page) for predicate in self.predicates)

    @property
    def keyword_terms(self) -> FrozenSet[str]:
        """All keywords referenced anywhere in the subscription."""
        terms = set()
        for predicate in self.predicates:
            if predicate.kind in ("kw_any", "kw_all"):
                terms |= predicate.operand
        return frozenset(terms)


#: Signature of a subscription generator used by examples/tests.
SubscriptionFactory = Callable[[int, int], Subscription]
