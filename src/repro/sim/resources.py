"""Queueing resources for process-style models.

These mirror SimPy's ``Resource`` and ``Store`` closely enough that the
examples read like standard discrete-event code.  The trace-driven
content distribution simulator does not need them, but the live broker
example (``examples/live_broker.py``) models publisher/proxy message
queues with :class:`Store`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.engine import Environment, Event, SimulationError


class Request(Event):
    """A pending acquisition of a :class:`Resource` slot.

    Supports the context-manager protocol so processes can write::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._dispatch()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class Resource:
    """A resource with ``capacity`` identical slots and FIFO queueing."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._queue: Deque[Request] = deque()
        self._users: List[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Queue for a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return a slot.  Releasing an ungranted request cancels it."""
        if request in self._users:
            self._users.remove(request)
        elif request in self._queue:
            self._queue.remove(request)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed(request)


class Store:
    """An unbounded-or-bounded FIFO buffer of Python objects.

    ``put`` events fire when the item is accepted; ``get`` events fire
    with the item as their value.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._putters: Deque[Event] = deque()
        self._put_items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> Event:
        """Offer ``item`` to the store."""
        event = Event(self.env)
        self._putters.append(event)
        self._put_items.append(item)
        self._dispatch()
        return event

    def get(self) -> Event:
        """Take the oldest item; waits until one is available."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        # Accept queued puts while there is room.
        while self._putters and len(self.items) < self.capacity:
            put_event = self._putters.popleft()
            item = self._put_items.popleft()
            self.items.append(item)
            put_event.succeed()
        # Satisfy queued gets while items exist.
        while self._getters and self.items:
            get_event = self._getters.popleft()
            get_event.succeed(self.items.pop(0))
            # Freed capacity may admit a queued put.
            while self._putters and len(self.items) < self.capacity:
                put_event = self._putters.popleft()
                item = self._put_items.popleft()
                self.items.append(item)
                put_event.succeed()
