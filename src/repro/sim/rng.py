"""Named, reproducible random-number streams.

Every stochastic component of the reproduction (page sizes, popularity
ranks, request times, server pools, subscription quality noise,
topology, ...) draws from its own named stream.  Streams are derived
from a single root seed with :class:`numpy.random.SeedSequence` spawned
by a stable hash of the stream name, so:

* two runs with the same root seed produce identical traces, and
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one generator, where an extra draw shifts everything
  downstream).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (runs, machines alike)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always yields the same underlying stream object,
        so sequential draws from one component stay sequential.
        """
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence([self.seed, _stable_key(name)])
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per replica)."""
        return RandomStreams(seed=(self.seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, streams={sorted(self._streams)})"
