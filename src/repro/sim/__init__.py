"""Discrete-event simulation engine.

A small, self-contained SimPy-style kernel used by the pub/sub content
distribution simulator.  The engine provides:

* :class:`~repro.sim.engine.Environment` — the event loop with a virtual
  clock, ``schedule``/``run`` primitives and generator-based processes;
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout`
  and :class:`~repro.sim.process.Process` — the waitable primitives;
* :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.Store` — queueing resources for
  process-style models;
* :class:`~repro.sim.rng.RandomStreams` — named, independently seeded
  random-number streams so every stochastic component of the simulation
  is reproducible from a single root seed.

The content distribution simulation itself is trace driven (publish and
request events are precomputed by :mod:`repro.workload`), so it mostly
uses the callback scheduling API; the process API exists so the same
kernel can express richer models (see ``examples/live_broker.py``).
"""

from repro.sim.engine import Environment, Event, Timeout, SimulationError
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Resource",
    "Store",
    "RandomStreams",
    "SimulationError",
]
