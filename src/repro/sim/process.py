"""Generator-based simulation processes.

A process wraps a Python generator that yields :class:`~repro.sim.engine.Event`
instances.  Each yielded event suspends the process until the event is
processed; its value (or exception) is sent (or thrown) back into the
generator.  A process is itself an event that triggers when the
generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Environment, Event, SimulationError


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process (also a waitable event).

    The process starts at the current simulation time: the first resume
    is scheduled immediately rather than executed inline, so creation
    order does not leak into execution order beyond agenda order.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: Environment, generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process target must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event = env.timeout(0.0)
        self._waiting_on.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        waiting_on = self._waiting_on
        if waiting_on is not None and self._resume in waiting_on.callbacks:
            waiting_on.callbacks.remove(self._resume)
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as interrupt:
            # The generator chose not to catch the interrupt.
            self.fail(interrupt)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    f"process yielded a non-event: {target!r}; yield Event/Timeout"
                )
            )
            return
        if target.processed:
            # Already-processed events resume the process immediately
            # (at the current time) instead of never waking it.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay._triggered = True
                relay._ok = False
                relay._value = target.value
                self.env._enqueue(self.env.now, 1, relay)
            self._waiting_on = relay
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)
