"""Event loop and core waitable primitives.

The engine is deliberately small: a binary-heap agenda of ``(time,
priority, sequence, event)`` tuples and an :class:`Environment` that pops
them in order.  Determinism matters more than raw speed here — two runs
with the same seed must interleave identically — so ties on time are
broken first by an explicit priority and then by insertion order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Scheduling priorities.  URGENT beats NORMAL at the same timestamp;
#: NORMAL beats LOW.  Used e.g. so publish events at time t are processed
#: before request events at the same t (a page must exist to be read).
URGENT = 0
NORMAL = 1
LOW = 2


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event moves through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the agenda with a value) and
    *processed* (callbacks have run).  Events may succeed with a value
    or fail with an exception; waiting processes see the exception
    re-raised at their ``yield``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """``True`` once the engine has run this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception of the event."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._enqueue(self.env.now + delay, NORMAL, self)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed with ``exception`` after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._enqueue(self.env.now + delay, NORMAL, self)
        return self


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._enqueue(env.now + delay, NORMAL, self)


class Environment:
    """The simulation environment: virtual clock plus event agenda.

    Use :meth:`schedule` for plain callback scheduling (the content
    distribution simulator's trace replay does this), or
    :meth:`process` to launch a generator-based process (see
    :mod:`repro.sim.process`).

    Setting :attr:`profiler` (any object with ``record(name, dt)``,
    e.g. :class:`repro.obs.profile.Profiler`) makes :meth:`run` time
    each agenda step under the ``"engine.step"`` phase.  It defaults to
    ``None`` and the unprofiled loop is untouched, so observability is
    free when off.

    Setting :attr:`monitor` (any object with ``tick(now)``, e.g.
    :class:`repro.obs.monitor.RunMonitor`) makes the loops call
    ``tick`` once per dispatched event, enabling live heartbeats.  Like
    the profiler it defaults to ``None`` and the branch is hoisted out
    of the unmonitored loop.
    """

    #: Optional span profiler for the event loop (see class docstring).
    profiler = None
    #: Optional live run monitor, ticked once per dispatched event.
    monitor = None

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._agenda: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- low-level agenda ------------------------------------------------

    def _enqueue(self, at: float, priority: int, event: Event) -> None:
        if at < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {at} < now={self._now}"
            )
        self._sequence += 1
        heapq.heappush(self._agenda, (at, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the agenda is empty."""
        if not self._agenda:
            return float("inf")
        return self._agenda[0][0]

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""
        if not self._agenda:
            raise SimulationError("agenda is empty")
        at, _priority, _seq, event = heapq.heappop(self._agenda)
        self._now = at
        callbacks, event.callbacks = event.callbacks, []
        event._processed = True
        for callback in callbacks:
            callback(event)

    # -- public scheduling API -------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def schedule(
        self,
        at: float,
        callback: Callable[["Environment"], None],
        priority: int = NORMAL,
    ) -> Event:
        """Run ``callback(env)`` at absolute time ``at``.

        Returns the underlying event (mainly useful for tests).
        """
        event = Event(self)
        event._triggered = True
        event._ok = True
        event.callbacks.append(lambda _evt: callback(self))
        self._enqueue(at, priority, event)
        return event

    def process(self, generator) -> "Process":
        """Launch ``generator`` as a simulation process."""
        from repro.sim.process import Process

        return Process(self, generator)

    def run_hybrid(self, stream) -> None:
        """Replay a pre-sorted static stream merged with the agenda.

        ``stream`` yields ``(time, priority, fn, a, b)`` records sorted
        lexicographically by ``(time, priority)``; each is dispatched as
        ``fn(a, b, time)`` without ever touching the agenda.  The agenda
        keeps serving *dynamic* events (timeouts, processes, anything
        scheduled while running).

        Ordering is bit-identical to scheduling the whole stream up
        front and calling :meth:`run`: had the static records been
        enqueued first, they would hold lower sequence numbers than
        every dynamically scheduled event, so on a ``(time, priority)``
        tie the static record must win — which is exactly the ``<=``
        below.  Relative order *among* dynamic events is untouched
        (they still go through the heap in scheduling order).

        Runs until both the stream and the agenda are exhausted.
        """
        agenda = self._agenda
        profiler = self.profiler
        monitor = self.monitor
        iterator = iter(stream)
        if profiler is None and monitor is None:
            # Uninstrumented hot loop: the agenda drain is an inner
            # loop comparing heap-head fields directly (no per-record
            # tuple build), and the step/clock lookups are hoisted.
            step = self.step
            pending = next(iterator, None)
            while pending is not None:
                at, priority, fn, a, b = pending
                while agenda:
                    head = agenda[0]
                    head_time = head[0]
                    if head_time > at or (
                        head_time == at and head[1] >= priority
                    ):
                        break
                    step()
                if at < self._now:
                    raise SimulationError(
                        f"static stream goes back in time: {at} < "
                        f"now={self._now}"
                    )
                self._now = at
                fn(a, b, at)
                pending = next(iterator, None)
            self.run()
            return
        if profiler is not None:
            from time import perf_counter

            record = profiler.record
        pending = next(iterator, None)
        while pending is not None:
            at, priority, fn, a, b = pending
            if agenda and (agenda[0][0], agenda[0][1]) < (at, priority):
                if profiler is None:
                    self.step()
                else:
                    started = perf_counter()
                    self.step()
                    record("engine.step", perf_counter() - started)
                if monitor is not None:
                    monitor.tick(self._now)
                continue
            if at < self._now:
                raise SimulationError(
                    f"static stream goes back in time: {at} < now={self._now}"
                )
            self._now = at
            if profiler is None:
                fn(a, b, at)
            else:
                started = perf_counter()
                fn(a, b, at)
                record("engine.step", perf_counter() - started)
            if monitor is not None:
                monitor.tick(at)
            pending = next(iterator, None)
        self.run()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the agenda empties or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if no event fires there, mirroring SimPy semantics.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} lies in the past (now={self._now})")
        profiler = self.profiler
        monitor = self.monitor
        if profiler is None and monitor is None:
            while self._agenda:
                if until is not None and self._agenda[0][0] > until:
                    break
                self.step()
        elif monitor is None:
            from time import perf_counter

            record = profiler.record
            while self._agenda:
                if until is not None and self._agenda[0][0] > until:
                    break
                started = perf_counter()
                self.step()
                record("engine.step", perf_counter() - started)
        else:
            if profiler is not None:
                from time import perf_counter

                record = profiler.record
            tick = monitor.tick
            while self._agenda:
                if until is not None and self._agenda[0][0] > until:
                    break
                if profiler is None:
                    self.step()
                else:
                    started = perf_counter()
                    self.step()
                    record("engine.step", perf_counter() - started)
                tick(self._now)
        if until is not None:
            self._now = max(self._now, until)
