"""The paper's two traces: NEWS (α = 1.5) and ALTERNATIVE (α = 1.0).

Both share every other parameter; only the Zipf homogeneity differs
(§4.2).  ``scale`` shrinks pages/requests/servers proportionally for
laptop-sized runs — 1.0 reproduces the paper's full-size workload.
"""

from __future__ import annotations

from repro.sim.rng import RandomStreams
from repro.workload.config import WorkloadConfig
from repro.workload.trace import Workload, generate_workload

#: Zipf α of the two traces (§4.2).
NEWS_ALPHA = 1.5
ALTERNATIVE_ALPHA = 1.0


def news_config(scale: float = 1.0) -> WorkloadConfig:
    """The NEWS trace configuration (α = 1.5)."""
    return WorkloadConfig(zipf_alpha=NEWS_ALPHA).scaled(scale)


def alternative_config(scale: float = 1.0) -> WorkloadConfig:
    """The ALTERNATIVE trace configuration (α = 1.0)."""
    return WorkloadConfig(zipf_alpha=ALTERNATIVE_ALPHA).scaled(scale)


def make_trace(name: str, scale: float = 1.0, seed: int = 7) -> Workload:
    """Generate one of the paper's traces by name ("news"/"alternative")."""
    key = name.lower()
    if key == "news":
        config = news_config(scale)
    elif key == "alternative":
        config = alternative_config(scale)
    else:
        raise KeyError(f"unknown trace {name!r}; use 'news' or 'alternative'")
    return generate_workload(config, RandomStreams(seed), label=key)
