"""Workload validation: check a generated trace against §4's targets.

A reproduction lives or dies by its workload, so this module audits a
generated :class:`~repro.workload.trace.Workload` against the
statistics the paper (and the MSNBC study it derives from) specifies:

* total publish volume ≈ 30 k over 7 days,
* event-weighted modification-interval mix ≈ 5 % / 90 % / 5 %,
* log-normal size location (median ≈ e^µ),
* Zipf-shaped request concentration for the configured α,
* eq. 6 server-pool behaviour (popular pages reach more servers),
* request recency (most requests near a version's publication).

Each check yields a :class:`ValidationCheck`; the report renders as
text (``repro-pubsub trace-stats --validate``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.workload.config import DAY, HOUR
from repro.workload.trace import Workload


def validate_churn_spec(spec) -> None:
    """Reject degenerate churn parameters with a clear ``ValueError``.

    Called from ``ChurnSpec.__post_init__`` (duck-typed, so the check
    list stays importable without the churn module), guarding against
    silently-degenerate traces: a negative churn rate or a non-positive
    lease duration would not crash the generator, it would just produce
    a lifecycle stream that means nothing.
    """
    if spec.churn_rate < 0:
        raise ValueError(
            f"churn_rate must be >= 0 (cycles/subscriber/day), got "
            f"{spec.churn_rate}"
        )
    if spec.lease_duration <= 0:
        raise ValueError(
            f"lease_duration must be positive seconds, got {spec.lease_duration}"
        )
    if spec.lease_min <= 0:
        raise ValueError(
            f"lease_min must be positive seconds, got {spec.lease_min}"
        )
    if not 0.0 <= spec.renew_probability <= 1.0:
        raise ValueError(
            f"renew_probability must be in [0, 1], got {spec.renew_probability}"
        )
    if spec.resubscribe_delay <= 0:
        raise ValueError(
            f"resubscribe_delay must be positive seconds, got "
            f"{spec.resubscribe_delay}"
        )
    if not 0.0 <= spec.confirmation_loss_probability <= 1.0:
        raise ValueError(
            "confirmation_loss_probability must be in [0, 1], got "
            f"{spec.confirmation_loss_probability}"
        )
    if spec.confirm_retry_limit < 0:
        raise ValueError(
            f"confirm_retry_limit must be >= 0, got {spec.confirm_retry_limit}"
        )
    if spec.confirm_timeout <= 0:
        raise ValueError(
            f"confirm_timeout must be positive seconds, got {spec.confirm_timeout}"
        )
    if spec.confirm_backoff_cap < spec.confirm_timeout:
        raise ValueError(
            "confirm_backoff_cap must be >= confirm_timeout, got "
            f"{spec.confirm_backoff_cap} < {spec.confirm_timeout}"
        )
    if spec.queue_limit < 1:
        raise ValueError(f"queue_limit must be >= 1, got {spec.queue_limit}")


@dataclass(frozen=True)
class ValidationCheck:
    """One audited statistic."""

    name: str
    measured: float
    low: float
    high: float
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.low <= self.measured <= self.high

    def render(self) -> str:
        status = "ok " if self.ok else "FAIL"
        return (
            f"[{status}] {self.name:<38s} measured={self.measured:>12.3f} "
            f"target=[{self.low:g}, {self.high:g}] {self.note}"
        )


@dataclass
class ValidationReport:
    """All checks for one workload."""

    checks: List[ValidationCheck]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"workload validation: {verdict}")
        return "\n".join(lines)


def validate_workload(workload: Workload) -> ValidationReport:
    """Audit ``workload`` against the §4 target statistics.

    Target windows scale with the configuration, so the same checks
    apply to shrunken test workloads and the full-size trace.
    """
    config = workload.config
    checks: List[ValidationCheck] = []
    scale = config.distinct_pages / 6000.0

    # Publish volume: the paper reports 30 147 for the full size.
    checks.append(
        ValidationCheck(
            name="publish volume (pages)",
            measured=float(workload.publish_count),
            low=18_000 * scale,
            high=45_000 * scale,
            note="(paper: 30147 full-size)",
        )
    )

    # Event-weighted modification-interval mix.
    short_events = 0
    long_events = 0
    total_events = 0
    for page in workload.pages:
        events = page.version_count - 1
        if events <= 0:
            continue
        total_events += events
        if page.modification_interval < HOUR:
            short_events += events
        elif page.modification_interval > DAY:
            long_events += events
    if total_events:
        checks.append(
            ValidationCheck(
                name="modification events with interval <1h",
                measured=short_events / total_events,
                low=0.01,
                high=0.20,
                note="(paper: 5%)",
            )
        )
        checks.append(
            ValidationCheck(
                name="modification events with interval >1d",
                measured=long_events / total_events,
                low=0.005,
                high=0.20,
                note="(paper: 5%)",
            )
        )

    # Log-normal size location.
    sizes = np.asarray([page.size for page in workload.pages], dtype=float)
    checks.append(
        ValidationCheck(
            name="median page size / e^mu",
            measured=float(np.median(sizes) / np.exp(config.size_mu)),
            low=0.6,
            high=1.6,
        )
    )

    # Zipf concentration: share of requests on the top 1% of pages.
    counts = np.sort([page.request_count for page in workload.pages])[::-1]
    if counts.sum():
        top = max(1, len(counts) // 100)
        share = counts[:top].sum() / counts.sum()
        if config.zipf_alpha >= 1.3:
            low, high = 0.35, 0.95
        else:
            low, high = 0.10, 0.75
        checks.append(
            ValidationCheck(
                name=f"top-1% request share (alpha={config.zipf_alpha:g})",
                measured=float(share),
                low=low,
                high=high,
            )
        )

    # Eq. 6: popular pages are requested by more servers.
    servers_by_page = defaultdict(set)
    for record in workload.requests:
        servers_by_page[record.page_id].add(record.server_id)
    pages_by_count = sorted(workload.pages, key=lambda p: -p.request_count)
    head = pages_by_count[: max(1, len(pages_by_count) // 50)]
    tail = [p for p in pages_by_count if 0 < p.request_count <= 3]
    if head and tail:
        head_spread = float(
            np.mean([len(servers_by_page[p.page_id]) for p in head])
        )
        tail_spread = float(
            np.mean([len(servers_by_page[p.page_id]) for p in tail])
        )
        checks.append(
            ValidationCheck(
                name="server spread ratio (head/tail pages)",
                measured=head_spread / max(tail_spread, 0.01),
                low=1.5,
                high=float("inf"),
            )
        )

    # Request recency: median age from the current version.
    sampled_ages = []
    stride = max(1, workload.request_count // 4000)
    for record in workload.requests[::stride]:
        page = workload.pages[record.page_id]
        version = workload.version_at(record.page_id, record.time)
        version_time = page.first_publish + version * page.modification_interval
        sampled_ages.append(record.time - version_time)
    if sampled_ages:
        checks.append(
            ValidationCheck(
                name="median request age from version (h)",
                measured=float(np.median(sampled_ages) / HOUR),
                low=0.0,
                high=36.0,
            )
        )

    # Subscription lifecycle (only audited when the churn dimension is
    # attached): every request pair must start the run under a lease,
    # otherwise the lifecycle layer would miscount its first accesses
    # as silent expiries.
    if getattr(workload, "lifecycle", None):
        pairs = {(record.page_id, record.server_id) for record in workload.requests}
        initial = {
            (event.page_id, event.server_id)
            for event in workload.lifecycle
            if event.kind == "subscribe" and event.time == 0.0
        }
        coverage = len(initial & pairs) / max(1, len(pairs))
        checks.append(
            ValidationCheck(
                name="lifecycle initial-lease coverage",
                measured=coverage,
                low=0.999,
                high=1.0,
                note="(every request pair starts leased)",
            )
        )

    return ValidationReport(checks=checks)
