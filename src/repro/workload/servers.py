"""Splitting requests across proxy servers (§4.2, eq. 6).

Frequently referenced pages are accessed by more organizations, so the
maximum number of servers requesting page i in one day is

    S_i = ceil(server_count · (P_i / P_max)^0.5)            (eq. 6)

where P_i is the page's popularity (its request count here).  For the
first day a page is requested, S_i servers are drawn uniformly as its
candidate pool; on each following day 40 % of the pool is replaced by
servers currently outside it (60 % overlap).  Every request on a day is
assigned uniformly to that day's pool.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workload.config import DAY


def pool_size(
    popularity: float, max_popularity: float, server_count: int, exponent: float = 0.5
) -> int:
    """Eq. 6: per-day candidate pool size for a page (at least 1)."""
    if max_popularity <= 0:
        return 1
    size = server_count * (popularity / max_popularity) ** exponent
    return max(1, min(server_count, int(np.ceil(size))))


def daily_pools(
    pool: np.ndarray,
    day_count: int,
    server_count: int,
    overlap: float,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Evolve a page's candidate pool over ``day_count`` days.

    Day d+1 keeps ``round(overlap·|pool|)`` members of day d's pool and
    refills with servers outside it.  When the pool already covers all
    servers there is nothing to swap in, so the pool persists.
    """
    pools = [pool]
    size = len(pool)
    for _ in range(1, day_count):
        current = pools[-1]
        keep_count = int(round(overlap * size))
        keep_count = min(keep_count, size)
        outside = np.setdiff1d(np.arange(server_count), current, assume_unique=False)
        swap_count = min(size - keep_count, len(outside))
        kept = rng.choice(current, size=size - swap_count, replace=False)
        if swap_count:
            fresh = rng.choice(outside, size=swap_count, replace=False)
            pools.append(np.concatenate([kept, fresh]))
        else:
            pools.append(current)
    return pools


def assign_servers(
    request_times: np.ndarray,
    first_publish: float,
    popularity: float,
    max_popularity: float,
    server_count: int,
    overlap: float,
    rng: np.random.Generator,
    exponent: float = 0.5,
) -> np.ndarray:
    """Server id for every request of one page.

    Days are counted from the page's first publication (a page's "first
    day requested" in the paper), so the pool rotation tracks the
    page's own lifetime rather than the global clock.
    """
    if len(request_times) == 0:
        return np.zeros(0, dtype=np.int64)
    size = pool_size(popularity, max_popularity, server_count, exponent)
    day_index = ((request_times - first_publish) // DAY).astype(np.int64)
    day_index = np.maximum(day_index, 0)
    day_count = int(day_index.max()) + 1
    first_pool = rng.choice(server_count, size=size, replace=False)
    pools = daily_pools(first_pool, day_count, server_count, overlap, rng)
    assignments = np.empty(len(request_times), dtype=np.int64)
    for position, day in enumerate(day_index):
        pool = pools[day]
        assignments[position] = pool[int(rng.integers(len(pool)))]
    return assignments
