"""Synthetic publish/subscribe workload generation (§4 of the paper).

No real publish/subscribe traces exist (a key difficulty the paper
highlights), so the workload is synthesized from published observations
of MSNBC, one of the busiest news sites of the time (Padmanabhan & Qiu,
SIGCOMM 2000):

* ~30 000 pages published over 7 days, of which ~24 000 are modified
  versions of 2 400 out of 6 000 distinct pages
  (:mod:`repro.workload.publishing`);
* log-normal page sizes with µ = 9.357, σ = 1.318
  (:mod:`repro.workload.sizes`);
* Zipf popularity with α = 1.5 (NEWS) or α = 1.0 (ALTERNATIVE)
  (:mod:`repro.workload.popularity`);
* request times inversely correlated with page age, stronger for more
  popular pages, with four popularity classes whose aggregate request
  rates decay ~10× class-to-class (:mod:`repro.workload.requests`);
* requests split across 100 proxy servers through per-day candidate
  pools with 60 % day-to-day overlap, pool size ∝ √popularity
  (:mod:`repro.workload.servers`, eq. 6);
* subscription counts derived from request counts and the subscription
  quality SQ (:mod:`repro.workload.subscriptions`, eq. 7).

:func:`~repro.workload.trace.generate_workload` runs the full pipeline;
:mod:`repro.workload.presets` provides the paper's NEWS and ALTERNATIVE
configurations, with a ``scale`` knob for laptop-sized runs.
"""

from repro.workload.config import WorkloadConfig
from repro.workload.trace import Workload, PageSpec, PublishRecord, RequestRecord, generate_workload
from repro.workload.churn import ChurnSpec, LifecycleRecord, generate_churn, churn_statistics
from repro.workload.subscriptions import build_match_counts
from repro.workload.presets import news_config, alternative_config
from repro.workload.validate import ValidationReport, validate_workload, validate_churn_spec

__all__ = [
    "WorkloadConfig",
    "Workload",
    "PageSpec",
    "PublishRecord",
    "RequestRecord",
    "generate_workload",
    "ChurnSpec",
    "LifecycleRecord",
    "generate_churn",
    "churn_statistics",
    "build_match_counts",
    "news_config",
    "alternative_config",
    "ValidationReport",
    "validate_workload",
    "validate_churn_spec",
]
