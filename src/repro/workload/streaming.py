"""Streaming workload generation: the §4 pipeline with flat memory.

:func:`generate_streaming_workload` runs the exact same generation
pipeline as :func:`repro.workload.trace.generate_workload` — same
streams, same draw order, same values — but never holds the full
publish/request record lists in memory.  Instead, events are buffered
in bounded numpy chunks, sorted, and spilled to disk as *runs* of a
binary spool file; replay k-way-merges the runs lazily (external merge
sort), so iterating a 10M-event trace costs O(chunk), not O(trace).

Bit identity with the materialized form follows from two facts:

* **Same draws.**  The per-page RNG consumption (request times, then
  server assignment, page by page in id order) is byte-for-byte the
  code path of ``generate_workload``, against the same named streams.
* **Same order.**  The materialized form sorts requests by
  ``(time, server_id, page_id)`` and publishes by ``(time, page_id)``.
  Each spilled run is sorted by the full key and the k-way merge
  combines runs by the same key, so the merged sequence is the unique
  sorted order of the same multiset — element-wise equal to the
  materialized lists (``tests/workload/test_streaming.py`` asserts
  this property over seeds, scales and chunk sizes).

What *is* kept in memory is bounded by trace shape, not length: page
metadata (O(pages)), the aggregated ``(page_id, server_id) → count``
table (O(distinct pairs), capped by pages x servers), and the spill
buffer (O(chunk)).  Generation additionally holds one page's request
arrays at a time — the transient high-water mark is the hottest page,
a small constant x its count, versus the materialized form's ~100
bytes per record *retained for every record at once*.

The aggregated pair counts stand in for the request-pair list wherever
only counts matter: eq. 7 match tables
(:func:`repro.workload.subscriptions.build_match_counts` accepts the
mapping form), capacity sizing and churn generation — all bit-identical
to their materialized counterparts.
"""

from __future__ import annotations

import heapq
import os
import shutil
import tempfile
import weakref
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.rng import RandomStreams
from repro.workload.config import WorkloadConfig
from repro.workload.popularity import popularity_model
from repro.workload.publishing import generate_publishing_stream
from repro.workload.requests import (
    request_times_for_page,
    request_times_for_versions,
)
from repro.workload.servers import assign_servers
from repro.workload.sizes import generate_sizes
from repro.workload.trace import (
    PageSpec,
    PublishRecord,
    RequestRecord,
    capacities_from_unique,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.churn import ChurnSpec, LifecycleRecord

#: On-disk row layouts.  Times are the float64 values the generators
#: drew (binary round trip is exact), ids are int32 (plenty: page and
#: server counts are bounded far below 2**31).
REQUEST_DTYPE = np.dtype(
    [("time", "<f8"), ("server", "<i4"), ("page", "<i4")]
)
PUBLISH_DTYPE = np.dtype(
    [("time", "<f8"), ("page", "<i4"), ("version", "<i4")]
)

#: Default spill threshold (events buffered before a run is written)
#: and replay read granularity (rows per read), both in events.
DEFAULT_CHUNK_EVENTS = 1 << 18
DEFAULT_READ_CHUNK = 1 << 16


def _cleanup_spool(directory: str, owner_pid: int) -> None:
    """Remove a spool directory — but only in the process that made it.

    Forked shard workers inherit the finalizer registry; without the
    pid guard the first worker to exit would delete the spool out from
    under the parent and its sibling shards.
    """
    if os.getpid() == owner_pid:
        shutil.rmtree(directory, ignore_errors=True)


class _Spool:
    """Owns the on-disk spool directory; removed when unreferenced.

    Shared by a workload and its ``with_churn`` copies, so the files
    live exactly as long as any view over them.
    """

    def __init__(self) -> None:
        self.directory = tempfile.mkdtemp(prefix="repro-stream-")
        self.request_path = os.path.join(self.directory, "requests.bin")
        self.publish_path = os.path.join(self.directory, "publishes.bin")
        self._finalizer = weakref.finalize(
            self, _cleanup_spool, self.directory, os.getpid()
        )

    def close(self) -> None:
        self._finalizer()


def _iter_run(
    path: str,
    dtype: np.dtype,
    start_row: int,
    row_count: int,
    read_chunk: int,
) -> Iterator[tuple]:
    """Rows of one sorted run as plain-python tuples, chunk by chunk."""
    with open(path, "rb") as handle:
        handle.seek(start_row * dtype.itemsize)
        remaining = row_count
        while remaining > 0:
            count = min(read_chunk, remaining)
            chunk = np.fromfile(handle, dtype=dtype, count=count)
            if len(chunk) != count:
                raise IOError(
                    f"truncated spool run in {path}: wanted {count} rows, "
                    f"got {len(chunk)}"
                )
            remaining -= count
            # .tolist() on a structured array yields tuples of native
            # python scalars, which compare exactly like the sort key
            # (the fields are laid out in key order).
            yield from chunk.tolist()


class _RecordView:
    """A re-iterable view over one merged stream of a streaming trace."""

    __slots__ = ("_iter_factory", "_count")

    def __init__(self, iter_factory, count: int) -> None:
        self._iter_factory = iter_factory
        self._count = count

    def __iter__(self):
        return self._iter_factory()

    def __len__(self) -> int:
        return self._count


class StreamingWorkload:
    """A generated trace whose event streams live on disk.

    Duck-compatible with :class:`~repro.workload.trace.Workload` for
    everything the simulator consumes: ``config``, ``pages``,
    ``label``, ``lifecycle``, ``churn``, ``capacities``,
    ``request_pairs`` (mapping form), ``publish_count``/
    ``request_count``, and re-iterable ``publishes``/``requests``
    views.  The views yield the records lazily in exactly the
    materialized sort order.
    """

    #: Engine dispatch flag: iterate, never index or len-and-loop.
    streaming = True

    def __init__(
        self,
        config: WorkloadConfig,
        pages: List[PageSpec],
        spool: _Spool,
        publish_runs: List[Tuple[int, int]],
        request_runs: List[Tuple[int, int]],
        pair_counts: Dict[Tuple[int, int], int],
        publish_total: int,
        request_total: int,
        label: str = "",
        lifecycle: Optional[List["LifecycleRecord"]] = None,
        churn: Optional["ChurnSpec"] = None,
        read_chunk: int = DEFAULT_READ_CHUNK,
    ) -> None:
        self.config = config
        self.pages = pages
        self.label = label
        self.lifecycle: List["LifecycleRecord"] = list(lifecycle or [])
        self.churn = churn
        self._spool = spool
        self._publish_runs = publish_runs
        self._request_runs = request_runs
        self._pair_counts = pair_counts
        self._publish_total = publish_total
        self._request_total = request_total
        self._read_chunk = int(read_chunk)

    # -- counts ----------------------------------------------------------

    @property
    def publish_count(self) -> int:
        return self._publish_total

    @property
    def request_count(self) -> int:
        return self._request_total

    # -- the merged streams ----------------------------------------------

    def _merged_rows(
        self, path: str, dtype: np.dtype, runs: List[Tuple[int, int]]
    ) -> Iterator[tuple]:
        # The k-way merge keeps one read buffer per run alive at once,
        # so ``read_chunk`` is a *total* budget divided across the runs
        # — otherwise merge memory would grow linearly with the trace
        # (more events -> more spilled runs x a fixed buffer each).
        per_run = max(64, self._read_chunk // max(1, len(runs)))
        iterators = [
            _iter_run(path, dtype, start, count, per_run)
            for start, count in runs
        ]
        if len(iterators) == 1:
            return iterators[0]
        return heapq.merge(*iterators)

    def iter_publishes(self) -> Iterator[PublishRecord]:
        """Publish events in ``(time, page_id)`` order, lazily."""
        for time, page_id, version in self._merged_rows(
            self._spool.publish_path, PUBLISH_DTYPE, self._publish_runs
        ):
            yield PublishRecord(time=time, page_id=page_id, version=version)

    def iter_requests(self) -> Iterator[RequestRecord]:
        """Requests in ``(time, server_id, page_id)`` order, lazily."""
        for time, server_id, page_id in self._merged_rows(
            self._spool.request_path, REQUEST_DTYPE, self._request_runs
        ):
            yield RequestRecord(
                time=time, server_id=server_id, page_id=page_id
            )

    @property
    def publishes(self) -> _RecordView:
        return _RecordView(self.iter_publishes, self._publish_total)

    @property
    def requests(self) -> _RecordView:
        return _RecordView(self.iter_requests, self._request_total)

    # -- aggregates (bit-identical to the materialized form) --------------

    def request_pairs(self) -> Dict[Tuple[int, int], int]:
        """Aggregated ``(page_id, server_id) → request count`` mapping.

        The mapping form of :meth:`Workload.request_pairs`:
        :func:`~repro.workload.subscriptions.build_match_counts` and
        :func:`~repro.workload.churn.generate_churn` only consume the
        counts / the distinct-pair set, so both produce bit-identical
        output from either form.  Treat the returned dict as read-only.
        """
        return self._pair_counts

    def per_server_request_counts(self) -> Dict[int, int]:
        """Total requests arriving at each server (shard planning)."""
        totals: Dict[int, int] = {}
        for (_page_id, server_id), count in self._pair_counts.items():
            totals[server_id] = totals.get(server_id, 0) + count
        return totals

    def unique_bytes_per_server(self) -> Dict[int, int]:
        """Unique requested bytes per server; see :class:`Workload`."""
        sizes = {page.page_id: page.size for page in self.pages}
        seen: Dict[int, set] = {}
        for page_id, server_id in self._pair_counts:
            seen.setdefault(server_id, set()).add(page_id)
        return {
            server: sum(sizes[page_id] for page_id in pages)
            for server, pages in seen.items()
        }

    def capacities(self, fraction: float) -> Dict[int, int]:
        """Per-server capacities; bit-identical to the materialized form."""
        return capacities_from_unique(
            self.unique_bytes_per_server(), self.config.server_count, fraction
        )

    def version_at(self, page_id: int, when: float) -> int:
        """Version of ``page_id`` current at ``when``; see :class:`Workload`."""
        page = self.pages[page_id]
        if page.modification_interval <= 0.0:
            return 0
        elapsed = max(0.0, when - page.first_publish)
        return min(
            page.version_count - 1, int(elapsed // page.modification_interval)
        )

    # -- subscription churn ----------------------------------------------

    def with_churn(
        self, spec: "ChurnSpec", rng: np.random.Generator
    ) -> "StreamingWorkload":
        """A copy with the lifecycle stream attached (spool is shared).

        ``generate_churn`` deduplicates and sorts its input pairs, so
        feeding it the distinct-pair keys produces the exact stream the
        materialized per-request pair list would.
        """
        from repro.workload.churn import generate_churn

        events = generate_churn(
            self._pair_counts.keys(), self.config.horizon, spec, rng
        )
        return StreamingWorkload(
            config=self.config,
            pages=self.pages,
            spool=self._spool,
            publish_runs=self._publish_runs,
            request_runs=self._request_runs,
            pair_counts=self._pair_counts,
            publish_total=self._publish_total,
            request_total=self._request_total,
            label=self.label,
            lifecycle=events,
            churn=spec,
            read_chunk=self._read_chunk,
        )

    # -- materialization (tests, serialization fallback) -------------------

    def materialize(self) -> "Workload":
        """Collect the streams into an ordinary :class:`Workload`."""
        from repro.workload.trace import Workload

        return Workload(
            config=self.config,
            pages=self.pages,
            publishes=list(self.iter_publishes()),
            requests=list(self.iter_requests()),
            label=self.label,
            lifecycle=list(self.lifecycle),
            churn=self.churn,
        )

    def close(self) -> None:
        """Delete the spool now instead of waiting for GC.

        Shared with any ``with_churn`` copies — closing one closes all.
        """
        self._spool.close()


class _SpillWriter:
    """Accumulates column chunks and spills sorted runs to a spool file."""

    def __init__(self, path: str, dtype: np.dtype, chunk_events: int) -> None:
        self._handle = open(path, "wb")
        self._dtype = dtype
        self._chunk_events = max(1, int(chunk_events))
        self._columns: List[Tuple[np.ndarray, ...]] = []
        self._buffered = 0
        self._next_row = 0
        self.runs: List[Tuple[int, int]] = []
        self.total = 0

    def append(self, *columns: np.ndarray) -> None:
        count = len(columns[0])
        if count == 0:
            return
        self._columns.append(columns)
        self._buffered += count
        self.total += count
        if self._buffered >= self._chunk_events:
            self.flush()

    def flush(self) -> None:
        if not self._columns:
            return
        stacked = [
            np.concatenate([chunk[i] for chunk in self._columns])
            for i in range(len(self._columns[0]))
        ]
        # lexsort's *last* key is primary: columns are laid out in key
        # order (time first), so reverse them for the sort.
        order = np.lexsort(tuple(reversed(stacked)))
        rows = np.empty(len(order), dtype=self._dtype)
        for name, column in zip(self._dtype.names, stacked):
            rows[name] = column[order]
        rows.tofile(self._handle)
        self.runs.append((self._next_row, len(rows)))
        self._next_row += len(rows)
        self._columns = []
        self._buffered = 0

    def close(self) -> None:
        self.flush()
        self._handle.close()


def generate_streaming_workload(
    config: WorkloadConfig,
    streams: RandomStreams,
    label: str = "",
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
    read_chunk: int = DEFAULT_READ_CHUNK,
) -> StreamingWorkload:
    """Run the §4 pipeline spilling events to disk instead of RAM.

    Consumes the RNG streams in exactly the order of
    :func:`~repro.workload.trace.generate_workload` (the per-page loop
    is the same code against the same streams), so the two forms are
    bit-identical; only where the records *live* differs.
    """
    if chunk_events < 1:
        raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
    sizes = generate_sizes(config, streams.stream("workload.sizes"))
    ranks, counts, classes = popularity_model(
        config.distinct_pages,
        config.zipf_alpha,
        config.total_requests,
        config.class_count,
        config.class_rate_decay,
        streams.stream("workload.popularity"),
    )
    first_times, intervals, version_times = generate_publishing_stream(
        config, streams.stream("workload.publishing"), popularity_counts=counts
    )

    pages = [
        PageSpec(
            page_id=page_id,
            size=int(sizes[page_id]),
            rank=int(ranks[page_id]),
            popularity_class=int(classes[page_id]),
            request_count=int(counts[page_id]),
            first_publish=float(first_times[page_id]),
            modification_interval=float(intervals[page_id]),
            version_count=len(version_times[page_id]),
        )
        for page_id in range(config.distinct_pages)
    ]

    spool = _Spool()
    try:
        publish_writer = _SpillWriter(
            spool.publish_path, PUBLISH_DTYPE, chunk_events
        )
        for page_id, times in enumerate(version_times):
            count = len(times)
            if count == 0:
                continue
            publish_writer.append(
                np.asarray(times, dtype=np.float64),
                np.full(count, page_id, dtype=np.int32),
                np.arange(count, dtype=np.int32),
            )
        publish_writer.close()

        request_writer = _SpillWriter(
            spool.request_path, REQUEST_DTYPE, chunk_events
        )
        pair_counts: Dict[Tuple[int, int], int] = {}
        request_rng = streams.stream("workload.requests")
        server_rng = streams.stream("workload.servers")
        max_count = max(1, int(counts.max())) if len(counts) else 1
        for page_id in range(config.distinct_pages):
            count = int(counts[page_id])
            if count == 0:
                continue
            gamma = config.age_exponents[int(classes[page_id])]
            if config.age_from_latest_version:
                times = request_times_for_versions(
                    count,
                    version_times[page_id],
                    config.horizon,
                    gamma,
                    request_rng,
                    story_decay=config.story_decay,
                    story_decay_mode=config.story_decay_mode,
                    story_decay_exponent=config.story_decay_exponent,
                    story_halflife_hours=config.story_halflife_hours,
                )
            else:
                times = request_times_for_page(
                    count,
                    float(first_times[page_id]),
                    config.horizon,
                    gamma,
                    request_rng,
                )
            if len(times) == 0:
                continue
            servers = assign_servers(
                times,
                float(first_times[page_id]),
                popularity=count,
                max_popularity=max_count,
                server_count=config.server_count,
                overlap=config.pool_overlap,
                rng=server_rng,
                exponent=config.pool_exponent,
            )
            servers = np.asarray(servers, dtype=np.int32)
            request_writer.append(
                np.asarray(times, dtype=np.float64),
                servers,
                np.full(len(times), page_id, dtype=np.int32),
            )
            unique_servers, per_server = np.unique(servers, return_counts=True)
            for server_id, server_count in zip(
                unique_servers.tolist(), per_server.tolist()
            ):
                pair_counts[(page_id, server_id)] = server_count
        request_writer.close()
    except BaseException:
        spool.close()
        raise

    return StreamingWorkload(
        config=config,
        pages=pages,
        spool=spool,
        publish_runs=publish_writer.runs,
        request_runs=request_writer.runs,
        pair_counts=pair_counts,
        publish_total=publish_writer.total,
        request_total=request_writer.total,
        label=label,
        read_chunk=read_chunk,
    )


def make_streaming_trace(
    name: str,
    scale: float = 1.0,
    seed: int = 7,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> StreamingWorkload:
    """Streaming counterpart of :func:`repro.workload.presets.make_trace`."""
    from repro.workload.presets import alternative_config, news_config

    key = name.lower()
    if key == "news":
        config = news_config(scale)
    elif key == "alternative":
        config = alternative_config(scale)
    else:
        raise KeyError(f"unknown trace {name!r}; use 'news' or 'alternative'")
    return generate_streaming_workload(
        config, RandomStreams(seed), label=key, chunk_events=chunk_events
    )
