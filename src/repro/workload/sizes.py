"""Page size generation (§4.1).

Sizes follow the log-normal model of Barford & Crovella (SIGMETRICS
1998) with the parameters the paper quotes in footnote 1:

    p(x) = 1 / (x·σ·√(2π)) · exp(−(ln x − µ)² / 2σ²),
    µ = 9.357, σ = 1.318

giving a median of ~11.6 KB and a mean of ~27.5 KB per page.  Sizes
are clipped to configurable bounds to keep the far tail from producing
pages larger than a whole cache at small scales.
"""

from __future__ import annotations

import numpy as np

from repro.workload.config import WorkloadConfig


def generate_sizes(config: WorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    """Sizes (bytes, int64) for every distinct page."""
    raw = rng.lognormal(
        mean=config.size_mu, sigma=config.size_sigma, size=config.distinct_pages
    )
    clipped = np.clip(raw, config.min_page_size, config.max_page_size)
    return np.maximum(1, np.rint(clipped)).astype(np.int64)


def lognormal_mean(mu: float, sigma: float) -> float:
    """Analytic mean of the log-normal — used by tests and docs."""
    return float(np.exp(mu + sigma**2 / 2.0))


def lognormal_median(mu: float, sigma: float) -> float:
    """Analytic median of the log-normal."""
    return float(np.exp(mu))
