"""Workload configuration.

All §4 parameters in one dataclass, with the paper's values as
defaults.  :meth:`WorkloadConfig.scaled` shrinks a configuration
proportionally for tests and laptop benchmarks while preserving the
distributions that drive the results (Zipf α, size distribution,
modification-interval mix, pool overlap).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

#: Seconds per hour/day, used throughout the workload generator.
HOUR = 3600.0
DAY = 24 * HOUR


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the §4 news-delivery workload.

    Defaults reproduce the paper's full-size NEWS trace.
    """

    #: Simulation horizon in seconds (7 days in the paper).
    horizon: float = 7 * DAY
    #: Number of distinct pages (6 000 in the paper).
    distinct_pages: int = 6000
    #: How many distinct pages receive modified versions (2 400).
    modified_pages: int = 2400
    #: Total requests across all proxies over the horizon (~195 000,
    #: i.e. 1/1000 of MSNBC's ~25 M/day scaled to 100 proxies).
    total_requests: int = 195_000
    #: Number of proxy servers (100 in the paper).
    server_count: int = 100
    #: Zipf homogeneity α (1.5 for NEWS, 1.0 for ALTERNATIVE).
    zipf_alpha: float = 1.5

    # -- page sizes (log-normal, Barford & Crovella) ------------------------
    size_mu: float = 9.357
    size_sigma: float = 1.318
    #: Floor/ceiling on page sizes in bytes (keeps the tail sane).
    min_page_size: int = 128
    max_page_size: int = 8 * 1024 * 1024

    # -- modification intervals (§4.1 step-wise distribution) --------------
    #: Fraction of modification intervals below one hour.
    short_interval_fraction: float = 0.05
    #: Fraction of modification intervals above one day.
    long_interval_fraction: float = 0.05
    #: Bounds of the short/long steps (seconds).
    min_interval: float = 10 * 60.0
    max_interval: float = 3.5 * DAY

    # -- request dynamics (§4.2) ----------------------------------------------
    #: Number of popularity classes.
    class_count: int = 4
    #: Aggregate request-rate decay from one class to the next (~10x).
    class_rate_decay: float = 10.0
    #: Age-decay exponents per class, most popular first.  More popular
    #: pages have a stronger negative age correlation (§4.2).
    age_exponents: Tuple[float, ...] = (2.0, 1.5, 1.0, 0.5)

    # -- popularity/update coupling (§4.1; Padmanabhan & Qiu) ---------------
    #: Popular news pages are the frequently updated ones (the MSNBC
    #: study the workload is derived from observes that frequently
    #: accessed pages change often, and the paper motivates content
    #: distribution with "popular objects with high update
    #: frequencies").  Modified pages are sampled with probability
    #: ∝ (request_count + 1)^bias; 0.0 recovers the uniform choice.
    modified_popularity_bias: float = 1.0
    #: When True, the shortest modification intervals go to the most
    #: popular modified pages (rank correlation 1); when False the
    #: intervals are assigned at random.
    couple_intervals_to_popularity: bool = True
    #: When True, request ages are measured from a sampled version
    #: publication time instead of the first publication, so an
    #: updating story keeps drawing traffic over its whole life.
    age_from_latest_version: bool = True
    #: When True, the sampled version is weighted by the page's overall
    #: age (interest in the story fades even while updates continue);
    #: when False versions draw requests uniformly.
    story_decay: bool = True
    #: Story-fade shape: "exponential" (interest in a story dies off
    #: with half-life ``story_halflife_hours`` — news goes stale) or
    #: "power" (heavy-tailed fade with ``story_decay_exponent``).
    story_decay_mode: str = "exponential"
    #: Exponent of the power-law story fade ``(1 + story_age/1h)^(−e)``.
    story_decay_exponent: float = 1.0
    #: Half-life (hours) of the exponential story fade.
    story_halflife_hours: float = 24.0

    # -- server split (§4.2, eq. 6) ----------------------------------------------
    #: Exponent of the popularity->pool-size law (0.5 in eq. 6).
    pool_exponent: float = 0.5
    #: Day-to-day overlap of a page's server pool (60 % in the paper).
    pool_overlap: float = 0.6

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.distinct_pages < 1:
            raise ValueError("distinct_pages must be >= 1")
        if not 0 <= self.modified_pages <= self.distinct_pages:
            raise ValueError(
                f"modified_pages must be in [0, distinct_pages], got "
                f"{self.modified_pages}/{self.distinct_pages}"
            )
        if self.server_count < 1:
            raise ValueError("server_count must be >= 1")
        if self.total_requests < 0:
            raise ValueError("total_requests must be >= 0")
        if self.zipf_alpha <= 0:
            raise ValueError(f"zipf_alpha must be positive, got {self.zipf_alpha}")
        if len(self.age_exponents) != self.class_count:
            raise ValueError(
                f"need one age exponent per class: "
                f"{len(self.age_exponents)} != {self.class_count}"
            )
        if not 0.0 <= self.pool_overlap <= 1.0:
            raise ValueError(f"pool_overlap must be in [0, 1], got {self.pool_overlap}")
        if self.story_decay_mode not in ("exponential", "power"):
            raise ValueError(
                f"story_decay_mode must be 'exponential' or 'power', got "
                f"{self.story_decay_mode!r}"
            )
        if self.story_halflife_hours <= 0:
            raise ValueError(
                f"story_halflife_hours must be positive, got "
                f"{self.story_halflife_hours}"
            )
        if self.modified_popularity_bias < 0:
            raise ValueError(
                f"modified_popularity_bias must be >= 0, got "
                f"{self.modified_popularity_bias}"
            )
        fraction_sum = self.short_interval_fraction + self.long_interval_fraction
        if fraction_sum >= 1.0:
            raise ValueError(
                "short + long interval fractions must leave room for the "
                f"middle step, got {fraction_sum}"
            )

    def scaled(self, scale: float) -> "WorkloadConfig":
        """A proportionally smaller (or larger) configuration.

        Pages, requests and servers scale together so per-server and
        per-page request densities — which drive cache behaviour —
        stay comparable to the full-size workload.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return dataclasses.replace(
            self,
            distinct_pages=max(10, int(round(self.distinct_pages * scale))),
            modified_pages=max(2, int(round(self.modified_pages * scale))),
            total_requests=max(100, int(round(self.total_requests * scale))),
            server_count=max(2, int(round(self.server_count * scale))),
        )

    def with_alpha(self, alpha: float) -> "WorkloadConfig":
        """Same workload with a different Zipf α (NEWS vs ALTERNATIVE)."""
        return dataclasses.replace(self, zipf_alpha=alpha)

    @property
    def days(self) -> int:
        """Number of (possibly partial) days in the horizon."""
        return int(self.horizon // DAY) + (1 if self.horizon % DAY else 0)
