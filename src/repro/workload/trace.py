"""Workload assembly: the full §4 pipeline and its output format.

:func:`generate_workload` runs sizes → popularity → publishing →
request times → server split and returns a :class:`Workload` holding
three time-ordered streams (publish events, requests) plus per-page
metadata.  Subscription tables are built separately per SQ value with
:func:`repro.workload.subscriptions.build_match_counts` so one trace
can be reused across the Fig. 5 quality sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.rng import RandomStreams
from repro.workload.config import WorkloadConfig
from repro.workload.popularity import popularity_model
from repro.workload.publishing import generate_publishing_stream
from repro.workload.requests import (
    request_times_for_page,
    request_times_for_versions,
)
from repro.workload.servers import assign_servers
from repro.workload.sizes import generate_sizes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (churn imports
    # validate, which imports this module); runtime imports are local.
    from repro.workload.churn import ChurnSpec, LifecycleRecord


@dataclass(frozen=True)
class PageSpec:
    """Static description of one distinct page."""

    page_id: int
    size: int
    rank: int
    popularity_class: int
    request_count: int
    first_publish: float
    modification_interval: float  # 0.0 when never modified
    version_count: int


@dataclass(frozen=True, slots=True)
class PublishRecord:
    """One publish event: version ``version`` of ``page_id`` at ``time``."""

    time: float
    page_id: int
    version: int


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One end-user request arriving at proxy ``server_id``."""

    time: float
    server_id: int
    page_id: int


@dataclass
class Workload:
    """A complete generated trace."""

    config: WorkloadConfig
    pages: List[PageSpec]
    publishes: List[PublishRecord]
    requests: List[RequestRecord]
    #: name of the preset that produced this trace ("news", ...), if any.
    label: str = ""
    #: Subscription lifecycle events (subscribe/renew/unsubscribe), a
    #: third time-sorted static stream; empty on a churn-free trace.
    lifecycle: List["LifecycleRecord"] = field(default_factory=list)
    #: The churn parameters that produced ``lifecycle`` (None = off).
    churn: Optional["ChurnSpec"] = None
    #: Memoized (page_id, server_id) pairs.  ``init=False`` keeps the
    #: memo out of ``dataclasses.replace`` copies (``with_churn`` and
    #: friends), so a copy whose ``requests`` were replaced rebuilds the
    #: pairs instead of silently inheriting a stale list.
    _request_pairs: List[Tuple[int, int]] = field(
        default_factory=list, repr=False, init=False, compare=False
    )

    @property
    def publish_count(self) -> int:
        return len(self.publishes)

    @property
    def request_count(self) -> int:
        return len(self.requests)

    def request_pairs(self) -> List[Tuple[int, int]]:
        """(page_id, server_id) per request — input to eq. 7."""
        if not self._request_pairs:
            self._request_pairs = [
                (record.page_id, record.server_id) for record in self.requests
            ]
        return self._request_pairs

    def version_at(self, page_id: int, when: float) -> int:
        """Version of ``page_id`` current at time ``when``.

        Versions appear at ``first_publish + k·interval``, so the index
        is a closed-form floor; requests never precede the first
        publication by construction.
        """
        page = self.pages[page_id]
        if page.modification_interval <= 0.0:
            return 0
        elapsed = max(0.0, when - page.first_publish)
        return min(
            page.version_count - 1, int(elapsed // page.modification_interval)
        )

    def unique_bytes_per_server(self) -> Dict[int, int]:
        """Unique bytes requested at each server over the whole trace.

        The paper sets each proxy's capacity to a percentage of this
        quantity (§5.1): distinct *pages* requested at the server,
        weighted by size.  At the paper's parameters this makes caches
        small (a handful of average pages at the 5 % setting), which is
        consistent with the absolute hit-ratio levels it reports.
        """
        sizes = {page.page_id: page.size for page in self.pages}
        seen: Dict[int, set] = {}
        for record in self.requests:
            seen.setdefault(record.server_id, set()).add(record.page_id)
        return {
            server: sum(sizes[page_id] for page_id in pages)
            for server, pages in seen.items()
        }

    def capacities(self, fraction: float) -> Dict[int, int]:
        """Per-server cache capacity at the given fraction (e.g. 0.05).

        Servers that never appear in the request stream get the mean
        capacity so every proxy still exists in the simulation.
        """
        return capacities_from_unique(
            self.unique_bytes_per_server(), self.config.server_count, fraction
        )

    # -- subscription churn ---------------------------------------------------

    def with_churn(
        self, spec: "ChurnSpec", rng: np.random.Generator
    ) -> "Workload":
        """A copy of this workload with the lifecycle stream attached.

        Churn is generated *after* the base trace (from the request
        pairs, using its own dedicated stream), so attaching it never
        perturbs the publish/request streams — the base trace stays
        bit-identical and artifact-cache entries keyed on the churn-free
        parameters remain valid.
        """
        from repro.workload.churn import generate_churn

        events = generate_churn(
            self.request_pairs(), self.config.horizon, spec, rng
        )
        return replace(self, lifecycle=events, churn=spec)

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the workload (config + streams) to JSON."""
        payload = {
            "label": self.label,
            "config": asdict(self.config),
            "pages": [asdict(page) for page in self.pages],
            "publishes": [asdict(event) for event in self.publishes],
            "requests": [asdict(record) for record in self.requests],
        }
        if self.lifecycle:
            payload["lifecycle"] = [asdict(event) for event in self.lifecycle]
        if self.churn is not None:
            payload["churn"] = asdict(self.churn)
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        """Rebuild a workload serialized with :meth:`to_json`."""
        from repro.workload.churn import ChurnSpec, LifecycleRecord

        payload = json.loads(text)
        config_fields = dict(payload["config"])
        config_fields["age_exponents"] = tuple(config_fields["age_exponents"])
        churn = None
        if payload.get("churn") is not None:
            churn = ChurnSpec(**payload["churn"])
        return cls(
            config=WorkloadConfig(**config_fields),
            pages=[PageSpec(**page) for page in payload["pages"]],
            publishes=[PublishRecord(**event) for event in payload["publishes"]],
            requests=[RequestRecord(**record) for record in payload["requests"]],
            label=payload.get("label", ""),
            lifecycle=[
                LifecycleRecord(**event) for event in payload.get("lifecycle", [])
            ],
            churn=churn,
        )


def capacities_from_unique(
    unique: Dict[int, int], server_count: int, fraction: float
) -> Dict[int, int]:
    """Per-server capacities from the unique-bytes map (§5.1).

    Shared by the materialized and streaming workload forms so both
    hand the simulator bit-identical capacities.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    mean_bytes = sum(unique.values()) / len(unique) if unique else 1024.0
    capacities = {}
    for server in range(server_count):
        base = unique.get(server, mean_bytes)
        capacities[server] = max(1, int(base * fraction))
    return capacities


def generate_workload(
    config: WorkloadConfig, streams: RandomStreams, label: str = ""
) -> Workload:
    """Run the full §4 generation pipeline."""
    sizes = generate_sizes(config, streams.stream("workload.sizes"))
    ranks, counts, classes = popularity_model(
        config.distinct_pages,
        config.zipf_alpha,
        config.total_requests,
        config.class_count,
        config.class_rate_decay,
        streams.stream("workload.popularity"),
    )
    first_times, intervals, version_times = generate_publishing_stream(
        config, streams.stream("workload.publishing"), popularity_counts=counts
    )

    pages = [
        PageSpec(
            page_id=page_id,
            size=int(sizes[page_id]),
            rank=int(ranks[page_id]),
            popularity_class=int(classes[page_id]),
            request_count=int(counts[page_id]),
            first_publish=float(first_times[page_id]),
            modification_interval=float(intervals[page_id]),
            version_count=len(version_times[page_id]),
        )
        for page_id in range(config.distinct_pages)
    ]

    publishes = [
        PublishRecord(time=when, page_id=page_id, version=version)
        for page_id, times in enumerate(version_times)
        for version, when in enumerate(times)
    ]
    publishes.sort(key=lambda event: (event.time, event.page_id))

    request_rng = streams.stream("workload.requests")
    server_rng = streams.stream("workload.servers")
    max_count = max(1, int(counts.max())) if len(counts) else 1
    requests: List[RequestRecord] = []
    for page_id in range(config.distinct_pages):
        count = int(counts[page_id])
        if count == 0:
            continue
        gamma = config.age_exponents[int(classes[page_id])]
        if config.age_from_latest_version:
            times = request_times_for_versions(
                count,
                version_times[page_id],
                config.horizon,
                gamma,
                request_rng,
                story_decay=config.story_decay,
                story_decay_mode=config.story_decay_mode,
                story_decay_exponent=config.story_decay_exponent,
                story_halflife_hours=config.story_halflife_hours,
            )
        else:
            times = request_times_for_page(
                count, float(first_times[page_id]), config.horizon, gamma, request_rng
            )
        if len(times) == 0:
            continue
        servers = assign_servers(
            times,
            float(first_times[page_id]),
            popularity=count,
            max_popularity=max_count,
            server_count=config.server_count,
            overlap=config.pool_overlap,
            rng=server_rng,
            exponent=config.pool_exponent,
        )
        requests.extend(
            RequestRecord(time=float(when), server_id=int(server), page_id=page_id)
            for when, server in zip(times, servers)
        )
    requests.sort(key=lambda record: (record.time, record.server_id, record.page_id))

    return Workload(
        config=config,
        pages=pages,
        publishes=publishes,
        requests=requests,
        label=label,
    )
