"""Subscription generation from request counts (§4.3, eq. 7).

The simulator only needs the *number* of subscriptions matching page i
at server j.  The paper assumes requests are driven by notifications,
defines the subscription quality ``SQ_{i,j}`` as requests/subscriptions
and inverts it:

    S_{i,j} = P_{i,j} / SQ_{i,j}                            (eq. 7)

where ``SQ_{i,j}`` is drawn around the target quality SQ — uniform in
``[2·SQ − 1, 1]`` when SQ > 0.5 and in ``(0, 2·SQ]`` when SQ ≤ 0.5 — so
SQ = 1 is the ideal case where subscriptions predict requests exactly.

An extension hook for the paper's future-work scenario (§7) is
included: ``notified_fraction < 1`` makes only a sampled subset of
requests visible to the subscription system, modelling users who reach
pages outside the notification service.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Tuple, Union

import numpy as np

#: Lower bound for the sampled per-(page, server) quality when SQ <= 0.5,
#: preventing the division in eq. 7 from exploding.
MIN_QUALITY = 0.05


def sample_quality(
    sq: float, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-(page, server) subscription qualities around target ``sq``."""
    if not 0.0 < sq <= 1.0:
        raise ValueError(f"SQ must be in (0, 1], got {sq}")
    if sq > 0.5:
        low, high = 2.0 * sq - 1.0, 1.0
    else:
        low, high = MIN_QUALITY, 2.0 * sq
    low = max(low, MIN_QUALITY)
    if high <= low:
        return np.full(count, low)
    return rng.uniform(low, high, size=count)


def build_match_counts(
    request_pairs: Union[
        Iterable[Tuple[int, int]], Mapping[Tuple[int, int], int]
    ],
    sq: float,
    rng: np.random.Generator,
    notified_fraction: float = 1.0,
) -> Dict[int, Dict[int, int]]:
    """Eq. 7: match-count table from (page_id, server_id) request pairs.

    Args:
        request_pairs: one (page_id, server_id) per request in the
            trace, or — equivalently — a mapping from each distinct
            pair to its request count (the aggregated form a
            :class:`~repro.workload.streaming.StreamingWorkload` hands
            out, since only the counts matter here).  Both forms yield
            bit-identical tables.
        sq: target subscription quality in (0, 1].
        rng: random stream for the per-pair quality draws.
        notified_fraction: fraction of requests assumed to be driven by
            notifications (1.0 reproduces the paper; lower values model
            the §7 future-work scenario where some requests arrive from
            outside the notification service and therefore leave no
            subscription footprint).

    Returns:
        ``table[page_id][server_id] = S_{i,j}`` with zero entries omitted.
    """
    if not 0.0 <= notified_fraction <= 1.0:
        raise ValueError(
            f"notified_fraction must be in [0, 1], got {notified_fraction}"
        )
    requests: Dict[Tuple[int, int], int] = defaultdict(int)
    if isinstance(request_pairs, Mapping):
        for (page_id, server_id), count in request_pairs.items():
            requests[(int(page_id), int(server_id))] += int(count)
    else:
        for page_id, server_id in request_pairs:
            requests[(int(page_id), int(server_id))] += 1

    keys = sorted(requests)
    if notified_fraction < 1.0:
        visible: Dict[Tuple[int, int], int] = {}
        for key in keys:
            seen = int(rng.binomial(requests[key], notified_fraction))
            if seen:
                visible[key] = seen
        requests = visible
        keys = sorted(requests)

    qualities = sample_quality(sq, len(keys), rng)
    table: Dict[int, Dict[int, int]] = defaultdict(dict)
    for (page_id, server_id), quality in zip(keys, qualities):
        count = int(round(requests[(page_id, server_id)] / quality))
        table[page_id][server_id] = max(1, count)
    return dict(table)


def table_statistics(table: Dict[int, Dict[int, int]]) -> Dict[str, float]:
    """Summary statistics of a match-count table (used in reports)."""
    counts = [
        count for per_server in table.values() for count in per_server.values()
    ]
    if not counts:
        return {"pairs": 0, "total": 0, "mean": 0.0, "max": 0}
    array = np.asarray(counts)
    return {
        "pairs": int(array.size),
        "total": int(array.sum()),
        "mean": float(array.mean()),
        "max": int(array.max()),
    }
