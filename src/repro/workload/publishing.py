"""Publishing stream generation (§4.1).

Of the 6 000 distinct pages, 2 400 receive modified versions.  Each
updated page has a *fixed* modification interval drawn from a step-wise
distribution matching the MSNBC observations: 5 % of intervals are
under one hour, 5 % exceed one day, and the remaining 90 % lie between
one hour and one day.  First publication times are uniform over the
horizon; version k of a page appears at ``first + k·interval`` while
that stays inside the horizon.  With the paper's parameters this
yields ~30 000 publish events over 7 days (the paper reports 30 147).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workload.config import WorkloadConfig, DAY, HOUR


def _page_fractions(config: WorkloadConfig) -> np.ndarray:
    """Per-page step probabilities from the event-weighted targets.

    The MSNBC statistic "5 % of modification intervals are < 1 hour,
    5 % are > 1 day" counts *modification events*: a page with a short
    fixed interval contributes many intervals to that statistic.  A
    page with interval I produces events at rate 1/I, so to make the
    event-weighted mix hit (5 %, 90 %, 5 %) the per-page step
    probabilities must be the targets divided by each step's harmonic
    mean rate, renormalized.  This derivation also lands the total
    publish count at ~30 000 over 7 days, matching the paper's 30 147.
    """
    steps = [
        (config.short_interval_fraction, config.min_interval, HOUR),
        (
            1.0 - config.short_interval_fraction - config.long_interval_fraction,
            HOUR,
            DAY,
        ),
        (config.long_interval_fraction, DAY, config.max_interval),
    ]
    weights = []
    for event_share, low, high in steps:
        # E[1/X] for X ~ U(low, high): ln(high/low) / (high - low).
        mean_rate = np.log(high / low) / (high - low)
        weights.append(event_share / mean_rate)
    fractions = np.asarray(weights)
    return fractions / fractions.sum()


def modification_intervals(
    count: int, config: WorkloadConfig, rng: np.random.Generator
) -> np.ndarray:
    """Fixed per-page modification intervals (seconds), step-wise mix."""
    if count == 0:
        return np.zeros(0)
    fractions = _page_fractions(config)
    step = rng.choice(3, size=count, p=fractions)
    intervals = np.empty(count)
    short = step == 0
    middle = step == 1
    long = step == 2
    intervals[short] = rng.uniform(config.min_interval, HOUR, size=int(short.sum()))
    intervals[middle] = rng.uniform(HOUR, DAY, size=int(middle.sum()))
    intervals[long] = rng.uniform(DAY, config.max_interval, size=int(long.sum()))
    return intervals


def first_publish_times(
    config: WorkloadConfig, rng: np.random.Generator
) -> np.ndarray:
    """Uniform first-publication time for every distinct page."""
    return rng.uniform(0.0, config.horizon, size=config.distinct_pages)


def choose_modified_pages(
    config: WorkloadConfig,
    rng: np.random.Generator,
    popularity_counts: np.ndarray = None,
) -> np.ndarray:
    """Pick which distinct pages receive modifications.

    With ``modified_popularity_bias > 0`` and popularity counts
    available, page i is sampled without replacement with weight
    ``(count_i + 1)^bias`` — popular news pages are the frequently
    updated ones (Padmanabhan & Qiu; also the regime in which the paper
    argues content distribution matters most).  Weighted sampling
    without replacement uses the Efraimidis–Spirakis exponential-key
    trick.
    """
    page_count = config.distinct_pages
    take = config.modified_pages
    if take == 0:
        return np.zeros(0, dtype=np.int64)
    bias = config.modified_popularity_bias
    if popularity_counts is None or bias == 0.0:
        return rng.choice(page_count, size=take, replace=False)
    weights = (np.asarray(popularity_counts, dtype=np.float64) + 1.0) ** bias
    keys = rng.exponential(size=page_count) / weights
    return np.argsort(keys)[:take]


def generate_publishing_stream(
    config: WorkloadConfig,
    rng: np.random.Generator,
    popularity_counts: np.ndarray = None,
) -> Tuple[np.ndarray, np.ndarray, List[List[float]]]:
    """Build the full publishing schedule.

    Returns:
        (first_times, intervals, version_times) where ``intervals[i]``
        is 0.0 for never-modified pages and ``version_times[i]`` lists
        every publication time of page i (the first entry is the
        original publication).
    """
    first_times = first_publish_times(config, rng)
    modified_ids = choose_modified_pages(config, rng, popularity_counts)
    drawn = modification_intervals(config.modified_pages, config, rng)
    if (
        config.couple_intervals_to_popularity
        and popularity_counts is not None
        and len(modified_ids)
    ):
        # Shortest intervals go to the most popular modified pages.
        by_popularity = modified_ids[
            np.argsort(-np.asarray(popularity_counts)[modified_ids], kind="stable")
        ]
        modified_ids = by_popularity
        drawn = np.sort(drawn)
    intervals = np.zeros(config.distinct_pages)
    intervals[modified_ids] = drawn

    version_times: List[List[float]] = []
    for page_id in range(config.distinct_pages):
        times = [float(first_times[page_id])]
        interval = float(intervals[page_id])
        if interval > 0.0:
            when = times[0] + interval
            while when <= config.horizon:
                times.append(when)
                when += interval
        version_times.append(times)
    return first_times, intervals, version_times
