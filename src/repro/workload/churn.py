"""Subscription churn: seeded lease/renewal/unsubscribe event streams.

The paper treats the subscription base as static for a run (§4.3 builds
one match-count table and keeps it).  Its target domain — proxies
subscribing on behalf of shifting user populations — implies constant
churn, and real hub protocols (the PubSubHubbub model this module
follows) survive it with *leases*: a subscription is granted for a
bounded duration, must be renewed before expiry, and silently lapses
otherwise.

This module generates that lifecycle as a third static event stream
riding alongside the publish and request streams:

* every (page, proxy) subscription cell of the trace receives an
  initial ``subscribe`` at t = 0 carrying a lease duration drawn from
  an exponential around :attr:`ChurnSpec.lease_duration`;
* before each expiry the subscriber *renews* with probability
  :attr:`ChurnSpec.renew_probability`; otherwise the lease **silently
  lapses** — no event marks the expiry, which is exactly the failure
  mode the simulator's re-poll repair exists for — and a fresh
  ``subscribe`` arrives after an exponential comeback gap;
* explicit ``unsubscribe`` events occur at rate
  :attr:`ChurnSpec.churn_rate` (cycles per subscriber per day), also
  followed by a later re-subscribe.

All draws come from one dedicated RNG stream (``"workload.churn"`` by
convention), so a workload generated without churn is bit-identical to
the pre-churn generator output: no other stream's draw order moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.workload.config import DAY, HOUR

#: Safety valve: at pathological parameter combinations (micro-leases
#: over a week-long horizon) one subscriber could otherwise emit
#: unbounded event chains.
MAX_EVENTS_PER_SUBSCRIBER = 2000

#: The lifecycle event kinds, in their deterministic same-time order.
LIFECYCLE_KINDS: Tuple[str, ...] = ("subscribe", "renew", "unsubscribe")

_KIND_ORDER = {kind: index for index, kind in enumerate(LIFECYCLE_KINDS)}


@dataclass(frozen=True)
class ChurnSpec:
    """Parameters of the subscription-lifecycle workload dimension.

    A spec being *present* on a workload is what turns the lifecycle
    layer on; every knob has a conservative default so that
    ``ChurnSpec()`` describes slow, mostly-renewing subscribers.
    """

    #: Mean explicit unsubscribe/resubscribe cycles per subscriber per
    #: day (0 disables explicit unsubscribes; leases still lapse
    #: whenever a renewal does not happen).
    churn_rate: float = 0.0
    #: Mean lease duration in seconds (exponentially distributed).
    lease_duration: float = 6 * HOUR
    #: Floor on a drawn lease duration (seconds).
    lease_min: float = 10 * 60.0
    #: Probability an expiring lease is renewed in time.
    renew_probability: float = 0.8
    #: Mean gap before a lapsed or unsubscribed subscriber comes back
    #: (seconds, exponentially distributed).
    resubscribe_delay: float = 1 * HOUR
    #: Probability one subscribe/renew confirmation message is lost in
    #: the handshake (drawn at simulation time from the dedicated
    #: ``"faults.lifecycle"`` stream; 0 keeps the handshake reliable
    #: and draw-free).
    confirmation_loss_probability: float = 0.0
    #: Maximum confirmation retries after a lost handshake message.
    confirm_retry_limit: int = 3
    #: Timeout before the first confirmation retry (seconds); doubles
    #: per attempt up to ``confirm_backoff_cap``.
    confirm_timeout: float = 2.0
    #: Cap on a single confirmation backoff step (seconds).
    confirm_backoff_cap: float = 60.0
    #: Bound on concurrently pending handshakes per subscriber work
    #: queue; an overflowing handshake is abandoned (stays pending
    #: until access-time re-poll).
    queue_limit: int = 64

    def __post_init__(self) -> None:
        # The checks live in repro.workload.validate so the trace
        # auditing module owns every workload-parameter rejection.
        from repro.workload.validate import validate_churn_spec

        validate_churn_spec(self)


@dataclass(frozen=True)
class LifecycleRecord:
    """One subscription lifecycle event in the trace.

    ``kind`` is one of :data:`LIFECYCLE_KINDS`; ``lease`` carries the
    granted/extended lease duration for ``subscribe``/``renew`` events
    and is 0 for ``unsubscribe``.
    """

    time: float
    server_id: int
    page_id: int
    kind: str
    lease: float = 0.0


def _sort_key(record: LifecycleRecord) -> Tuple[float, int, int, int]:
    return (
        record.time,
        record.server_id,
        record.page_id,
        _KIND_ORDER.get(record.kind, len(LIFECYCLE_KINDS)),
    )


def generate_churn(
    pairs: Iterable[Tuple[int, int]],
    horizon: float,
    spec: ChurnSpec,
    rng: np.random.Generator,
) -> List[LifecycleRecord]:
    """Generate the lifecycle event stream for a set of subscribers.

    Args:
        pairs: the ``(page_id, server_id)`` subscription cells (one
            lease timeline each); deduplicated and sorted internally so
            generation is independent of input order.
        horizon: simulation horizon in seconds.
        spec: churn parameters.
        rng: the dedicated ``"workload.churn"`` stream.

    Returns:
        Lifecycle events sorted by ``(time, server_id, page_id, kind)``
        — the exact order both replay engines process them in.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    events: List[LifecycleRecord] = []
    unsubscribe_mean = (
        DAY / spec.churn_rate if spec.churn_rate > 0.0 else float("inf")
    )

    def draw_lease() -> float:
        return max(spec.lease_min, float(rng.exponential(spec.lease_duration)))

    for page_id, server_id in sorted(set((int(p), int(s)) for p, s in pairs)):
        emitted = 0
        now = 0.0
        lease = draw_lease()
        events.append(
            LifecycleRecord(
                time=now,
                server_id=server_id,
                page_id=page_id,
                kind="subscribe",
                lease=lease,
            )
        )
        emitted += 1
        expiry = now + lease
        while emitted < MAX_EVENTS_PER_SUBSCRIBER:
            if unsubscribe_mean != float("inf"):
                next_unsub = now + float(rng.exponential(unsubscribe_mean))
            else:
                next_unsub = float("inf")
            if next_unsub < expiry and next_unsub < horizon:
                # Explicit churn: the subscriber walks away mid-lease...
                events.append(
                    LifecycleRecord(
                        time=next_unsub,
                        server_id=server_id,
                        page_id=page_id,
                        kind="unsubscribe",
                    )
                )
                emitted += 1
                comeback = next_unsub + float(
                    rng.exponential(spec.resubscribe_delay)
                )
                if comeback >= horizon:
                    break
                # ... and comes back with a fresh lease later.
                lease = draw_lease()
                events.append(
                    LifecycleRecord(
                        time=comeback,
                        server_id=server_id,
                        page_id=page_id,
                        kind="subscribe",
                        lease=lease,
                    )
                )
                emitted += 1
                now = comeback
                expiry = now + lease
                continue
            if expiry >= horizon:
                break
            if float(rng.random()) < spec.renew_probability:
                # Renew shortly before the wire; the renewal's lease
                # clock starts at the renewal, so expiry always grows
                # (lease_min bounds the lead from below).
                renew_at = max(now, expiry - 0.1 * min(lease, spec.lease_min))
                lease = draw_lease()
                events.append(
                    LifecycleRecord(
                        time=renew_at,
                        server_id=server_id,
                        page_id=page_id,
                        kind="renew",
                        lease=lease,
                    )
                )
                emitted += 1
                now = renew_at
                expiry = renew_at + lease
            else:
                # Silent lapse: no event at expiry — the subscriber
                # simply stops being covered and re-subscribes later.
                comeback = expiry + float(rng.exponential(spec.resubscribe_delay))
                if comeback >= horizon:
                    break
                lease = draw_lease()
                events.append(
                    LifecycleRecord(
                        time=comeback,
                        server_id=server_id,
                        page_id=page_id,
                        kind="subscribe",
                        lease=lease,
                    )
                )
                emitted += 1
                now = comeback
                expiry = comeback + lease
    events.sort(key=_sort_key)
    return events


def churn_statistics(events: Sequence[LifecycleRecord]) -> dict:
    """Summary counts of a lifecycle stream (reports and tests)."""
    counts = {kind: 0 for kind in LIFECYCLE_KINDS}
    subscribers = set()
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
        subscribers.add((event.server_id, event.page_id))
    return {
        "events": len(events),
        "subscribers": len(subscribers),
        **counts,
    }
