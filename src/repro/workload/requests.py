"""Request-time generation (§4.2).

Request times are correlated with page age: a page in popularity class
k is requested at age ``x`` (measured from its first publication) with
probability density proportional to ``(1 + x/1h)^(−γ_k)``, where γ_k is
larger for more popular classes — fresh pages dominate, but popular
pages keep a longer tail (the MSNBC observation).  Sampling uses the
analytic inverse CDF of the truncated power law, vectorized per page.
"""

from __future__ import annotations

import numpy as np

from repro.workload.config import HOUR


def sample_ages(
    count: int,
    max_age: float,
    gamma: float,
    rng: np.random.Generator,
    time_unit: float = HOUR,
) -> np.ndarray:
    """Draw ``count`` ages in [0, max_age] with density ∝ (1+x/u)^(−γ).

    Uses inverse-CDF sampling of the truncated distribution; the γ = 1
    logarithmic case is handled separately.  γ = 0 degenerates to
    uniform ages (no recency bias).
    """
    if max_age < 0:
        raise ValueError(f"max_age must be >= 0, got {max_age}")
    if count == 0:
        return np.zeros(0)
    if max_age == 0.0:
        return np.zeros(count)
    scaled_max = max_age / time_unit
    uniforms = rng.uniform(size=count)
    if abs(gamma) < 1e-12:
        ages = uniforms * scaled_max
    elif abs(gamma - 1.0) < 1e-12:
        # CDF(x) = ln(1+x)/ln(1+A)  =>  x = (1+A)^u − 1
        ages = np.expm1(uniforms * np.log1p(scaled_max))
    else:
        # CDF(x) = (1 − (1+x)^(1−γ)) / (1 − (1+A)^(1−γ))
        exponent = 1.0 - gamma
        top = (1.0 + scaled_max) ** exponent
        inner = 1.0 - uniforms * (1.0 - top)
        ages = inner ** (1.0 / exponent) - 1.0
    return np.clip(ages * time_unit, 0.0, max_age)


def request_times_for_page(
    count: int,
    first_publish: float,
    horizon: float,
    gamma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sorted request times for one page.

    Requests can only happen after the page first exists; their ages
    follow the class's power-law decay up to the end of the horizon.
    """
    window = horizon - first_publish
    if window <= 0 or count == 0:
        return np.zeros(0)
    ages = sample_ages(count, window, gamma, rng)
    times = first_publish + ages
    times.sort()
    return times


def request_times_for_versions(
    count: int,
    version_times: np.ndarray,
    horizon: float,
    gamma: float,
    rng: np.random.Generator,
    story_decay: bool = True,
    story_decay_mode: str = "exponential",
    story_decay_exponent: float = 1.0,
    story_halflife_hours: float = 24.0,
) -> np.ndarray:
    """Sorted request times measured from *version* publications.

    An updating news story keeps drawing traffic — each request picks a
    version and its age decays from that version's publication time
    (truncated at the horizon).  With ``story_decay`` the version is
    sampled with weight ``(1 + (t_v − t_0)/1h)^(−γ)``: interest in the
    *story* still fades with the page's overall age even while updates
    keep arriving, so early versions draw most of the traffic.  For
    never-modified pages this reduces to
    :func:`request_times_for_page`.
    """
    version_times = np.asarray(version_times, dtype=np.float64)
    live = version_times[version_times < horizon]
    if count == 0 or len(live) == 0:
        return np.zeros(0)
    if story_decay and len(live) > 1:
        story_age = (live - live[0]) / HOUR
        if story_decay_mode == "exponential":
            # Interest in a news story eventually dies: halve per
            # half-life even while updates keep arriving.
            weights = np.exp2(-story_age / story_halflife_hours)
        else:
            weights = (1.0 + story_age) ** (-max(story_decay_exponent, 0.0))
        weights /= weights.sum()
        picks = rng.choice(len(live), size=count, p=weights)
    else:
        picks = rng.integers(len(live), size=count)
    per_version = np.bincount(picks, minlength=len(live))
    chunks = []
    for index, version_count in enumerate(per_version):
        if version_count == 0:
            continue
        window = horizon - live[index]
        ages = sample_ages(int(version_count), window, gamma, rng)
        chunks.append(live[index] + ages)
    times = np.concatenate(chunks)
    times.sort()
    return times
