"""Popularity model (§4.2): Zipf ranks, request counts, classes.

Popularity follows Zipf's law, ``rate(rank) ∝ 1/rank^α``, with ranks
assigned to pages uniformly at random — the paper assumes popularity is
independent of publishing time and page size.  Pages are then grouped
into four classes whose *aggregate* request rates decay roughly one
order of magnitude from one class to the next; the class index selects
how strongly a page's access probability decays with its age.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def zipf_weights(page_count: int, alpha: float) -> np.ndarray:
    """Normalized Zipf weights for ranks 1..page_count."""
    if page_count < 1:
        raise ValueError(f"page_count must be >= 1, got {page_count}")
    ranks = np.arange(1, page_count + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def assign_ranks(page_count: int, rng: np.random.Generator) -> np.ndarray:
    """ranks[i] = Zipf rank (1-based) of page i, a random permutation."""
    return rng.permutation(page_count) + 1


def request_counts(
    total_requests: int, weights_by_rank: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Integer request counts per rank summing to ``total_requests``.

    Drawn multinomially so small scales stay realistic (deterministic
    rounding would starve the tail entirely).
    """
    if total_requests < 0:
        raise ValueError("total_requests must be >= 0")
    return rng.multinomial(total_requests, weights_by_rank)


def class_boundaries(
    weights_by_rank: np.ndarray, class_count: int, rate_decay: float
) -> np.ndarray:
    """First rank index (0-based) of each class, length ``class_count``.

    Class k is sized so its aggregate weight is ~``rate_decay`` times
    smaller than class k-1's: with r = 1/rate_decay the targets are
    ``W·r^k·(1−r)/(1−r^class_count)``.  Boundaries are the points where
    the cumulative weight crosses the running target.  Every class is
    kept non-empty.
    """
    if class_count < 1:
        raise ValueError("class_count must be >= 1")
    if rate_decay <= 1.0:
        raise ValueError(f"rate_decay must exceed 1, got {rate_decay}")
    page_count = len(weights_by_rank)
    if class_count > page_count:
        raise ValueError(
            f"more classes ({class_count}) than pages ({page_count})"
        )
    ratio = 1.0 / rate_decay
    shares = ratio ** np.arange(class_count)
    shares /= shares.sum()
    cumulative_targets = np.cumsum(shares)[:-1] * weights_by_rank.sum()
    cumulative = np.cumsum(weights_by_rank)
    cuts = np.searchsorted(cumulative, cumulative_targets, side="left") + 1
    boundaries = [0]
    for cut in cuts:
        boundaries.append(max(boundaries[-1] + 1, min(int(cut), page_count - (class_count - len(boundaries)))))
    return np.asarray(boundaries, dtype=np.int64)


def class_of_ranks(
    page_count: int, boundaries: np.ndarray
) -> np.ndarray:
    """class_index_by_rank[r-1] = popularity class of rank r."""
    classes = np.zeros(page_count, dtype=np.int64)
    for class_index, start in enumerate(boundaries):
        classes[start:] = class_index
    return classes


def popularity_model(
    page_count: int,
    alpha: float,
    total_requests: int,
    class_count: int,
    rate_decay: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full popularity assignment.

    Returns:
        (ranks, counts, classes): per-page Zipf rank (1-based), per-page
        request count, and per-page class index (0 = most popular).
    """
    ranks = assign_ranks(page_count, rng)
    weights = zipf_weights(page_count, alpha)
    counts_by_rank = request_counts(total_requests, weights, rng)
    boundaries = class_boundaries(weights, class_count, rate_decay)
    classes_by_rank = class_of_ranks(page_count, boundaries)
    counts = counts_by_rank[ranks - 1]
    classes = classes_by_rank[ranks - 1]
    return ranks, counts, classes
