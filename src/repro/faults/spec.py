"""Chaos configuration: how unreliable the substrate is.

:class:`ChaosSpec` bundles the knobs of the fault-injection layer.  It
is intentionally a plain frozen dataclass (like
:class:`~repro.system.config.SimulationConfig`) so experiment grids can
sweep it, and every field has a conservative default: a default-built
spec describes an always-healthy network and produces an empty
:class:`~repro.faults.schedule.FaultSchedule`.

Failure processes are memoryless: times between failures and repair
durations are exponentially distributed around the configured means
(MTBF / MTTR), the standard availability model for independent
component failures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChaosSpec:
    """Parameters of the fault-injection layer for one run."""

    #: Mean seconds between crashes of one proxy (0 disables crashes).
    proxy_mtbf: float = 0.0
    #: Mean downtime of a crashed proxy (seconds).  A recovered proxy
    #: restarts *cold*: its cache contents are lost.
    proxy_mttr: float = 3600.0
    #: Fraction of proxies subject to crashing (sampled per run).
    crash_fraction: float = 1.0
    #: Mean seconds between publisher (origin) outages (0 disables).
    publisher_mtbf: float = 0.0
    #: Mean duration of a publisher outage (seconds).
    publisher_mttr: float = 900.0
    #: Mean seconds between degraded-link episodes per proxy (0 disables).
    degraded_mtbf: float = 0.0
    #: Mean duration of a degraded-link episode (seconds).
    degraded_mttr: float = 1800.0
    #: Latency multiplier applied to origin fetches over a degraded link.
    degraded_latency_multiplier: float = 4.0
    #: Per-transfer loss probability on a degraded link; every loss
    #: costs one extra round trip (capped retransmissions).
    degraded_loss_probability: float = 0.0

    # -- push-path delivery faults -----------------------------------------

    #: Per-notification loss probability on the broker->proxy push path
    #: (0 disables; the push path is then perfectly reliable, as the
    #: paper assumes).  A lost notification is retransmitted after an
    #: ack timeout — see the ``delivery_*`` protocol knobs below.
    delivery_loss_probability: float = 0.0
    #: Probability a successfully delivered notification arrives twice
    #: (e.g. an ack lost on the way back); the proxy's duplicate
    #: suppression absorbs the second copy.
    delivery_duplicate_probability: float = 0.0
    #: Upper bound (seconds) of a uniform extra delay added to each
    #: delivered notification; nonzero delays let notifications arrive
    #: out of order, exercising proxy-side gap detection.
    delivery_reorder_delay: float = 0.0
    #: Mean seconds between crashes of one broker node on the push
    #: path (0 disables).  While a broker is down every notification
    #: routed through it is lost and must be retransmitted.
    broker_mtbf: float = 0.0
    #: Mean downtime of a crashed broker node (seconds).
    broker_mttr: float = 600.0
    #: Number of broker nodes the push path is sharded over; proxy
    #: ``s`` is served by broker ``s % broker_count``.
    broker_count: int = 1

    # -- reliable-delivery protocol ----------------------------------------

    #: Maximum retransmissions of one lost notification (0 means fire
    #: and forget: the first loss is permanent until access-time repair).
    delivery_retry_limit: int = 4
    #: Ack timeout before the first retransmission (seconds); doubles
    #: per retransmission up to ``delivery_backoff_cap``.
    delivery_ack_timeout: float = 1.0
    #: Cap on a single retransmission backoff step (seconds).
    delivery_backoff_cap: float = 30.0
    #: Bound on concurrently pending retransmissions at the publisher;
    #: when the queue is full a lost notification is abandoned instead
    #: of queued (the overload-shedding path).
    delivery_queue_limit: int = 1024
    #: Access-time staleness repair: on a cache hit the proxy validates
    #: the cached sequence number and repairs a missed push with an
    #: origin fetch (repair traffic, not a miss).  ``False`` is the
    #: no-protocol baseline that silently serves stale pages.
    delivery_repair: bool = True

    # -- graceful degradation ------------------------------------------------

    #: Maximum origin-fetch retries while the publisher is down.
    retry_limit: int = 4
    #: First retry backoff (seconds); doubles per attempt.
    retry_base: float = 0.5
    #: Cap on a single backoff step (seconds).
    retry_cap: float = 8.0
    #: Modelled cost of a request to a crashed peer proxy timing out
    #: before the failover chain moves on (cooperative runs only).
    peer_timeout: float = 0.25

    # -- recovery (time-to-warm) instrumentation ---------------------------

    #: Rolling request window used to decide a restarted cache is warm.
    warm_request_window: int = 50
    #: Warm when the rolling hit ratio reaches this fraction of the
    #: proxy's pre-crash hit ratio.
    warm_threshold: float = 0.8
    #: Width of one post-recovery hit-ratio bin (seconds).
    recovery_bin_seconds: float = 600.0
    #: Number of post-recovery bins tracked per crash.
    recovery_bin_count: int = 12

    @property
    def injects_faults(self) -> bool:
        """Whether this spec describes any fault at all."""
        return (
            self.proxy_mtbf > 0.0
            or self.publisher_mtbf > 0.0
            or self.degraded_mtbf > 0.0
            or self.delivery_faulty
        )

    @property
    def delivery_faulty(self) -> bool:
        """Whether the push path itself can lose, duplicate or delay
        notifications (any delivery-fault knob off its default)."""
        return (
            self.delivery_loss_probability > 0.0
            or self.delivery_duplicate_probability > 0.0
            or self.delivery_reorder_delay > 0.0
            or self.broker_mtbf > 0.0
        )

    def __post_init__(self) -> None:
        for name in (
            "proxy_mtbf",
            "proxy_mttr",
            "publisher_mtbf",
            "publisher_mttr",
            "degraded_mtbf",
            "degraded_mttr",
            "retry_base",
            "retry_cap",
            "peer_timeout",
            "delivery_reorder_delay",
            "broker_mtbf",
            "broker_mttr",
            "delivery_ack_timeout",
            "delivery_backoff_cap",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(
                f"crash_fraction must be in [0, 1], got {self.crash_fraction}"
            )
        if self.degraded_latency_multiplier < 1.0:
            raise ValueError(
                "degraded_latency_multiplier must be >= 1, got "
                f"{self.degraded_latency_multiplier}"
            )
        if not 0.0 <= self.degraded_loss_probability < 1.0:
            raise ValueError(
                "degraded_loss_probability must be in [0, 1), got "
                f"{self.degraded_loss_probability}"
            )
        if self.retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {self.retry_limit}")
        for name in ("delivery_loss_probability", "delivery_duplicate_probability"):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1), got {getattr(self, name)}"
                )
        if self.broker_count < 1:
            raise ValueError(f"broker_count must be >= 1, got {self.broker_count}")
        if self.delivery_retry_limit < 0:
            raise ValueError(
                f"delivery_retry_limit must be >= 0, got {self.delivery_retry_limit}"
            )
        if self.delivery_queue_limit < 0:
            raise ValueError(
                f"delivery_queue_limit must be >= 0, got {self.delivery_queue_limit}"
            )
        if self.warm_request_window < 1:
            raise ValueError(
                f"warm_request_window must be >= 1, got {self.warm_request_window}"
            )
        if not 0.0 < self.warm_threshold <= 1.0:
            raise ValueError(
                f"warm_threshold must be in (0, 1], got {self.warm_threshold}"
            )
        if self.recovery_bin_seconds <= 0:
            raise ValueError(
                f"recovery_bin_seconds must be > 0, got {self.recovery_bin_seconds}"
            )
        if self.recovery_bin_count < 1:
            raise ValueError(
                f"recovery_bin_count must be >= 1, got {self.recovery_bin_count}"
            )


@dataclass(frozen=True)
class OverloadSpec:
    """Parameters of the overload/backpressure layer for one run.

    Like :class:`ChaosSpec` this is a plain frozen dataclass so grids
    can sweep it, and every default describes *infinite* capacity: a
    default-built spec engages nothing and a run carrying it is
    bit-identical to one without the layer.

    The layer has three independent parts, each armed by its own knob:

    * finite per-proxy service queues (``service_rate > 0``),
    * origin admission control with a circuit breaker
      (``origin_capacity > 0``),
    * a global retry budget with seeded jitter (``retry_budget > 0``
      and/or ``retry_jitter > 0``).
    """

    #: Jobs (pushes + pull requests) one proxy can service per second;
    #: 0 models the paper's infinitely fast proxies (queues disabled).
    service_rate: float = 0.0
    #: Maximum jobs in one proxy's service queue (in service + waiting).
    #: Arrivals beyond it are rejected.
    queue_capacity: int = 64
    #: Occupancy fraction of ``queue_capacity`` above which *pushes*
    #: are shed while pulls are still admitted — subscribed-push
    #: deliveries yield queue room to subscriber pull requests first
    #: (the paper's subscriber-first service model).
    push_shed_fraction: float = 0.75

    # -- origin admission control -------------------------------------------

    #: Origin fetches admitted per second through the token-bucket gate;
    #: 0 models an infinite-capacity origin (admission disabled).
    origin_capacity: float = 0.0
    #: Token-bucket burst size (tokens the idle origin accumulates).
    origin_burst: int = 32
    #: Consecutive origin rejections that trip the circuit breaker open.
    breaker_threshold: int = 8
    #: Seconds the open breaker waits before half-opening for probes.
    breaker_cooldown: float = 30.0
    #: Probe successes in half-open state required to close the breaker.
    breaker_probe_successes: int = 3
    #: Fraction of ``breaker_cooldown`` added as seeded jitter to each
    #: open interval (draws from the ``faults.overload`` stream), so
    #: breakers across runs/sweeps don't half-open in lockstep.
    breaker_jitter: float = 0.0

    # -- retry-storm protection ---------------------------------------------

    #: Global budget of *extra* (beyond-first) attempts shared by every
    #: retry user — origin backoff, delivery retransmits, handshake
    #: confirms; 0 leaves retries unbudgeted (the pre-layer behaviour).
    retry_budget: int = 0
    #: Budget tokens restored per second (0 = a fixed, non-refilling
    #: budget for the whole run).
    retry_budget_rate: float = 0.0
    #: Max fraction of each backoff step added as seeded jitter (drawn
    #: from the ``faults.overload`` stream) to de-synchronise retries.
    retry_jitter: float = 0.0

    @property
    def enabled(self) -> bool:
        """Whether this spec engages any part of the layer."""
        return (
            self.service_rate > 0.0
            or self.origin_capacity > 0.0
            or self.retry_budget > 0
            or self.retry_jitter > 0.0
        )

    @property
    def uses_rng(self) -> bool:
        """Whether the layer draws from the ``faults.overload`` stream."""
        return self.retry_jitter > 0.0 or (
            self.origin_capacity > 0.0 and self.breaker_jitter > 0.0
        )

    def __post_init__(self) -> None:
        for name in (
            "service_rate",
            "origin_capacity",
            "breaker_cooldown",
            "retry_budget_rate",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        for name in ("queue_capacity", "origin_burst"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("breaker_threshold", "breaker_probe_successes"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")
        if not 0.0 < self.push_shed_fraction <= 1.0:
            raise ValueError(
                f"push_shed_fraction must be in (0, 1], got {self.push_shed_fraction}"
            )
        for name in ("breaker_jitter", "retry_jitter"):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1), got {getattr(self, name)}"
                )
