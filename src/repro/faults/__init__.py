"""Fault injection and graceful degradation.

The faults layer makes the reproduction's substrate unreliable on
purpose: proxies crash and restart cold, the publisher goes dark, and
links degrade — all on a deterministic schedule derived from dedicated
RNG streams, so chaos runs are exactly as reproducible as healthy ones.

Pipeline::

    ChaosSpec --(generate_fault_schedule)--> FaultSchedule
        --(FaultInjector, DES processes)--> crash/recover/outage hooks
        --(RecoveryTracker)--> availability + time-to-warm metrics
"""

from repro.faults.generator import generate_fault_schedule
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryReport, RecoveryTracker
from repro.faults.schedule import (
    EMPTY_SCHEDULE,
    DegradedWindow,
    FaultSchedule,
    Window,
)
from repro.faults.spec import ChaosSpec

__all__ = [
    "ChaosSpec",
    "DegradedWindow",
    "EMPTY_SCHEDULE",
    "FaultInjector",
    "FaultSchedule",
    "RecoveryReport",
    "RecoveryTracker",
    "Window",
    "generate_fault_schedule",
]
