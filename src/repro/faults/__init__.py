"""Fault injection and graceful degradation.

The faults layer makes the reproduction's substrate unreliable on
purpose: proxies crash and restart cold, the publisher goes dark, and
links degrade — all on a deterministic schedule derived from dedicated
RNG streams, so chaos runs are exactly as reproducible as healthy ones.

Pipeline::

    ChaosSpec --(generate_fault_schedule)--> FaultSchedule
        --(FaultInjector, DES processes)--> crash/recover/outage hooks
        --(RecoveryTracker)--> availability + time-to-warm metrics

Beyond the schedule-driven faults, two protocol layers draw per-message
faults from their own dedicated streams: reliable delivery uses
``"faults.delivery"`` and the subscription-lifecycle confirmation
handshake uses :data:`LIFECYCLE_STREAM` (``"faults.lifecycle"``).
Either stream is derived only when its layer is actually configured, so
adding one never perturbs the others — the bit-identity discipline.
"""

from repro.faults.generator import generate_fault_schedule
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryReport, RecoveryTracker
from repro.faults.schedule import (
    EMPTY_SCHEDULE,
    DegradedWindow,
    FaultSchedule,
    Window,
)
from repro.faults.spec import ChaosSpec, OverloadSpec

#: Name of the RNG stream feeding subscription-handshake loss draws.
LIFECYCLE_STREAM = "faults.lifecycle"

#: Name of the RNG stream feeding overload-layer draws (breaker probe
#: jitter, retry-backoff jitter).  Derived only when an
#: :class:`OverloadSpec` actually needs randomness, so arming the
#: overload layer never perturbs the ``faults.*``, ``workload.churn``
#: or delivery streams — the same bit-identity discipline as
#: :data:`LIFECYCLE_STREAM`.
OVERLOAD_STREAM = "faults.overload"

__all__ = [
    "ChaosSpec",
    "DegradedWindow",
    "EMPTY_SCHEDULE",
    "FaultInjector",
    "FaultSchedule",
    "LIFECYCLE_STREAM",
    "OVERLOAD_STREAM",
    "OverloadSpec",
    "RecoveryReport",
    "RecoveryTracker",
    "Window",
    "generate_fault_schedule",
]
