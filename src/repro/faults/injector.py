"""Injecting a fault schedule into a running simulation.

:class:`FaultInjector` turns the materialised windows of a
:class:`~repro.faults.schedule.FaultSchedule` into generator processes
on the existing :class:`~repro.sim.engine.Environment` agenda — the
same mechanism the live broker examples use — so crash, recover and
outage transitions interleave with publish/request replay in virtual
time order.

The injector is deliberately ignorant of caching: it only calls the
narrow crash/recover/outage hooks its target exposes (the simulator),
which keeps the fault layer reusable for other drivers.
"""

from __future__ import annotations

from typing import List, Protocol

from repro.faults.schedule import FaultSchedule, Window
from repro.sim.engine import Environment
from repro.sim.process import Process


class FaultTarget(Protocol):
    """What the injector needs from the system under test."""

    def on_proxy_crash(self, server_id: int, now: float) -> None: ...

    def on_proxy_recover(self, server_id: int, now: float) -> None: ...

    def on_publisher_outage(self, now: float) -> None: ...

    def on_publisher_recover(self, now: float) -> None: ...


class FaultInjector:
    """Drives a :class:`FaultTarget` through one fault schedule."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule

    def install(self, env: Environment, target: FaultTarget) -> List[Process]:
        """Launch one process per faulty component; returns them all."""
        processes: List[Process] = []
        by_server = {}
        for server_id, window in self.schedule.crash_windows():
            by_server.setdefault(server_id, []).append(window)
        for server_id, windows in by_server.items():
            processes.append(
                env.process(self._proxy_script(env, target, server_id, windows))
            )
        outages = self.schedule.outage_windows()
        if outages:
            processes.append(env.process(self._publisher_script(env, target, outages)))
        return processes

    @staticmethod
    def _proxy_script(
        env: Environment, target: FaultTarget, server_id: int, windows: List[Window]
    ):
        for window in windows:
            yield env.timeout(window.start - env.now)
            target.on_proxy_crash(server_id, env.now)
            yield env.timeout(window.end - env.now)
            target.on_proxy_recover(server_id, env.now)

    @staticmethod
    def _publisher_script(env: Environment, target: FaultTarget, windows: List[Window]):
        for window in windows:
            yield env.timeout(window.start - env.now)
            target.on_publisher_outage(env.now)
            yield env.timeout(window.end - env.now)
            target.on_publisher_recover(env.now)
