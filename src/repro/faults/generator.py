"""Deterministic fault-schedule generation.

Crash, outage, degradation and broker-failure processes are drawn from
*dedicated* named streams of :class:`~repro.sim.rng.RandomStreams`
("faults.proxy", "faults.publisher", "faults.links",
"faults.brokers"), so

* the schedule is a pure function of the root seed and the
  :class:`~repro.faults.spec.ChaosSpec`, and
* enabling chaos cannot perturb the workload, subscription or topology
  streams — a run with an *empty* schedule is bit-identical to a run
  without the faults layer.

Each component alternates exponentially distributed up-times (mean
MTBF) and down-times (mean MTTR), the classic memoryless availability
model; windows are clipped to the simulation horizon.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.faults.schedule import DegradedWindow, FaultSchedule, Window
from repro.faults.spec import ChaosSpec, OverloadSpec
from repro.sim.rng import RandomStreams


def derive_overload_rng(
    spec: Optional[OverloadSpec], streams: RandomStreams
) -> Optional[np.random.Generator]:
    """Derive the ``faults.overload`` stream, but only when needed.

    Service queues, the token bucket and the retry budget are fully
    deterministic; only breaker-probe jitter and retry-backoff jitter
    consume randomness.  Returning ``None`` for jitter-free specs keeps
    the stream un-derived, so arming the overload layer cannot perturb
    any other stream (the same discipline as the fault-kind streams
    above).
    """
    if spec is None or not spec.uses_rng:
        return None
    from repro.faults import OVERLOAD_STREAM

    return streams.stream(OVERLOAD_STREAM)


def _alternating_windows(
    rng: np.random.Generator, mtbf: float, mttr: float, horizon: float
) -> List[Window]:
    """Alternate Exp(mtbf) up-times with Exp(mttr) down-times."""
    windows: List[Window] = []
    at = float(rng.exponential(mtbf))
    while at < horizon:
        downtime = max(1.0, float(rng.exponential(mttr)))
        end = min(at + downtime, horizon)
        if end > at:
            windows.append(Window(start=at, end=end))
        at = end + float(rng.exponential(mtbf))
    return windows


def generate_fault_schedule(
    spec: ChaosSpec,
    streams: RandomStreams,
    horizon: float,
    server_count: int,
) -> FaultSchedule:
    """Materialise the run's fault plan from ``spec``.

    Proxies are visited in server-id order and the publisher last, so
    the draw order — and therefore the schedule — is stable for a given
    seed no matter which faults are enabled (each fault kind has its
    own stream).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")

    proxy_crashes = {}
    if spec.proxy_mtbf > 0.0:
        rng = streams.stream("faults.proxy")
        for server_id in range(server_count):
            # Draw eligibility for every server (even when
            # crash_fraction is 1.0) so changing the fraction does not
            # shift the per-server crash times of still-eligible ones.
            eligible = float(rng.random()) < spec.crash_fraction
            windows = _alternating_windows(
                rng, spec.proxy_mtbf, spec.proxy_mttr, horizon
            )
            if eligible and windows:
                proxy_crashes[server_id] = windows

    publisher_outages: List[Window] = []
    if spec.publisher_mtbf > 0.0:
        rng = streams.stream("faults.publisher")
        publisher_outages = _alternating_windows(
            rng, spec.publisher_mtbf, spec.publisher_mttr, horizon
        )

    degraded_links = {}
    if spec.degraded_mtbf > 0.0:
        rng = streams.stream("faults.links")
        for server_id in range(server_count):
            windows = _alternating_windows(
                rng, spec.degraded_mtbf, spec.degraded_mttr, horizon
            )
            if windows:
                degraded_links[server_id] = [
                    DegradedWindow(
                        start=window.start,
                        end=window.end,
                        latency_multiplier=spec.degraded_latency_multiplier,
                        loss_probability=spec.degraded_loss_probability,
                    )
                    for window in windows
                ]

    broker_crashes = {}
    if spec.broker_mtbf > 0.0:
        rng = streams.stream("faults.brokers")
        for broker_id in range(spec.broker_count):
            windows = _alternating_windows(
                rng, spec.broker_mtbf, spec.broker_mttr, horizon
            )
            if windows:
                broker_crashes[broker_id] = windows

    return FaultSchedule(
        proxy_crashes=proxy_crashes,
        publisher_outages=publisher_outages,
        degraded_links=degraded_links,
        broker_crashes=broker_crashes,
    )
