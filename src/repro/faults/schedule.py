"""Fault schedules: when which component is down or degraded.

A :class:`FaultSchedule` is a fully materialised, immutable plan of
fault windows for one run — proxy crash/recover intervals, publisher
outage intervals and degraded-link episodes.  Materialising the whole
schedule up front (instead of drawing failures during the replay) has
two payoffs:

* determinism — the schedule depends only on the fault RNG streams, so
  the same seed produces the same crashes regardless of the workload
  replay interleaving, and
* foresight for the retry model — resolving "does a backed-off retry
  land after the publisher recovers?" is a pure window lookup.

All lookups use half-open windows ``[start, end)``: a component is down
at its crash instant and back up at its recovery instant.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Window:
    """One half-open fault interval ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"window start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(f"empty window: [{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def covers(self, at: float) -> bool:
        return self.start <= at < self.end


@dataclass(frozen=True)
class DegradedWindow(Window):
    """A degraded-link episode: slow and/or lossy, but not down."""

    latency_multiplier: float = 1.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1, got {self.latency_multiplier}"
            )
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )


def _normalise(windows: Iterable[Window]) -> List[Window]:
    """Sort windows by start and reject overlaps (one component cannot
    be down twice at once)."""
    ordered = sorted(windows, key=lambda w: w.start)
    for earlier, later in zip(ordered, ordered[1:]):
        if later.start < earlier.end:
            raise ValueError(
                f"overlapping fault windows: [{earlier.start}, {earlier.end}) "
                f"and [{later.start}, {later.end})"
            )
    return ordered


class _Timeline:
    """Sorted non-overlapping windows with O(log n) point lookups."""

    __slots__ = ("windows", "_starts")

    def __init__(self, windows: Iterable[Window]) -> None:
        self.windows: List[Window] = _normalise(windows)
        self._starts = [window.start for window in self.windows]

    def at(self, time: float) -> Optional[Window]:
        """The window covering ``time``, or None."""
        index = bisect_right(self._starts, time) - 1
        if index >= 0 and self.windows[index].covers(time):
            return self.windows[index]
        return None

    def next_clear(self, time: float) -> float:
        """Earliest instant >= ``time`` not inside any window."""
        window = self.at(time)
        return window.end if window is not None else time

    @property
    def total_duration(self) -> float:
        return sum(window.duration for window in self.windows)

    def __len__(self) -> int:
        return len(self.windows)


class FaultSchedule:
    """The complete fault plan of one simulation run."""

    def __init__(
        self,
        proxy_crashes: Optional[Mapping[int, Sequence[Window]]] = None,
        publisher_outages: Sequence[Window] = (),
        degraded_links: Optional[Mapping[int, Sequence[DegradedWindow]]] = None,
        broker_crashes: Optional[Mapping[int, Sequence[Window]]] = None,
    ) -> None:
        self._proxy: Dict[int, _Timeline] = {
            int(server): _Timeline(windows)
            for server, windows in (proxy_crashes or {}).items()
            if windows
        }
        self._publisher = _Timeline(publisher_outages)
        self._links: Dict[int, _Timeline] = {
            int(server): _Timeline(windows)
            for server, windows in (degraded_links or {}).items()
            if windows
        }
        self._brokers: Dict[int, _Timeline] = {
            int(broker): _Timeline(windows)
            for broker, windows in (broker_crashes or {}).items()
            if windows
        }

    # -- queries -----------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when the schedule injects no fault at all."""
        return (
            not self._proxy
            and not len(self._publisher)
            and not self._links
            and not self._brokers
        )

    @property
    def has_broker_faults(self) -> bool:
        """Whether any broker node on the push path ever crashes."""
        return bool(self._brokers)

    def proxy_down(self, server_id: int, at: float) -> bool:
        timeline = self._proxy.get(server_id)
        return timeline is not None and timeline.at(at) is not None

    def publisher_down(self, at: float) -> bool:
        return self._publisher.at(at) is not None

    def publisher_back_at(self, at: float) -> float:
        """Earliest instant >= ``at`` with the publisher reachable."""
        return self._publisher.next_clear(at)

    def broker_down(self, broker_id: int, at: float) -> bool:
        """Whether push-path broker ``broker_id`` is down at ``at``."""
        timeline = self._brokers.get(broker_id)
        return timeline is not None and timeline.at(at) is not None

    def degradation(self, server_id: int, at: float) -> Optional[DegradedWindow]:
        """The degraded-link episode covering proxy ``server_id`` now."""
        timeline = self._links.get(server_id)
        if timeline is None:
            return None
        window = timeline.at(at)
        return window if isinstance(window, DegradedWindow) else None

    # -- iteration (the injector walks these) ------------------------------

    def crash_windows(self) -> List[Tuple[int, Window]]:
        """All (server_id, window) crash pairs, by server then time."""
        return [
            (server, window)
            for server in sorted(self._proxy)
            for window in self._proxy[server].windows
        ]

    def outage_windows(self) -> List[Window]:
        return list(self._publisher.windows)

    def broker_crash_windows(self) -> List[Tuple[int, Window]]:
        """All (broker_id, window) crash pairs, by broker then time."""
        return [
            (broker, window)
            for broker in sorted(self._brokers)
            for window in self._brokers[broker].windows
        ]

    # -- summary stats -----------------------------------------------------

    @property
    def crash_count(self) -> int:
        return sum(len(timeline) for timeline in self._proxy.values())

    @property
    def publisher_outage_seconds(self) -> float:
        return self._publisher.total_duration

    @property
    def proxy_downtime_seconds(self) -> float:
        return sum(t.total_duration for t in self._proxy.values())

    @property
    def broker_crash_count(self) -> int:
        return sum(len(timeline) for timeline in self._brokers.values())

    @property
    def broker_downtime_seconds(self) -> float:
        return sum(t.total_duration for t in self._brokers.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultSchedule(crashes={self.crash_count}, "
            f"outages={len(self._publisher)}, "
            f"degraded_links={sum(len(t) for t in self._links.values())}, "
            f"broker_crashes={self.broker_crash_count})"
        )


#: A schedule with no faults — handy for tests and the bit-identity check.
EMPTY_SCHEDULE = FaultSchedule()
