"""Post-crash recovery instrumentation (time-to-warm).

The point of push-time placement under chaos: a proxy that restarts
cold can be re-warmed by pushes *before* users ask.  To measure that,
:class:`RecoveryTracker` watches every proxy after each recovery and
produces

* a **recovery curve** — served requests and hits bucketed by time
  since recovery, aggregated over all crashes, and
* a **time-to-warm** sample per crash — how long until a rolling
  window of the proxy's requests hits ``warm_threshold`` of its
  pre-crash hit ratio.

Both feed :class:`~repro.system.metrics.SimulationResult`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


@dataclass
class _Warming:
    """One proxy's state between a recovery and reaching warmth."""

    recovered_at: float
    pre_hit_ratio: float
    window: Deque[bool]


@dataclass
class RecoveryReport:
    """Aggregated recovery data of one run."""

    bin_seconds: float
    curve_requests: List[int] = field(default_factory=list)
    curve_hits: List[int] = field(default_factory=list)
    time_to_warm: List[float] = field(default_factory=list)
    #: Recoveries whose cache never reached the warm threshold before
    #: the run (or the next crash) ended.
    unwarmed: int = 0


class RecoveryTracker:
    """Aggregates per-proxy recovery curves and time-to-warm samples."""

    def __init__(
        self,
        warm_request_window: int = 50,
        warm_threshold: float = 0.8,
        bin_seconds: float = 600.0,
        bin_count: int = 12,
    ) -> None:
        if warm_request_window < 1:
            raise ValueError("warm_request_window must be >= 1")
        if bin_count < 1 or bin_seconds <= 0:
            raise ValueError("need bin_count >= 1 and bin_seconds > 0")
        self.warm_request_window = int(warm_request_window)
        self.warm_threshold = float(warm_threshold)
        self.bin_seconds = float(bin_seconds)
        self.bin_count = int(bin_count)
        self._pre_ratio: Dict[int, float] = {}
        self._warming: Dict[int, _Warming] = {}
        self._report = RecoveryReport(
            bin_seconds=self.bin_seconds,
            curve_requests=[0] * self.bin_count,
            curve_hits=[0] * self.bin_count,
        )

    # -- lifecycle hooks (called by the simulator) --------------------------

    def on_crash(self, server_id: int, now: float, pre_hit_ratio: float) -> None:
        """A proxy just crashed; remember how warm it was."""
        if self._warming.pop(server_id, None) is not None:
            # Crashed again before re-warming from the previous crash.
            self._report.unwarmed += 1
        self._pre_ratio[server_id] = float(pre_hit_ratio)

    def on_recover(self, server_id: int, now: float) -> None:
        self._warming[server_id] = _Warming(
            recovered_at=now,
            pre_hit_ratio=self._pre_ratio.get(server_id, 0.0),
            window=deque(maxlen=self.warm_request_window),
        )

    def on_request(self, server_id: int, hit: bool, now: float) -> None:
        """A request was *served* at ``server_id`` (hits and misses)."""
        state = self._warming.get(server_id)
        if state is None:
            return
        since = now - state.recovered_at
        bin_index = int(since // self.bin_seconds)
        if 0 <= bin_index < self.bin_count:
            self._report.curve_requests[bin_index] += 1
            if hit:
                self._report.curve_hits[bin_index] += 1
        state.window.append(hit)
        if len(state.window) < self.warm_request_window:
            return
        ratio = sum(state.window) / len(state.window)
        if ratio >= self.warm_threshold * state.pre_hit_ratio:
            self._report.time_to_warm.append(since)
            del self._warming[server_id]

    # -- results -----------------------------------------------------------

    def report(self) -> RecoveryReport:
        """Finalise: proxies still warming count as unwarmed."""
        self._report.unwarmed += len(self._warming)
        self._warming.clear()
        return self._report

    def mean_time_to_warm(self) -> Optional[float]:
        samples = self._report.time_to_warm
        if not samples:
            return None
        return sum(samples) / len(samples)
