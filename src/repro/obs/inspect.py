"""Summarise a JSONL trace file (the ``repro-pubsub inspect`` backend).

Given a trace written with ``--trace-out``, this module answers the
questions a failed or surprising run raises first: what happened, to
which pages, why did entries leave the caches, and how did the fault
timeline unfold.  It can also replay one page's entire life.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.tracer import EVENT_TYPES, read_jsonl

#: Event types rendered on the fault/failover timeline, in trace order.
_TIMELINE_TYPES = frozenset(
    {
        "crash",
        "restart",
        "outage",
        "outage_end",
        "failover",
        "retry",
        "failed",
        "delivery_lost",
        "delivery_retransmit",
        "repair",
        "overload_stale",
        "retry_denied",
    }
)

#: Overload/backpressure event types aggregated per proxy.  The
#: high-volume shed/reject events stay out of the timeline and are
#: summarised here instead.
_OVERLOAD_TYPES = frozenset(
    {
        "overload_shed",
        "overload_reject",
        "overload_stale",
        "retry_denied",
    }
)

#: Per-page churn weighting: every one of these counts as one unit of
#: "something happened to this page".
_CHURN_TYPES = frozenset(
    {
        "publish",
        "push_accept",
        "evict",
        "fetch",
        "peer_fetch",
        "miss",
        "stale",
        "repair",
        "stale_served",
    }
)

#: Subscription-lifecycle event types aggregated per proxy.
_LIFECYCLE_TYPES = frozenset(
    {
        "subscribe",
        "unsubscribe",
        "lease_confirmed",
        "lease_renewed",
        "lease_expired",
        "handshake_lost",
        "repoll",
    }
)


@dataclass
class TraceSummary:
    """Aggregates computed from one trace file."""

    path: str
    event_count: int = 0
    time_range: Optional[tuple] = None
    strategies: List[str] = field(default_factory=list)
    counts_by_type: Counter = field(default_factory=Counter)
    unknown_types: Counter = field(default_factory=Counter)
    churn_by_page: Counter = field(default_factory=Counter)
    churn_detail: Dict[int, Counter] = field(default_factory=dict)
    eviction_causes: Counter = field(default_factory=Counter)
    timeline: List[dict] = field(default_factory=list)
    #: proxy -> Counter of lifecycle event types at that proxy.
    lifecycle_by_proxy: Dict[int, Counter] = field(default_factory=dict)
    #: (proxy, page) -> lifecycle event count (the churning subscribers).
    churning_subscribers: Counter = field(default_factory=Counter)
    #: proxy -> Counter of overload event types at that proxy.
    overload_by_proxy: Dict[int, Counter] = field(default_factory=dict)

    def as_dict(self, top: int = 10, timeline_limit: int = 20) -> Dict[str, object]:
        """A JSON-serialisable view of the summary (``inspect --json``).

        Compound keys become lists of objects so the structure survives
        ``json.dumps`` without stringified-tuple keys.
        """
        return {
            "path": self.path,
            "event_count": self.event_count,
            "time_range": list(self.time_range) if self.time_range else None,
            "strategies": list(self.strategies),
            "counts_by_type": dict(self.counts_by_type),
            "unknown_types": dict(self.unknown_types),
            "top_pages_by_churn": [
                {
                    "page": page,
                    "churn": churn,
                    "detail": dict(self.churn_detail.get(page, Counter())),
                }
                for page, churn in self.churn_by_page.most_common(top)
            ],
            "eviction_causes": dict(self.eviction_causes),
            "lifecycle_by_proxy": [
                {"proxy": proxy, "events": dict(detail)}
                for proxy, detail in sorted(self.lifecycle_by_proxy.items())
            ],
            "churning_subscribers": [
                {"proxy": proxy, "page": page, "events": count}
                for (proxy, page), count in self.churning_subscribers.most_common(top)
            ],
            "overload_by_proxy": [
                {"proxy": proxy, "events": dict(detail)}
                for proxy, detail in sorted(self.overload_by_proxy.items())
            ],
            "timeline": self.timeline[:timeline_limit],
            "timeline_total": len(self.timeline),
        }

    def render(self, top: int = 10, timeline_limit: int = 20) -> str:
        lines = [f"trace    : {self.path}"]
        lines.append(f"events   : {self.event_count}")
        if self.time_range is not None:
            lines.append(
                f"sim time : {self.time_range[0]:.1f} .. {self.time_range[1]:.1f} s"
            )
        if self.strategies:
            lines.append(f"strategy : {', '.join(self.strategies)}")
        lines.append("")
        lines.append("events by type:")
        for etype, count in self.counts_by_type.most_common():
            lines.append(f"  {etype:<16s} {count}")
        for etype, count in self.unknown_types.most_common():
            lines.append(f"  {etype:<16s} {count}  (not in taxonomy)")
        if self.churn_by_page:
            lines.append("")
            lines.append(f"top {top} pages by churn (publish+push+evict+fetch+miss):")
            for page, churn in self.churn_by_page.most_common(top):
                detail = self.churn_detail.get(page, Counter())
                parts = " ".join(
                    f"{etype}={count}" for etype, count in sorted(detail.items())
                )
                lines.append(f"  page {page:<8d} churn={churn:<6d} {parts}")
        if self.eviction_causes:
            lines.append("")
            lines.append("eviction causes:")
            for cause, count in self.eviction_causes.most_common():
                lines.append(f"  {cause:<16s} {count}")
        if self.lifecycle_by_proxy:
            lines.append("")
            lines.append("subscription lifecycle by proxy (top by events):")
            ranked = sorted(
                self.lifecycle_by_proxy.items(),
                key=lambda item: (-sum(item[1].values()), item[0]),
            )
            for proxy, detail in ranked[:top]:
                lines.append(
                    f"  proxy {proxy:<6d} granted={detail.get('subscribe', 0):<5d} "
                    f"renewed={detail.get('lease_renewed', 0):<5d} "
                    f"expired={detail.get('lease_expired', 0):<5d} "
                    f"unsub={detail.get('unsubscribe', 0):<5d} "
                    f"repolls={detail.get('repoll', 0)}"
                )
            lines.append("")
            lines.append(f"top {top} churning subscribers (proxy, page):")
            for (proxy, page), count in self.churning_subscribers.most_common(top):
                lines.append(
                    f"  proxy {proxy:<6d} page {page:<8d} lifecycle events={count}"
                )
        if self.overload_by_proxy:
            lines.append("")
            lines.append("overload & backpressure by proxy (top by events):")
            ranked = sorted(
                self.overload_by_proxy.items(),
                key=lambda item: (-sum(item[1].values()), item[0]),
            )
            for proxy, detail in ranked[:top]:
                lines.append(
                    f"  proxy {proxy:<6d} sheds={detail.get('overload_shed', 0):<5d} "
                    f"rejects={detail.get('overload_reject', 0):<5d} "
                    f"stale_served={detail.get('overload_stale', 0):<5d} "
                    f"retries_denied={detail.get('retry_denied', 0)}"
                )
        if self.timeline:
            lines.append("")
            shown = self.timeline[:timeline_limit]
            lines.append(
                f"fault/failover timeline (first {len(shown)} of "
                f"{len(self.timeline)}):"
            )
            for event in shown:
                detail = " ".join(
                    f"{key}={event[key]}"
                    for key in (
                        "proxy",
                        "page",
                        "target",
                        "reason",
                        "attempt",
                        "attempts",
                        "age",
                    )
                    if key in event
                )
                lines.append(f"  t={event['t']:>12.1f}  {event['type']:<12s} {detail}")
        return "\n".join(lines)


def summarize_trace(path: str) -> TraceSummary:
    """Read ``path`` and compute the summary aggregates."""
    events = read_jsonl(path)
    summary = TraceSummary(path=path, event_count=len(events))
    t_min = t_max = None
    strategies: List[str] = []
    for event in events:
        etype = event.get("type")
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
        if etype in EVENT_TYPES:
            summary.counts_by_type[etype] += 1
        else:
            summary.unknown_types[str(etype)] += 1
            continue
        strategy = event.get("strategy")
        if strategy and strategy not in strategies:
            strategies.append(strategy)
        page = event.get("page")
        if etype in _CHURN_TYPES and page is not None:
            summary.churn_by_page[page] += 1
            summary.churn_detail.setdefault(page, Counter())[etype] += 1
        if etype == "evict":
            summary.eviction_causes[event.get("cause", "unknown")] += 1
        if etype in _LIFECYCLE_TYPES:
            proxy = event.get("proxy")
            if proxy is not None:
                summary.lifecycle_by_proxy.setdefault(proxy, Counter())[etype] += 1
                if page is not None:
                    summary.churning_subscribers[(proxy, page)] += 1
        if etype in _OVERLOAD_TYPES:
            proxy = event.get("proxy")
            if proxy is not None:
                summary.overload_by_proxy.setdefault(proxy, Counter())[etype] += 1
        if etype in _TIMELINE_TYPES:
            summary.timeline.append(event)
    if t_min is not None:
        summary.time_range = (t_min, t_max)
    summary.strategies = strategies
    return summary


def page_history(path: str, page_id: int) -> List[dict]:
    """Every event touching ``page_id``, in trace (time) order."""
    return [e for e in read_jsonl(path) if e.get("page") == page_id]


def render_page_history(path: str, page_id: int) -> str:
    """The life of one page as a readable timeline."""
    events = page_history(path, page_id)
    if not events:
        return f"page {page_id}: no events in {path}"
    lines = [f"page {page_id}: {len(events)} events"]
    skip = {"t", "type", "page"}
    for event in events:
        detail = " ".join(
            f"{key}={value}" for key, value in event.items() if key not in skip
        )
        lines.append(f"  t={event['t']:>12.1f}  {event['type']:<14s} {detail}")
    return "\n".join(lines)
