"""Observability: metrics registry, event tracing, profiling, logging.

The simulation layers report *what happened* through one optional
:class:`~repro.obs.recorder.Observer`; this package holds the pieces:

* :class:`~repro.obs.registry.MetricsRegistry` — named counters,
  gauges and fixed-bucket histograms with Prometheus-text and JSON
  exporters;
* :class:`~repro.obs.tracer.EventTracer` — structured, sim-time-stamped
  lifecycle events (the taxonomy in
  :data:`~repro.obs.tracer.EVENT_TYPES`) into a ring buffer or a JSONL
  sink, filterable per page/proxy/type;
* :class:`~repro.obs.profile.Profiler` — span-style wall-time and
  call-count accounting around the hot paths;
* :class:`~repro.obs.timeseries.TimeSeriesCollector` — counters,
  gauges and stats folded into fixed-width simulated-time windows
  with bounded memory (ring + optional JSONL spill): the per-window
  hit-ratio / traffic / churn trajectories the paper's figures plot;
* :class:`~repro.obs.monitor.RunMonitor` — live wall-clock heartbeats
  (events/sec, sim-time progress + ETA, RSS, cache occupancy) while a
  run executes;
* :mod:`repro.obs.explain` — reconstruct one page's causal lifecycle
  chain from a trace and answer "why was this request a miss?";
* :mod:`repro.obs.benchtrack` — append benchmark runs to
  ``BENCH_history.jsonl`` and flag >10% regressions;
* :mod:`repro.obs.inspect` — summarise a trace file back into answers;
* :mod:`repro.obs.log` — stdlib logging under the ``repro.*``
  namespace (NullHandler by default; the CLI installs a console
  handler for ``-v``/``-vv``).

The module-level :data:`~repro.obs.recorder.NULL_OBSERVER` is the
default everywhere: with no observer attached a run's results are
bit-identical to an unobserved build and the overhead is one boolean
test per simulation event.
"""

from repro.obs.benchtrack import (
    HISTORY_FILE,
    Regression,
    append_entry,
    check_regressions,
    extract_metrics,
    load_history,
)
from repro.obs.explain import PageExplanation, explain_page, explain_page_from_file
from repro.obs.log import get_logger, setup_cli_logging
from repro.obs.monitor import RunMonitor, rss_bytes
from repro.obs.profile import NULL_SPAN, NullSpan, Profiler
from repro.obs.recorder import NULL_OBSERVER, NullObserver, Observer, build_observer
from repro.obs.registry import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
)
from repro.obs.timeseries import TimeSeriesCollector, read_series_jsonl
from repro.obs.tracer import EVENT_TYPES, EventTracer, read_jsonl

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "build_observer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "escape_label_value",
    "escape_help",
    "EventTracer",
    "EVENT_TYPES",
    "read_jsonl",
    "TimeSeriesCollector",
    "read_series_jsonl",
    "RunMonitor",
    "rss_bytes",
    "PageExplanation",
    "explain_page",
    "explain_page_from_file",
    "HISTORY_FILE",
    "Regression",
    "append_entry",
    "check_regressions",
    "extract_metrics",
    "load_history",
    "Profiler",
    "NullSpan",
    "NULL_SPAN",
    "get_logger",
    "setup_cli_logging",
]
