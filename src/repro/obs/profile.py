"""Span-style wall-time profiling for the simulation hot paths.

A :class:`Profiler` accumulates ``(call count, wall seconds)`` per named
phase.  Three styles of use, from coarse to fine:

* ``with profiler.span("sim.run"):`` — a phase of one run;
* ``wrapped = profiler.wrap(fn, "policy.on_request")`` — per-call
  timing of a hot function, installed as an instance attribute so an
  unprofiled object keeps its original, untouched method;
* ``profiler.record(name, dt)`` — manual accounting.

Profiling is strictly opt-in: nothing in the simulator times anything
unless an observer with a profiler is attached, so the default run
pays nothing.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict


class _Span:
    """Context manager timing one phase; re-usable via ``span()``."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._profiler.record(self._name, perf_counter() - self._start)


class NullSpan:
    """The do-nothing span handed out when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        pass


NULL_SPAN = NullSpan()


class Profiler:
    """Per-phase call counts and accumulated wall time."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def record(self, name: str, dt: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + dt
        self.calls[name] = self.calls.get(name, 0) + 1

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def wrap(self, fn: Callable, name: str) -> Callable:
        """A wrapper of ``fn`` that records one sample per call."""
        record = self.record

        def timed(*args, **kwargs):
            started = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                record(name, perf_counter() - started)

        timed.__name__ = getattr(fn, "__name__", name)
        timed.__wrapped__ = fn
        return timed

    def summary(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"calls": n, "seconds": s}}``, ready for JSON."""
        return {
            name: {"calls": self.calls[name], "seconds": self.seconds[name]}
            for name in sorted(self.seconds)
        }

    def render(self) -> str:
        """Human-readable table, slowest phase first."""
        if not self.seconds:
            return "(no profile samples)"
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        width = max(len(name) for name, _ in rows)
        lines = [f"{'phase':<{width}}  {'calls':>10}  {'seconds':>10}  {'us/call':>9}"]
        for name, seconds in rows:
            calls = self.calls[name]
            per_call = 1e6 * seconds / calls if calls else 0.0
            lines.append(
                f"{name:<{width}}  {calls:>10d}  {seconds:>10.4f}  {per_call:>9.1f}"
            )
        return "\n".join(lines)
