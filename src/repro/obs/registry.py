"""A small metrics registry: counters, gauges and histograms.

Components register instruments by name (get-or-create, so repeated
runs against one registry accumulate) and the registry renders the
whole set either as Prometheus text exposition format or as JSON.
Everything is plain Python — one float per counter/gauge, a fixed
bucket array per histogram — so recording a sample is a dict lookup
plus an addition, cheap enough for simulation hot paths.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and line-feed are the three characters the
    format requires escaped inside quoted label values; backslash must
    go first so the other escapes aren't double-escaped.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape HELP text (backslash and line-feed only, per the format)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _labelset(labels, extra: Optional[Tuple[str, str]] = None) -> str:
    """Render ``{k="v",...}`` with escaped values; "" when empty."""
    pairs = list(labels) if labels else []
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _normalize_labels(labels) -> Optional[Tuple[Tuple[str, str], ...]]:
    if not labels:
        return None
    items = sorted((str(k), str(v)) for k, v in dict(labels).items())
    for key, _ in items:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return tuple(items)

#: Default histogram buckets, tuned for modelled response times in
#: seconds (hits land in the first buckets, retried fetches in the
#: tail).  Prometheus convention: upper bounds, +Inf implied.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels=None) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels=None) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class Histogram:
    """A fixed-bucket histogram (Prometheus cumulative semantics).

    ``buckets`` are strictly increasing upper bounds; an implicit +Inf
    bucket catches the rest.  Per-bucket counts are stored
    non-cumulatively and summed at render time, so ``observe`` is one
    ``bisect`` plus two additions.
    """

    __slots__ = ("name", "help", "labels", "buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels=None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} buckets must strictly increase: {bounds}")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    def cumulative_counts(self) -> List[int]:
        """Counts of samples ``<=`` each bound, then the +Inf total."""
        out = []
        running = 0
        for count in self._counts:
            running += count
            out.append(running)
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments with Prometheus-text and JSON exporters."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def _register(self, kind, name: str, help: str, labels=None, **kwargs) -> Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        labels = _normalize_labels(labels)
        key = name + _labelset(labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if type(existing) is not kind:
                raise ValueError(
                    f"metric {key!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            buckets = kwargs.get("buckets")
            if buckets is not None and existing.buckets != tuple(
                float(b) for b in buckets
            ):
                raise ValueError(f"histogram {key!r} re-registered with new buckets")
            return existing
        instrument = kind(name, help, labels=labels, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", labels=None) -> Counter:
        """Get or create a counter (``labels``: constant label dict)."""
        return self._register(Counter, name, help, labels=labels)

    def gauge(self, name: str, help: str = "", labels=None) -> Gauge:
        """Get or create a gauge (``labels``: constant label dict)."""
        return self._register(Gauge, name, help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels=None,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._register(Histogram, name, help, labels=labels, buckets=buckets)

    # -- exporters ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format.

        Label values are escaped per the format (backslash, newline,
        double-quote); HELP text escapes backslash and newline.  With
        labelled instruments sharing one metric name, the HELP/TYPE
        header is emitted once per name.
        """
        lines: List[str] = []
        headered = set()
        for key in sorted(self._instruments, key=lambda k: (self._instruments[k].name, k)):
            instrument = self._instruments[key]
            name = instrument.name
            labelset = _labelset(instrument.labels)
            if name not in headered:
                headered.add(name)
                if instrument.help:
                    lines.append(f"# HELP {name} {escape_help(instrument.help)}")
                if isinstance(instrument, Counter):
                    lines.append(f"# TYPE {name} counter")
                elif isinstance(instrument, Gauge):
                    lines.append(f"# TYPE {name} gauge")
                else:
                    lines.append(f"# TYPE {name} histogram")
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(f"{name}{labelset} {_fmt(instrument.value)}")
            else:
                cumulative = instrument.cumulative_counts()
                for bound, count in zip(instrument.buckets, cumulative):
                    bucket_labels = _labelset(
                        instrument.labels, extra=("le", _fmt(bound))
                    )
                    lines.append(f"{name}_bucket{bucket_labels} {count}")
                inf_labels = _labelset(instrument.labels, extra=("le", "+Inf"))
                lines.append(f"{name}_bucket{inf_labels} {cumulative[-1]}")
                lines.append(f"{name}_sum{labelset} {_fmt(instrument.sum)}")
                lines.append(f"{name}_count{labelset} {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Dict]:
        """One JSON-serialisable entry per instrument (keyed by name plus
        canonical labelset, so labelled siblings don't collide)."""
        out: Dict[str, Dict] = {}
        for key in sorted(self._instruments):
            instrument = self._instruments[key]
            entry: Dict[str, object]
            if isinstance(instrument, Counter):
                entry = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                entry = {"type": "gauge", "value": instrument.value}
            else:
                entry = {
                    "type": "histogram",
                    "buckets": list(instrument.buckets),
                    "cumulative_counts": instrument.cumulative_counts(),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
            if instrument.labels:
                entry["labels"] = dict(instrument.labels)
            out[key] = entry
        return out

    def render_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def _fmt(value: float) -> str:
    """Render a float the way Prometheus expects (no trailing .0 noise)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
