"""A small metrics registry: counters, gauges and histograms.

Components register instruments by name (get-or-create, so repeated
runs against one registry accumulate) and the registry renders the
whole set either as Prometheus text exposition format or as JSON.
Everything is plain Python — one float per counter/gauge, a fixed
bucket array per histogram — so recording a sample is a dict lookup
plus an addition, cheap enough for simulation hot paths.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default histogram buckets, tuned for modelled response times in
#: seconds (hits land in the first buckets, retried fetches in the
#: tail).  Prometheus convention: upper bounds, +Inf implied.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class Histogram:
    """A fixed-bucket histogram (Prometheus cumulative semantics).

    ``buckets`` are strictly increasing upper bounds; an implicit +Inf
    bucket catches the rest.  Per-bucket counts are stored
    non-cumulatively and summed at render time, so ``observe`` is one
    ``bisect`` plus two additions.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count")

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} buckets must strictly increase: {bounds}")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    def cumulative_counts(self) -> List[int]:
        """Counts of samples ``<=`` each bound, then the +Inf total."""
        out = []
        running = 0
        for count in self._counts:
            running += count
            out.append(running)
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments with Prometheus-text and JSON exporters."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def _register(self, kind, name: str, help: str, **kwargs) -> Instrument:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            buckets = kwargs.get("buckets")
            if buckets is not None and existing.buckets != tuple(
                float(b) for b in buckets
            ):
                raise ValueError(f"histogram {name!r} re-registered with new buckets")
            return existing
        instrument = kind(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._register(Histogram, name, help, buckets=buckets)

    # -- exporters ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_fmt(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = instrument.cumulative_counts()
                for bound, count in zip(instrument.buckets, cumulative):
                    lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {count}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{name}_sum {_fmt(instrument.sum)}")
                lines.append(f"{name}_count {instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Dict]:
        """One JSON-serialisable entry per instrument."""
        out: Dict[str, Dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "buckets": list(instrument.buckets),
                    "cumulative_counts": instrument.cumulative_counts(),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
        return out

    def render_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def _fmt(value: float) -> str:
    """Render a float the way Prometheus expects (no trailing .0 noise)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
