"""Benchmark-history tracking and regression flagging.

Every ``BENCH_*.json`` artifact the benchmarks emit is a point sample:
it says what the numbers were *now*, and nothing guards the 1.89x
replay speedup or the strategy hit ratios from silently eroding one
PR at a time.  This module turns those artifacts into a trajectory:

* :func:`append_entry` folds one benchmark payload into
  ``BENCH_history.jsonl`` — one JSON line per run with the git SHA,
  a timestamp, and the extracted headline metrics;
* :func:`check_regressions` compares the newest entry of each
  benchmark against its predecessor and flags any higher-is-better
  metric (events/sec, runs/sec, hit ratio, speedup, delivery ratio)
  that dropped by more than the threshold (default 10%).

The CI gate is ``python benchmarks/bench_history.py check`` — it exits
nonzero when a regression is flagged, so an injected 20% slowdown
fails the build.  Metric extraction is schema-agnostic: it walks the
payload recursively and keeps numeric leaves whose key names a
higher-is-better quantity, so new benchmarks join the history without
code changes here.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Default history file name (repo root, next to the BENCH_*.json files).
HISTORY_FILE = "BENCH_history.jsonl"

#: Key fragments that mark a numeric leaf as a tracked, higher-is-better
#: metric.  Lower-is-better quantities (seconds_per_run, overhead
#: fractions) are deliberately absent: their regressions surface through
#: the paired rate metrics without double-flagging noise.
_HIGHER_IS_BETTER = (
    "events_per_sec",
    "runs_per_sec",
    "hit_ratio",
    "delivery_ratio",
    "speedup",
    "availability",
)

#: Payload keys never descended into (bulky raw sample arrays).
_SKIP_KEYS = frozenset({"all_seconds", "phases", "hourly"})


def extract_metrics(payload: Dict[str, object]) -> Dict[str, float]:
    """Pull the tracked metrics out of one BENCH_*.json payload.

    Returns dotted-path names, e.g. ``replay.fast.events_per_sec`` or
    ``strategies.dc-ap.baseline.hit_ratio``.
    """
    metrics: Dict[str, float] = {}

    def walk(node: object, path: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                if key in _SKIP_KEYS:
                    continue
                child = f"{path}.{key}" if path else str(key)
                if isinstance(value, (dict, list)):
                    walk(value, child)
                elif isinstance(value, (int, float)) and not isinstance(value, bool):
                    if any(marker in str(key) for marker in _HIGHER_IS_BETTER):
                        metrics[child] = float(value)
        elif isinstance(node, list):
            for index, value in enumerate(node):
                walk(value, f"{path}[{index}]")

    walk(payload, "")
    return metrics


def git_sha(cwd: Optional[str] = None) -> str:
    """The current short commit SHA, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def make_entry(
    payload: Dict[str, object],
    source: Optional[str] = None,
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """Build one history entry (a JSON-serialisable dict) from a payload."""
    return {
        "benchmark": payload.get("benchmark")
        or (os.path.basename(source) if source else "unknown"),
        "sha": sha if sha is not None else git_sha(),
        "recorded_at": timestamp if timestamp is not None else time.time(),
        "source": source,
        "metrics": extract_metrics(payload),
    }


def append_entry(
    history_path: str,
    payload: Dict[str, object],
    source: Optional[str] = None,
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """Append one entry for ``payload`` to the history file; returns it."""
    entry = make_entry(payload, source=source, sha=sha, timestamp=timestamp)
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, separators=(",", ":"), sort_keys=True) + "\n")
    return entry


def load_history(history_path: str) -> List[Dict[str, object]]:
    """All history entries, oldest first; [] when the file is absent."""
    if not os.path.exists(history_path):
        return []
    entries = []
    with open(history_path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{history_path}:{line_number}: bad history line: {error}"
                )
    return entries


@dataclass
class Regression:
    """One flagged metric drop between consecutive runs of a benchmark."""

    benchmark: str
    metric: str
    previous: float
    current: float
    drop: float
    previous_sha: str = "unknown"
    current_sha: str = "unknown"

    def describe(self) -> str:
        return (
            f"{self.benchmark}: {self.metric} dropped {self.drop * 100:.1f}% "
            f"({self.previous:g} @ {self.previous_sha} -> "
            f"{self.current:g} @ {self.current_sha})"
        )


def check_regressions(
    entries: List[Dict[str, object]], threshold: float = 0.10
) -> List[Regression]:
    """Flag >``threshold`` drops between each benchmark's last two runs.

    Only metrics present in both runs are compared (a benchmark may
    grow or shed columns over time), and only strictly positive
    previous values can regress (a 0 -> 0 metric is just quiet).
    """
    by_benchmark: Dict[str, List[Dict[str, object]]] = {}
    for entry in entries:
        by_benchmark.setdefault(str(entry.get("benchmark")), []).append(entry)
    regressions: List[Regression] = []
    for benchmark, runs in sorted(by_benchmark.items()):
        if len(runs) < 2:
            continue
        previous, current = runs[-2], runs[-1]
        prev_metrics = previous.get("metrics") or {}
        curr_metrics = current.get("metrics") or {}
        for metric in sorted(prev_metrics):
            if metric not in curr_metrics:
                continue
            old = float(prev_metrics[metric])
            new = float(curr_metrics[metric])
            if old <= 0:
                continue
            drop = 1.0 - new / old
            if drop > threshold:
                regressions.append(
                    Regression(
                        benchmark=benchmark,
                        metric=metric,
                        previous=old,
                        current=new,
                        drop=drop,
                        previous_sha=str(previous.get("sha", "unknown")),
                        current_sha=str(current.get("sha", "unknown")),
                    )
                )
    return regressions


def record_file(
    bench_path: str,
    history_path: str = HISTORY_FILE,
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, object]:
    """Read one BENCH_*.json file and append it to the history."""
    with open(bench_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return append_entry(
        history_path,
        payload,
        source=os.path.basename(bench_path),
        sha=sha,
        timestamp=timestamp,
    )
