"""Standard-library logging setup for the ``repro`` namespace.

Library code never configures logging: every module asks
:func:`get_logger` for a logger under the ``repro.*`` hierarchy, whose
root carries a :class:`logging.NullHandler` so an embedding application
stays silent unless it opts in.  The CLI opts in via
:func:`setup_cli_logging`, mapping ``-v``/``-vv`` to INFO/DEBUG on a
stderr handler.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

#: Root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

# The library must never emit "No handlers could be found" warnings nor
# write anywhere the host application did not ask for.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())

#: Marker attribute identifying the handler installed by the CLI, so
#: repeated setup calls (tests, REPL use) replace rather than stack it.
_CLI_HANDLER_FLAG = "_repro_cli_handler"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro.*`` namespace.

    ``get_logger("experiments.runner")`` and
    ``get_logger("repro.experiments.runner")`` name the same logger.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def setup_cli_logging(verbosity: int = 0, stream: Optional[TextIO] = None) -> logging.Logger:
    """Install (or replace) the CLI console handler.

    ``verbosity`` 0 shows warnings only, 1 (``-v``) adds INFO,
    2+ (``-vv``) adds DEBUG.  Returns the configured root logger.
    """
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _CLI_HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)-7s %(name)s: %(message)s")
    )
    setattr(handler, _CLI_HANDLER_FLAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root
