"""Causal explanation of one page's lifecycle from a trace.

``repro-pubsub inspect`` summarises a trace; this module *explains*
it: given the event stream of a run, reconstruct the chain a single
page went through at each proxy —

    subscribed → notified seq N → delivered / lost → cached →
    evicted(cause) → miss / repair

— and answer the question an operator actually asks when a hit-ratio
curve dips: *why was this request a miss?*  Each request outcome in
the chain is annotated with the most recent causally-relevant event:
the eviction that emptied the slot, the lost notification that left
the proxy stale, the declined push, the lapsed lease that suppressed
the push, or simply a cold cache.

Works on any trace produced by :class:`repro.obs.tracer.EventTracer`
(file or in-memory events); the CLI front-end is
``repro-pubsub explain page <id> <trace.jsonl> [--proxy P]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.tracer import read_jsonl

#: Event types that concern a page at one proxy and belong in the chain.
_CHAIN_TYPES = frozenset(
    {
        "subscribe",
        "lease_renewed",
        "unsubscribe",
        "lease_confirmed",
        "lease_expired",
        "handshake_lost",
        "repoll",
        "match",
        "push_offer",
        "push_accept",
        "push_reject",
        "push_suppressed",
        "delivery_drop",
        "delivery_retransmit",
        "delivery_lost",
        "delivery_dup",
        "delivery_gap",
        "request",
        "hit",
        "stale",
        "miss",
        "fetch",
        "peer_fetch",
        "repair",
        "stale_served",
        "failed",
        "failover",
        "retry",
        "evict",
    }
)

_OUTCOME_TYPES = frozenset({"hit", "stale", "miss", "failed"})


@dataclass
class ChainStep:
    """One event in a page's reconstructed lifecycle chain."""

    t: float
    type: str
    proxy: Optional[int]
    description: str
    event: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "t": self.t,
            "type": self.type,
            "proxy": self.proxy,
            "description": self.description,
        }


@dataclass
class Verdict:
    """Why one request outcome happened."""

    t: float
    proxy: Optional[int]
    outcome: str
    cause: str
    evidence: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "t": self.t,
            "proxy": self.proxy,
            "outcome": self.outcome,
            "cause": self.cause,
        }
        if self.evidence is not None:
            out["evidence"] = {
                "t": self.evidence.get("t"),
                "type": self.evidence.get("type"),
            }
        return out


@dataclass
class PageExplanation:
    """The full causal story of one page (optionally at one proxy)."""

    page_id: int
    proxy: Optional[int]
    steps: List[ChainStep] = field(default_factory=list)
    verdicts: List[Verdict] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "page": self.page_id,
            "proxy": self.proxy,
            "steps": [step.as_dict() for step in self.steps],
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
        }

    def render(self) -> str:
        scope = f" at proxy {self.proxy}" if self.proxy is not None else ""
        lines = [f"page {self.page_id}{scope}: {len(self.steps)} events"]
        verdicts_at = {
            (verdict.t, verdict.proxy, verdict.outcome): verdict
            for verdict in self.verdicts
        }
        for step in self.steps:
            proxy = f" proxy {step.proxy}" if step.proxy is not None else ""
            line = f"  t={step.t:>12.3f}  {step.type:<18}{proxy:<10} {step.description}"
            lines.append(line.rstrip())
            verdict = verdicts_at.get((step.t, step.proxy, step.type))
            if verdict is not None:
                lines.append(f"{'':>16}└─ because {verdict.cause}")
        if not self.steps:
            lines.append("  (no matching events in the trace)")
        return "\n".join(lines)


class _ProxyState:
    """Per-proxy causal bookkeeping while walking the event stream."""

    __slots__ = (
        "cached",
        "ever_stored",
        "ever_matched",
        "last_evict",
        "last_reject",
        "last_lost",
        "last_suppressed",
        "last_expired",
        "last_store",
        "last_repair",
    )

    def __init__(self) -> None:
        self.cached = False
        self.ever_stored = False
        self.ever_matched = False
        self.last_evict: Optional[Dict[str, object]] = None
        self.last_reject: Optional[Dict[str, object]] = None
        self.last_lost: Optional[Dict[str, object]] = None
        self.last_suppressed: Optional[Dict[str, object]] = None
        self.last_expired: Optional[Dict[str, object]] = None
        self.last_store: Optional[Dict[str, object]] = None
        self.last_repair: Optional[Dict[str, object]] = None


def _describe(event: Dict[str, object]) -> str:
    kind = event.get("type")
    if kind == "publish":
        return f"version {event.get('version')} published ({event.get('size')} bytes)"
    if kind == "subscribe":
        return f"subscribed (lease {event.get('lease')}s)"
    if kind == "lease_renewed":
        return f"lease renewed (+{event.get('lease')}s)"
    if kind == "unsubscribe":
        return "unsubscribed"
    if kind == "lease_confirmed":
        return f"handshake confirmed after {event.get('latency')}s"
    if kind == "lease_expired":
        return f"lease noticed lapsed at {event.get('where')}"
    if kind == "handshake_lost":
        return f"handshake abandoned after {event.get('attempts')} attempts"
    if kind == "repoll":
        return f"access re-polled a fresh lease ({event.get('reason')})"
    if kind == "match":
        return f"matched {event.get('matches')} local subscriptions"
    if kind == "push_offer":
        return "push offered to the cache"
    if kind == "push_accept":
        refreshed = event.get("refreshed")
        return "push stored (refreshed copy)" if refreshed else "push stored"
    if kind == "push_reject":
        return "push declined by the cache policy"
    if kind == "push_suppressed":
        return f"push suppressed ({event.get('reason')})"
    if kind == "delivery_drop":
        return f"notification send lost ({event.get('reason')})"
    if kind == "delivery_retransmit":
        return f"delivered after {event.get('attempts')} attempts"
    if kind == "delivery_lost":
        return f"notification permanently lost ({event.get('reason')})"
    if kind == "delivery_dup":
        return "duplicate delivery suppressed"
    if kind == "delivery_gap":
        return f"sequence gap detected at version {event.get('sequence')}"
    if kind == "request":
        return "user request arrives"
    if kind in ("hit", "stale", "miss"):
        return f"served as {kind} (latency {event.get('latency')}s)"
    if kind == "fetch":
        return "demand fetch from origin"
    if kind == "peer_fetch":
        return "demand fetch served by a peer proxy"
    if kind == "repair":
        return f"staleness repaired at access (copy {event.get('age')}s behind)"
    if kind == "stale_served":
        return f"silently stale copy served ({event.get('age')}s behind)"
    if kind == "failed":
        return "request failed (origin unreachable)"
    if kind == "failover":
        return f"failover to {event.get('target')} ({event.get('reason')})"
    if kind == "retry":
        return f"retry attempt {event.get('attempt')} (backoff {event.get('backoff')}s)"
    if kind == "evict":
        return f"evicted ({event.get('cause')}, {event.get('size')} bytes)"
    return str(kind)


def _fmt_t(event: Dict[str, object]) -> str:
    """An event's timestamp, rounded for prose (t=97282.52, not 14 digits)."""
    return f"{float(event['t']):.2f}"


def _after(state_event: Optional[Dict[str, object]], reference: Optional[Dict[str, object]]) -> bool:
    """Is ``state_event`` more recent than the last store ``reference``?"""
    if state_event is None:
        return False
    if reference is None:
        return True
    return float(state_event["t"]) >= float(reference["t"])


def _verdict_for(
    event: Dict[str, object], state: _ProxyState
) -> Verdict:
    t = float(event["t"])
    proxy = event.get("proxy")
    kind = str(event["type"])
    evidence: Optional[Dict[str, object]] = None
    if kind == "hit":
        if state.last_repair is not None and _after(state.last_repair, state.last_store):
            cause = (
                f"the access-time repair at t={_fmt_t(state.last_repair)} "
                "refreshed the copy"
            )
            evidence = state.last_repair
        elif state.last_store is not None:
            store_kind = state.last_store["type"]
            how = "pushed" if store_kind == "push_accept" else "fetched on a miss"
            cause = f"a fresh copy was {how} at t={_fmt_t(state.last_store)}"
            evidence = state.last_store
        else:
            cause = "a fresh copy was already cached"
    elif kind == "stale":
        if _after(state.last_lost, state.last_store):
            cause = (
                f"the update notification at t={_fmt_t(state.last_lost)} was "
                f"permanently lost ({state.last_lost.get('reason')}), so the "
                "cached copy fell behind"
            )
            evidence = state.last_lost
        elif _after(state.last_suppressed, state.last_store):
            cause = (
                f"the update push at t={_fmt_t(state.last_suppressed)} was "
                f"suppressed ({state.last_suppressed.get('reason')}), so the "
                "cached copy fell behind"
            )
            evidence = state.last_suppressed
        elif _after(state.last_reject, state.last_store):
            cause = (
                f"the update push at t={_fmt_t(state.last_reject)} was declined "
                "by the cache policy, so the cached copy fell behind"
            )
            evidence = state.last_reject
        else:
            cause = "a newer version was published and no update reached the cache"
    elif kind == "failed":
        cause = "the origin was unreachable and every retry was exhausted"
    else:  # miss
        if state.cached:
            # Chain bookkeeping says a copy is present: only possible
            # when the trace is partial (e.g. filtered); stay honest.
            cause = "unknown (the trace shows a live cached copy; is it filtered?)"
        elif _after(state.last_evict, state.last_store) and state.ever_stored:
            cause = (
                f"the cached copy was evicted "
                f"({state.last_evict.get('cause')}) at t={_fmt_t(state.last_evict)}"
            )
            evidence = state.last_evict
        elif _after(state.last_lost, state.last_store):
            cause = (
                f"the notification at t={_fmt_t(state.last_lost)} never arrived "
                f"({state.last_lost.get('reason')})"
            )
            evidence = state.last_lost
        elif _after(state.last_suppressed, state.last_store):
            cause = (
                f"the push at t={_fmt_t(state.last_suppressed)} was suppressed "
                f"({state.last_suppressed.get('reason')})"
            )
            evidence = state.last_suppressed
        elif _after(state.last_reject, state.last_store):
            cause = (
                f"the push at t={_fmt_t(state.last_reject)} was declined by the "
                "cache policy"
            )
            evidence = state.last_reject
        elif not state.ever_matched:
            cause = (
                "the page never matched this proxy's subscriptions, so it was "
                "never pushed (pull-only path)"
            )
        else:
            cause = "cold cache: the request arrived before any push"
    return Verdict(t=t, proxy=proxy, outcome=kind, cause=cause, evidence=evidence)


def explain_page(
    events: Iterable[Dict[str, object]],
    page_id: int,
    proxy: Optional[int] = None,
) -> PageExplanation:
    """Reconstruct the causal chain of ``page_id`` from trace events.

    ``events`` is any iterable of tracer event dicts in emission order
    (e.g. from :func:`repro.obs.tracer.read_jsonl`).  With ``proxy``
    given, the chain is restricted to that proxy (plus proxy-less
    events like the publishes of the page itself).
    """
    explanation = PageExplanation(page_id=page_id, proxy=proxy)
    states: Dict[int, _ProxyState] = {}
    for event in events:
        kind = event.get("type")
        if event.get("page") != page_id:
            continue
        if kind != "publish" and kind not in _CHAIN_TYPES:
            continue
        event_proxy = event.get("proxy")
        if proxy is not None and event_proxy is not None and event_proxy != proxy:
            continue
        t = float(event.get("t", 0.0))
        explanation.steps.append(
            ChainStep(
                t=t,
                type=str(kind),
                proxy=event_proxy,
                description=_describe(event),
                event=event,
            )
        )
        if event_proxy is None:
            continue
        state = states.get(event_proxy)
        if state is None:
            state = states[event_proxy] = _ProxyState()
        if kind == "match":
            state.ever_matched = True
        elif kind == "push_accept":
            state.cached = True
            state.ever_stored = True
            state.last_store = event
        elif kind == "push_reject":
            state.last_reject = event
        elif kind == "push_suppressed":
            state.last_suppressed = event
        elif kind == "delivery_lost":
            state.last_lost = event
        elif kind == "lease_expired":
            state.last_expired = event
        elif kind == "evict":
            state.cached = False
            state.last_evict = event
        elif kind == "repair":
            state.last_repair = event
        elif kind in ("fetch", "peer_fetch"):
            # A demand fetch usually re-populates the cache (policy
            # permitting); treat it as the latest plausible store so a
            # later eviction correctly explains the next miss.
            state.cached = True
            state.ever_stored = True
            state.last_store = event
        elif kind in _OUTCOME_TYPES:
            explanation.verdicts.append(_verdict_for(event, state))
    return explanation


def explain_page_from_file(
    path: str, page_id: int, proxy: Optional[int] = None
) -> PageExplanation:
    """Load ``path`` (tracer JSONL) and explain ``page_id``."""
    return explain_page(read_jsonl(path), page_id, proxy=proxy)
