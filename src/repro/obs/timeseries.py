"""Per-window time series over simulated time, with bounded memory.

The paper's headline results are *trajectories* — hourly hit-ratio and
traffic curves (Figures 4-7) — but the metrics registry only holds
end-of-run totals.  :class:`TimeSeriesCollector` adds the time
dimension: counters, gauges and summary statistics folded into
fixed-width windows of simulated time.

Memory stays bounded no matter how long the run is: at most
``max_windows`` windows are retained in a ring; when a window falls off
the front it is either *spilled* to a JSONL sink (so the full series
survives on disk) or dropped (plain ring semantics, newest windows
win).  Recording a sample is a dict lookup plus an addition — cheap
enough to sit behind the observer hooks on the simulation hot paths.

Three instrument kinds per window:

* **counter** (:meth:`~TimeSeriesCollector.inc`) — per-window sums
  (requests, hits, fetches, lease churn, ...);
* **gauge** (:meth:`~TimeSeriesCollector.set_gauge`) — the last sampled
  value in each window (queue depth, cache occupancy);
* **stat** (:meth:`~TimeSeriesCollector.observe`) — per-window
  count/sum/min/max of a sampled quantity (request latency).

Windows are identified by ``int(t // window_seconds)``; samples almost
always arrive in nondecreasing simulation time (the engine guarantees
it), but a late sample for an already-spilled window is clamped into
the oldest retained window rather than lost (the same no-drop
convention as :func:`repro.system.metrics.dense_clamped`).
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Tuple, Union


class Window:
    """One fixed-width window of folded samples."""

    __slots__ = ("index", "counters", "gauges", "stats")

    def __init__(self, index: int) -> None:
        self.index = index
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> [count, sum, min, max]
        self.stats: Dict[str, List[float]] = {}

    def as_dict(self, window_seconds: float) -> Dict[str, object]:
        """A JSON-serialisable record of this window."""
        out: Dict[str, object] = {
            "window": self.index,
            "start": self.index * window_seconds,
            "end": (self.index + 1) * window_seconds,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.gauges:
            out["gauges"] = dict(self.gauges)
        if self.stats:
            out["stats"] = {
                name: {"count": c, "sum": s, "min": lo, "max": hi}
                for name, (c, s, lo, hi) in self.stats.items()
            }
        return out


class TimeSeriesCollector:
    """Folds observer samples into fixed-width simulated-time windows."""

    def __init__(
        self,
        window_seconds: float = 3600.0,
        max_windows: int = 256,
        spill: Optional[Union[str, IO[str]]] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if max_windows < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        self.window_seconds = float(window_seconds)
        self.max_windows = int(max_windows)
        self._windows: List[Window] = []
        self._by_index: Dict[int, Window] = {}
        #: Windows that fell off the ring (spilled to the sink or dropped).
        self.spilled = 0
        #: Samples clamped into the oldest retained window because their
        #: own window had already been spilled.
        self.clamped = 0
        self._file: Optional[IO[str]] = None
        self._owns_file = False
        if isinstance(spill, str):
            self._file = open(spill, "w", encoding="utf-8")
            self._owns_file = True
        elif spill is not None:
            self._file = spill

    def __len__(self) -> int:
        return len(self._windows)

    # -- window management ---------------------------------------------------

    def _window_for(self, t: float) -> Window:
        index = int(t // self.window_seconds)
        window = self._by_index.get(index)
        if window is not None:
            return window
        if self._windows and index < self._windows[0].index:
            # The sample's window already left the ring: clamp into the
            # oldest retained one so no sample is silently dropped.
            self.clamped += 1
            return self._windows[0]
        window = Window(index)
        self._windows.append(window)
        self._by_index[index] = window
        while len(self._windows) > self.max_windows:
            old = self._windows.pop(0)
            del self._by_index[old.index]
            self.spilled += 1
            if self._file is not None:
                self._file.write(
                    json.dumps(old.as_dict(self.window_seconds),
                               separators=(",", ":"))
                    + "\n"
                )
        return window

    # -- recording -------------------------------------------------------------

    def inc(self, t: float, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` in ``t``'s window."""
        counters = self._window_for(t).counters
        counters[name] = counters.get(name, 0.0) + amount

    def set_gauge(self, t: float, name: str, value: float) -> None:
        """Record the latest value of gauge ``name`` in ``t``'s window."""
        self._window_for(t).gauges[name] = float(value)

    def observe(self, t: float, name: str, value: float) -> None:
        """Fold one sample into the window's count/sum/min/max stat."""
        stats = self._window_for(t).stats
        entry = stats.get(name)
        if entry is None:
            stats[name] = [1, float(value), float(value), float(value)]
            return
        entry[0] += 1
        entry[1] += value
        if value < entry[2]:
            entry[2] = value
        if value > entry[3]:
            entry[3] = value

    # -- access ------------------------------------------------------------------

    def windows(self) -> List[Dict[str, object]]:
        """The retained windows, oldest first, as plain dicts."""
        return [w.as_dict(self.window_seconds) for w in self._windows]

    def counter_series(self, name: str) -> List[Tuple[int, float]]:
        """``(window_index, value)`` pairs of one counter, oldest first."""
        return [
            (w.index, w.counters[name])
            for w in self._windows
            if name in w.counters
        ]

    def gauge_series(self, name: str) -> List[Tuple[int, float]]:
        """``(window_index, last value)`` pairs of one gauge."""
        return [
            (w.index, w.gauges[name]) for w in self._windows if name in w.gauges
        ]

    def dense_counter(self, name: str, window_count: int) -> List[float]:
        """Counter values for windows ``0..window_count-1``, zero-filled.

        Out-of-range windows clamp into the boundary buckets — the same
        no-drop convention as the result layer's hourly series, so a
        window series with ``window_seconds=3600`` is directly
        comparable to ``SimulationResult.hourly_*``.
        """
        if window_count <= 0:
            return []
        out = [0.0] * window_count
        last = window_count - 1
        for index, value in self.counter_series(name):
            out[min(max(index, 0), last)] += value
        return out

    def ratio_series(self, numerator: str, denominator: str) -> List[Tuple[int, float]]:
        """Per-window ``numerator/denominator`` (e.g. hit ratio).

        Windows where the denominator is absent or zero yield 0.0, so a
        quiet window reads as a flat spot, not a gap.
        """
        out = []
        for window in self._windows:
            denom = window.counters.get(denominator, 0.0)
            num = window.counters.get(numerator, 0.0)
            out.append((window.index, num / denom if denom else 0.0))
        return out

    def as_dict(self) -> Dict[str, object]:
        """The whole collector, JSON-serialisable."""
        return {
            "window_seconds": self.window_seconds,
            "max_windows": self.max_windows,
            "spilled": self.spilled,
            "clamped": self.clamped,
            "windows": self.windows(),
        }

    # -- output -----------------------------------------------------------------

    def write_jsonl(self, sink: Union[str, IO[str]]) -> int:
        """Write the retained windows to ``sink`` as one JSONL line each.

        Returns the number of lines written.  With a spill sink
        configured, older windows were already streamed there; this
        writes the live remainder (typically to a different file, or
        the same handle right before :meth:`close`).
        """
        owns = isinstance(sink, str)
        handle = open(sink, "w", encoding="utf-8") if owns else sink
        try:
            for window in self._windows:
                handle.write(
                    json.dumps(window.as_dict(self.window_seconds),
                               separators=(",", ":"))
                    + "\n"
                )
        finally:
            if owns:
                handle.close()
        return len(self._windows)

    def close(self) -> None:
        """Flush retained windows into the spill sink and close it."""
        if self._file is not None:
            self.write_jsonl(self._file)
            self._file.flush()
            if self._owns_file:
                self._file.close()
            self._file = None

    def __enter__(self) -> "TimeSeriesCollector":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_series_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a per-window JSONL series file back into window dicts."""
    windows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                windows.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: bad series line: {error}")
    return windows
