"""Structured, sim-time-stamped event tracing.

The tracer records one small dict per lifecycle event — the taxonomy
below covers a page's whole life from publication through placement,
requests, degradation and eviction, plus component fault transitions —
either into an in-memory ring buffer (the default; old events fall off
the front) or streamed to a JSONL sink so arbitrarily long runs stay
O(1) in memory.

Filters (`pages`, `proxies`, `types`) are applied at emit time, so a
trace restricted to one URL or one proxy stays tiny even on a large
run; that is what makes "replay the life of page 4711" workable.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, IO, Iterable, List, Optional, Union

#: The event taxonomy.  The simulator emits exactly these types; the
#: ``inspect`` subcommand and the docs table are keyed off this set.
EVENT_TYPES = frozenset(
    {
        # run framing
        "run_start",
        "run_end",
        # publish-side lifecycle
        "publish",
        "match",
        "push_offer",
        "push_accept",
        "push_reject",
        "push_suppressed",
        # request-side lifecycle
        "request",
        "hit",
        "stale",
        "miss",
        "fetch",
        "peer_fetch",
        # degradation
        "failover",
        "retry",
        "failed",
        # reliable delivery (push-path loss/retransmit/repair)
        "delivery_drop",
        "delivery_retransmit",
        "delivery_lost",
        "delivery_dup",
        "delivery_gap",
        "stale_served",
        "repair",
        # subscription lifecycle (leases, handshakes, re-polls)
        "subscribe",
        "unsubscribe",
        "lease_confirmed",
        "lease_renewed",
        "lease_expired",
        "handshake_lost",
        "repoll",
        # overload & backpressure
        "overload_shed",
        "overload_reject",
        "overload_stale",
        "retry_denied",
        # cache churn
        "evict",
        # component faults
        "crash",
        "restart",
        "outage",
        "outage_end",
    }
)


class EventTracer:
    """Collects trace events into a ring buffer and/or a JSONL sink."""

    def __init__(
        self,
        sink: Optional[Union[str, IO[str]]] = None,
        max_events: int = 100_000,
        pages: Optional[Iterable[int]] = None,
        proxies: Optional[Iterable[int]] = None,
        types: Optional[Iterable[str]] = None,
    ) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self._ring: deque = deque(maxlen=max_events) if max_events else None
        self._pages = frozenset(int(p) for p in pages) if pages is not None else None
        self._proxies = (
            frozenset(int(p) for p in proxies) if proxies is not None else None
        )
        if types is not None:
            unknown = set(types) - EVENT_TYPES
            if unknown:
                raise ValueError(f"unknown event types: {sorted(unknown)}")
            self._types = frozenset(types)
        else:
            self._types = None
        self._context: Dict[str, object] = {}
        self._file: Optional[IO[str]] = None
        self._owns_file = False
        if isinstance(sink, str):
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        elif sink is not None:
            self._file = sink
        self.dropped = 0  #: events rejected by a filter

    # -- context -----------------------------------------------------------

    def bind(self, **context) -> None:
        """Merge fields into every subsequent event (e.g. strategy)."""
        for key, value in context.items():
            if value is None:
                self._context.pop(key, None)
            else:
                self._context[key] = value

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        type: str,
        t: float,
        page: Optional[int] = None,
        proxy: Optional[int] = None,
        **fields,
    ) -> None:
        """Record one event; silently filtered if it fails a filter.

        Run-framing events (``run_start``/``run_end``) bypass the
        page/proxy/type filters so every trace stays self-describing.
        """
        framing = type == "run_start" or type == "run_end"
        if not framing:
            if self._types is not None and type not in self._types:
                self.dropped += 1
                return
            if self._pages is not None and (page is None or page not in self._pages):
                self.dropped += 1
                return
            if self._proxies is not None and (
                proxy is None or proxy not in self._proxies
            ):
                self.dropped += 1
                return
        event: Dict[str, object] = {"t": t, "type": type}
        if page is not None:
            event["page"] = page
        if proxy is not None:
            event["proxy"] = proxy
        if self._context:
            event.update(self._context)
        if fields:
            event.update(fields)
        if self._ring is not None:
            self._ring.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event, separators=(",", ":")) + "\n")

    # -- access ------------------------------------------------------------

    def events(self) -> List[Dict[str, object]]:
        """The ring buffer's current contents, oldest first."""
        return list(self._ring) if self._ring is not None else []

    def events_for_page(self, page_id: int) -> List[Dict[str, object]]:
        """Replay one page's buffered life, in event order."""
        return [e for e in self.events() if e.get("page") == page_id]

    def close(self) -> None:
        """Flush and (if the tracer opened it) close the JSONL sink."""
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
            self._file = None

    def __enter__(self) -> "EventTracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: bad trace line: {error}")
    return events
