"""The :class:`Observer` facade the simulator talks to.

One object bundles the observability concerns — a
:class:`~repro.obs.registry.MetricsRegistry`, an
:class:`~repro.obs.tracer.EventTracer`, a
:class:`~repro.obs.profile.Profiler`, a
:class:`~repro.obs.timeseries.TimeSeriesCollector` and a
:class:`~repro.obs.monitor.RunMonitor` — behind semantic hooks
(``publish``, ``request_outcome``, ``evict``, ``crash`` ...) so the
simulator never builds event dicts or picks metric names itself.
Every part is optional: an Observer with only a tracer traces, one
with only a registry counts, one with only a time-series collector
produces per-window trajectories.

:data:`NULL_OBSERVER` is the module-level default.  Its ``enabled``
flag is ``False`` and the simulator guards every hook call behind that
flag, so an unobserved run pays one boolean test per handled event and
stays bit-identical to the pre-observability behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.monitor import RunMonitor
from repro.obs.profile import NULL_SPAN, Profiler
from repro.obs.registry import Gauge, MetricsRegistry
from repro.obs.timeseries import TimeSeriesCollector
from repro.obs.tracer import EventTracer


class Observer:
    """Routes simulator lifecycle hooks to the attached components."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        profiler: Optional[Profiler] = None,
        timeseries: Optional[TimeSeriesCollector] = None,
        monitor: Optional[RunMonitor] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.profiler = profiler
        self.timeseries = timeseries
        self.monitor = monitor
        #: Running total of bytes held across caches, maintained from
        #: cache_op sizes so the time-series occupancy gauge is exact.
        self._cache_bytes = 0
        self._g_queues: Dict[str, Gauge] = {}
        if registry is not None:
            c = registry.counter
            self._c_publish = c("repro_publishes_total", "pages published")
            self._c_match = c("repro_matches_total", "per-proxy subscription matches")
            self._c_offer = c("repro_push_offers_total", "push-time placement offers")
            self._c_accept = c("repro_push_accepts_total", "push offers stored")
            self._c_reject = c("repro_push_rejects_total", "push offers declined")
            self._c_suppressed = c(
                "repro_pushes_suppressed_total", "pushes skipped: endpoint down"
            )
            self._c_request = c("repro_requests_total", "user requests")
            self._c_hit = c("repro_hits_total", "fresh local hits")
            self._c_stale = c("repro_stale_hits_total", "stale-version misses")
            self._c_miss = c("repro_misses_total", "cold misses")
            self._c_fetch = c("repro_fetches_total", "origin demand fetches")
            self._c_peer = c("repro_peer_fetches_total", "misses served by a peer")
            self._c_failover = c("repro_failovers_total", "failover hops taken")
            self._c_retry = c("repro_retries_total", "origin retry attempts")
            self._c_failed = c("repro_failed_requests_total", "requests never served")
            self._c_drop = c(
                "repro_notification_drops_total", "notification sends lost"
            )
            self._c_retransmit = c(
                "repro_notification_retransmits_total", "notification retransmissions"
            )
            self._c_lost = c(
                "repro_notifications_lost_total", "notifications permanently lost"
            )
            self._c_dup = c(
                "repro_duplicate_notifications_total", "duplicate deliveries suppressed"
            )
            self._c_gap = c(
                "repro_delivery_gaps_total", "sequence gaps detected at proxies"
            )
            self._c_stale_served = c(
                "repro_stale_served_total", "silently stale pages served"
            )
            self._c_repair = c(
                "repro_repair_fetches_total", "access-time staleness repairs"
            )
            self._c_lease_sub = c(
                "repro_lease_subscribes_total", "leases granted (subscribes)"
            )
            self._c_lease_renew = c(
                "repro_lease_renewals_total", "in-time lease renewals"
            )
            self._c_lease_unsub = c(
                "repro_lease_unsubscribes_total", "explicit unsubscribes"
            )
            self._c_lease_confirm = c(
                "repro_lease_confirms_total", "handshake confirmations resolved"
            )
            self._c_lease_expire = c(
                "repro_lease_expiries_total", "leases noticed lapsed"
            )
            self._c_handshake_lost = c(
                "repro_handshakes_lost_total", "confirmation handshakes abandoned"
            )
            self._c_repoll = c(
                "repro_repolls_total", "access-time lease re-poll repairs"
            )
            self._c_ov_shed = c(
                "repro_overload_sheds_total", "pushes shed at full service queues"
            )
            self._c_ov_reject = c(
                "repro_overload_rejections_total",
                "pulls rejected at full service queues",
            )
            self._c_ov_stale = c(
                "repro_overload_stale_served_total",
                "stale copies served while the origin gate refused fetches",
            )
            self._c_retry_denied = c(
                "repro_retries_denied_total", "retries refused by the retry budget"
            )
            self._c_evict = c("repro_evictions_total", "cache evictions")
            self._c_evict_bytes = c("repro_evicted_bytes_total", "bytes evicted")
            self._c_crash = c("repro_proxy_crashes_total", "proxy crash events")
            self._c_restart = c("repro_proxy_restarts_total", "proxy restarts")
            self._c_outage = c("repro_publisher_outages_total", "origin outages")
            self._c_cache_add = c(
                "repro_cache_insertions_total", "entries inserted into any cache"
            )
            self._c_cache_remove = c(
                "repro_cache_removals_total", "entries removed from any cache"
            )
            self._g_sim_time = registry.gauge(
                "repro_sim_time_seconds", "virtual clock at run end"
            )
            self._g_cache_used = registry.gauge(
                "repro_cache_used_bytes", "bytes cached across proxies at run end"
            )
            self._h_latency = registry.histogram(
                "repro_request_latency_seconds", "modelled per-request response time"
            )

    # -- run framing --------------------------------------------------------

    def run_start(self, **context) -> None:
        """A simulation run begins; ``context`` tags every trace event."""
        if self.tracer is not None:
            self.tracer.bind(**context)
            self.tracer.emit("run_start", 0.0, **context)
        if self.monitor is not None:
            self.monitor.start()

    def run_end(self, t: float, cache_used_bytes: Optional[int] = None) -> None:
        if self.registry is not None:
            self._g_sim_time.set(t)
            if cache_used_bytes is not None:
                self._g_cache_used.set(cache_used_bytes)
        if self.tracer is not None:
            self.tracer.emit("run_end", t)
        if self.monitor is not None:
            self.monitor.finish(t)

    # -- publish-side lifecycle ---------------------------------------------

    def publish(self, t: float, page: int, version: int, size: int) -> None:
        if self.registry is not None:
            self._c_publish.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "publishes")
        if self.tracer is not None:
            self.tracer.emit("publish", t, page=page, version=version, size=size)

    def match(self, t: float, page: int, proxy: int, match_count: int) -> None:
        if self.registry is not None:
            self._c_match.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "matches")
        if self.tracer is not None:
            self.tracer.emit("match", t, page=page, proxy=proxy, matches=match_count)

    def push_offer(self, t: float, page: int, proxy: int) -> None:
        if self.registry is not None:
            self._c_offer.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "push_offers")
        if self.tracer is not None:
            self.tracer.emit("push_offer", t, page=page, proxy=proxy)

    def push_accept(self, t: float, page: int, proxy: int, refreshed: bool) -> None:
        if self.registry is not None:
            self._c_accept.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "push_accepts")
        if self.tracer is not None:
            self.tracer.emit(
                "push_accept", t, page=page, proxy=proxy, refreshed=refreshed
            )

    def push_reject(self, t: float, page: int, proxy: int) -> None:
        if self.registry is not None:
            self._c_reject.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "push_rejects")
        if self.tracer is not None:
            self.tracer.emit("push_reject", t, page=page, proxy=proxy)

    def push_suppressed(self, t: float, page: int, proxy: int, reason: str) -> None:
        if self.registry is not None:
            self._c_suppressed.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "pushes_suppressed")
        if self.tracer is not None:
            self.tracer.emit(
                "push_suppressed", t, page=page, proxy=proxy, reason=reason
            )

    # -- request-side lifecycle ----------------------------------------------

    def request(self, t: float, page: int, proxy: int) -> None:
        if self.registry is not None:
            self._c_request.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "requests")
        if self.tracer is not None:
            self.tracer.emit("request", t, page=page, proxy=proxy)

    def request_outcome(
        self, t: float, page: int, proxy: int, kind: str, latency: float
    ) -> None:
        """``kind`` is ``"hit"``, ``"stale"`` or ``"miss"``."""
        if self.registry is not None:
            if kind == "hit":
                self._c_hit.inc()
            elif kind == "stale":
                self._c_stale.inc()
            else:
                self._c_miss.inc()
            self._h_latency.observe(latency)
        if self.timeseries is not None:
            if kind == "hit":
                self.timeseries.inc(t, "hits")
            elif kind == "stale":
                self.timeseries.inc(t, "stale_hits")
            else:
                self.timeseries.inc(t, "misses")
            self.timeseries.observe(t, "latency", latency)
        if self.tracer is not None:
            self.tracer.emit(kind, t, page=page, proxy=proxy, latency=latency)

    def fetch(self, t: float, page: int, proxy: int, source: str = "origin") -> None:
        if self.registry is not None:
            if source == "origin":
                self._c_fetch.inc()
            else:
                self._c_peer.inc()
        if self.timeseries is not None:
            self.timeseries.inc(
                t, "origin_fetches" if source == "origin" else "peer_fetches"
            )
        if self.tracer is not None:
            kind = "fetch" if source == "origin" else "peer_fetch"
            self.tracer.emit(kind, t, page=page, proxy=proxy, source=source)

    # -- degradation ---------------------------------------------------------

    def failover(
        self, t: float, proxy: int, page: int, target: str, reason: str
    ) -> None:
        if self.registry is not None:
            self._c_failover.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "failovers")
        if self.tracer is not None:
            self.tracer.emit(
                "failover", t, page=page, proxy=proxy, target=target, reason=reason
            )

    def retry(
        self, t: float, page: int, proxy: int, attempt: int, backoff: float
    ) -> None:
        if self.registry is not None:
            self._c_retry.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "retries")
        if self.tracer is not None:
            self.tracer.emit(
                "retry", t, page=page, proxy=proxy, attempt=attempt, backoff=backoff
            )

    def failed(self, t: float, page: int, proxy: int) -> None:
        if self.registry is not None:
            self._c_failed.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "failed_requests")
        if self.tracer is not None:
            self.tracer.emit("failed", t, page=page, proxy=proxy)

    # -- reliable delivery ----------------------------------------------------

    def notification_sent(self, t: float, page: int, proxy: int) -> None:
        """A notification left the delivery layer toward ``proxy``.

        Time-series only: the registry already derives send totals from
        offers/drops, but the per-window delivery *ratio* needs an
        explicit sent series to divide by.
        """
        if self.timeseries is not None:
            self.timeseries.inc(t, "notifications_sent")

    def notification_delivered(self, t: float, page: int, proxy: int) -> None:
        """A notification arrived at ``proxy`` (time-series only)."""
        if self.timeseries is not None:
            self.timeseries.inc(t, "notifications_delivered")

    def delivery_drop(self, t: float, page: int, proxy: int, reason: str) -> None:
        """One notification send was lost (it may still be retransmitted)."""
        if self.registry is not None:
            self._c_drop.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "delivery_drops")
        if self.tracer is not None:
            self.tracer.emit(
                "delivery_drop", t, page=page, proxy=proxy, reason=reason
            )

    def delivery_retransmit(
        self, t: float, page: int, proxy: int, attempts: int
    ) -> None:
        """A notification needed ``attempts - 1`` retransmissions."""
        if self.registry is not None:
            self._c_retransmit.inc(attempts - 1)
        if self.timeseries is not None:
            self.timeseries.inc(t, "delivery_retransmits", attempts - 1)
        if self.tracer is not None:
            self.tracer.emit(
                "delivery_retransmit", t, page=page, proxy=proxy, attempts=attempts
            )

    def delivery_lost(self, t: float, page: int, proxy: int, reason: str) -> None:
        """A notification was abandoned: the proxy will stay stale until
        repair."""
        if self.registry is not None:
            self._c_lost.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "delivery_lost")
        if self.tracer is not None:
            self.tracer.emit(
                "delivery_lost", t, page=page, proxy=proxy, reason=reason
            )

    def delivery_dup(self, t: float, page: int, proxy: int) -> None:
        if self.registry is not None:
            self._c_dup.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "delivery_dups")
        if self.tracer is not None:
            self.tracer.emit("delivery_dup", t, page=page, proxy=proxy)

    def delivery_gap(self, t: float, page: int, proxy: int, sequence: int) -> None:
        if self.registry is not None:
            self._c_gap.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "delivery_gaps")
        if self.tracer is not None:
            self.tracer.emit(
                "delivery_gap", t, page=page, proxy=proxy, sequence=sequence
            )

    def stale_served(self, t: float, page: int, proxy: int, age: float) -> None:
        """A silently stale page was served as if fresh (no repair)."""
        if self.registry is not None:
            self._c_stale_served.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "stale_served")
        if self.tracer is not None:
            self.tracer.emit("stale_served", t, page=page, proxy=proxy, age=age)

    def repair(self, t: float, page: int, proxy: int, age: float) -> None:
        """Access-time validation caught a missed push; origin repair."""
        if self.registry is not None:
            self._c_repair.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "repairs")
        if self.tracer is not None:
            self.tracer.emit("repair", t, page=page, proxy=proxy, age=age)

    # -- subscription lifecycle -------------------------------------------------

    def lease_subscribe(self, t: float, page: int, proxy: int, lease: float) -> None:
        """A (re-)subscribe granted a fresh lease of ``lease`` seconds."""
        if self.registry is not None:
            self._c_lease_sub.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "lease_subscribes")
        if self.tracer is not None:
            self.tracer.emit("subscribe", t, page=page, proxy=proxy, lease=lease)

    def lease_renewed(self, t: float, page: int, proxy: int, lease: float) -> None:
        if self.registry is not None:
            self._c_lease_renew.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "lease_renewals")
        if self.tracer is not None:
            self.tracer.emit("lease_renewed", t, page=page, proxy=proxy, lease=lease)

    def lease_unsubscribe(self, t: float, page: int, proxy: int) -> None:
        if self.registry is not None:
            self._c_lease_unsub.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "lease_unsubscribes")
        if self.tracer is not None:
            self.tracer.emit("unsubscribe", t, page=page, proxy=proxy)

    def lease_confirmed(
        self, t: float, page: int, proxy: int, latency: float
    ) -> None:
        """The confirmation handshake resolved ``latency`` seconds after
        the subscribe/renew message (0 on a lossless handshake)."""
        if self.registry is not None:
            self._c_lease_confirm.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "lease_confirms")
        if self.tracer is not None:
            self.tracer.emit(
                "lease_confirmed", t, page=page, proxy=proxy, latency=latency
            )

    def lease_expired(self, t: float, page: int, proxy: int, where: str) -> None:
        """A lapsed lease was noticed (lazily) at ``where``: publish,
        access, event intake, or end-of-run accounting."""
        if self.registry is not None:
            self._c_lease_expire.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "lease_expiries")
        if self.tracer is not None:
            self.tracer.emit("lease_expired", t, page=page, proxy=proxy, where=where)

    def handshake_lost(self, t: float, page: int, proxy: int, attempts: int) -> None:
        """Every confirmation attempt was lost (or the retry queue shed
        the handshake); the lease is stuck PENDING until re-poll."""
        if self.registry is not None:
            self._c_handshake_lost.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "handshakes_lost")
        if self.tracer is not None:
            self.tracer.emit(
                "handshake_lost", t, page=page, proxy=proxy, attempts=attempts
            )

    def repoll(self, t: float, page: int, proxy: int, reason: str) -> None:
        """An access re-polled the hub and repaired a dead lease."""
        if self.registry is not None:
            self._c_repoll.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "repolls")
        if self.tracer is not None:
            self.tracer.emit("repoll", t, page=page, proxy=proxy, reason=reason)

    # -- overload & backpressure -------------------------------------------------

    def overload_shed(self, t: float, page: int, proxy: int, kind: str) -> None:
        """A push was shed at ``proxy``'s full service queue.

        ``kind`` names the shed work class (currently always
        ``"push"`` — subscribed-push deliveries shed first under the
        priority order).  The dropped copy is healed later by
        access-time staleness repair.
        """
        if self.registry is not None:
            self._c_ov_shed.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "overload_sheds")
        if self.tracer is not None:
            self.tracer.emit("overload_shed", t, page=page, proxy=proxy, kind=kind)

    def overload_reject(self, t: float, page: int, proxy: int) -> None:
        """A pull was rejected at ``proxy``'s full service queue."""
        if self.registry is not None:
            self._c_ov_reject.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "overload_rejections")
        if self.tracer is not None:
            self.tracer.emit("overload_reject", t, page=page, proxy=proxy)

    def overload_stale(self, t: float, page: int, proxy: int) -> None:
        """Degraded mode served a cached stale copy: the origin gate
        (token bucket + circuit breaker) refused the fetch."""
        if self.registry is not None:
            self._c_ov_stale.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "overload_stale_served")
        if self.tracer is not None:
            self.tracer.emit("overload_stale", t, page=page, proxy=proxy)

    def retry_denied(self, t: float, page: int, proxy: int, attempt: int) -> None:
        """The global retry budget refused retry ``attempt``."""
        if self.registry is not None:
            self._c_retry_denied.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "retries_denied")
        if self.tracer is not None:
            self.tracer.emit(
                "retry_denied", t, page=page, proxy=proxy, attempt=attempt
            )

    # -- queue telemetry ---------------------------------------------------------

    def queue_depth(self, t: float, name: str, depth: int) -> None:
        """Sample the depth of a named internal queue (retransmit
        backlog, handshake retry queue, ...).  Gauge-only: no trace
        event, so sampling is cheap enough to do per intake."""
        if self.registry is not None:
            gauge = self._g_queues.get(name)
            if gauge is None:
                gauge = self.registry.gauge(
                    f"repro_{name}_queue_depth", f"{name} queue backlog"
                )
                self._g_queues[name] = gauge
            gauge.set(depth)
        if self.timeseries is not None:
            self.timeseries.set_gauge(t, f"{name}_queue_depth", depth)

    # -- cache churn -----------------------------------------------------------

    def evict(self, t: float, page: int, proxy: int, size: int, cause: str) -> None:
        if self.registry is not None:
            self._c_evict.inc()
            self._c_evict_bytes.inc(size)
        if self.timeseries is not None:
            self.timeseries.inc(t, "evictions")
            self.timeseries.inc(t, "evicted_bytes", size)
        if self.tracer is not None:
            self.tracer.emit("evict", t, page=page, proxy=proxy, size=size, cause=cause)

    def cache_op(self, op: str, size: int = 0, t: float = 0.0) -> None:
        """Raw storage add/remove, wired via the CacheStorage listener."""
        if self.registry is not None:
            if op == "add":
                self._c_cache_add.inc()
            else:
                self._c_cache_remove.inc()
        if self.timeseries is not None:
            if op == "add":
                self._cache_bytes += size
                self.timeseries.inc(t, "cache_insertions")
            else:
                self._cache_bytes -= size
                self.timeseries.inc(t, "cache_removals")
            self.timeseries.set_gauge(t, "cache_used_bytes", self._cache_bytes)

    # -- component faults ------------------------------------------------------

    def crash(self, t: float, proxy: int) -> None:
        if self.registry is not None:
            self._c_crash.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "crashes")
        if self.tracer is not None:
            self.tracer.emit("crash", t, proxy=proxy)

    def restart(self, t: float, proxy: int) -> None:
        if self.registry is not None:
            self._c_restart.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "restarts")
        if self.tracer is not None:
            self.tracer.emit("restart", t, proxy=proxy)

    def outage(self, t: float) -> None:
        if self.registry is not None:
            self._c_outage.inc()
        if self.timeseries is not None:
            self.timeseries.inc(t, "outages")
        if self.tracer is not None:
            self.tracer.emit("outage", t)

    def outage_end(self, t: float) -> None:
        if self.timeseries is not None:
            self.timeseries.inc(t, "outage_ends")
        if self.tracer is not None:
            self.tracer.emit("outage_end", t)

    # -- profiling --------------------------------------------------------------

    def span(self, name: str):
        """A timing span, or a no-op when no profiler is attached."""
        if self.profiler is None:
            return NULL_SPAN
        return self.profiler.span(name)

    def close(self) -> None:
        """Flush/close every attached sink (idempotent)."""
        if self.tracer is not None:
            self.tracer.close()
        if self.timeseries is not None:
            self.timeseries.close()
        if self.monitor is not None:
            self.monitor.close()


class NullObserver(Observer):
    """The disabled default: every hook is a no-op.

    The simulator additionally guards hook calls behind ``enabled``, so
    with this observer the only per-event cost is that boolean test.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str):
        return NULL_SPAN


#: Shared module-level no-op recorder; the default for every run.
NULL_OBSERVER = NullObserver()


def build_observer(
    trace_out: Optional[str] = None,
    metrics: bool = False,
    profile: bool = False,
    trace_pages=None,
    trace_proxies=None,
    max_events: int = 100_000,
    series: bool = False,
    series_out: Optional[str] = None,
    series_window: float = 3600.0,
    series_max_windows: int = 256,
    monitor: Optional[float] = None,
    monitor_out: Optional[str] = None,
) -> Optional[Observer]:
    """Assemble an Observer from CLI-ish flags; None if nothing is on."""
    tracer = None
    if trace_out is not None:
        tracer = EventTracer(
            sink=trace_out,
            max_events=0,
            pages=trace_pages,
            proxies=trace_proxies,
        )
    registry = MetricsRegistry() if metrics else None
    profiler = Profiler() if profile else None
    timeseries = None
    if series or series_out is not None:
        timeseries = TimeSeriesCollector(
            window_seconds=series_window,
            max_windows=series_max_windows,
            spill=series_out,
        )
    run_monitor = None
    if monitor is not None or monitor_out is not None:
        run_monitor = RunMonitor(
            interval=monitor if monitor is not None else 5.0,
            sink=monitor_out,
        )
    if (
        tracer is None
        and registry is None
        and profiler is None
        and timeseries is None
        and run_monitor is None
    ):
        return None
    return Observer(
        registry=registry,
        tracer=tracer,
        profiler=profiler,
        timeseries=timeseries,
        monitor=run_monitor,
    )
