"""Live run monitor: periodic heartbeats while a simulation runs.

Long runs (the ROADMAP's million-subscriber north star replays tens of
millions of events) are a black box today: the process goes quiet for
minutes and the only signal is the final summary line.  `RunMonitor`
emits a heartbeat every ``interval`` wall-clock seconds with the four
things an operator actually wants to know:

* **throughput** — events dispatched and events/sec since start;
* **progress** — simulated time against the workload horizon, plus an
  ETA extrapolated from the wall-clock rate so far;
* **memory** — resident set size (``/proc/self/statm`` when available,
  ``resource.getrusage`` otherwise);
* **cache occupancy** — total bytes held across proxy caches, via a
  probe callable installed by the simulator.

Heartbeats go to stderr as single human-readable lines by default, or
to a JSONL sink (path or file object) for machine consumption.

The engine calls :meth:`tick` once per dispatched event, so the hot
path must stay trivial: a counter decrement and compare; only every
``check_every`` events does the monitor look at the wall clock, and
only when ``interval`` has elapsed does it format anything.  The
monitor reads simulation state and never touches RNG streams, so runs
are bit-identical with or without it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, IO, Optional, Union


def rss_bytes() -> Optional[int]:
    """Current resident set size in bytes, or None if unmeasurable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        # ru_maxrss is kilobytes on Linux (peak, not current — still a
        # useful upper bound where /proc is unavailable).
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


def _fmt_bytes(n: Optional[float]) -> str:
    if n is None:
        return "?"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"


def _fmt_seconds(s: Optional[float]) -> str:
    if s is None:
        return "?"
    s = max(0.0, float(s))
    if s < 60:
        return f"{s:.0f}s"
    if s < 3600:
        return f"{int(s // 60)}m{int(s % 60):02d}s"
    return f"{int(s // 3600)}h{int(s % 3600) // 60:02d}m"


class RunMonitor:
    """Emits periodic progress heartbeats during a simulation run."""

    def __init__(
        self,
        interval: float = 5.0,
        sink: Optional[Union[str, IO[str]]] = None,
        check_every: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.interval = float(interval)
        self.check_every = int(check_every)
        self._clock = clock
        self._file: Optional[IO[str]] = None
        self._owns_file = False
        self._jsonl = sink is not None
        if isinstance(sink, str):
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        elif sink is not None:
            self._file = sink
        self.horizon: Optional[float] = None
        self.cache_probe: Optional[Callable[[], int]] = None
        self.events = 0
        self.heartbeat_count = 0
        self.last: Optional[Dict[str, object]] = None
        self._countdown = self.check_every
        self._started: Optional[float] = None
        self._last_emit = 0.0

    def configure(
        self,
        horizon: Optional[float] = None,
        cache_probe: Optional[Callable[[], int]] = None,
    ) -> None:
        """Install run-specific context (called by the simulator)."""
        if horizon is not None:
            self.horizon = float(horizon)
        if cache_probe is not None:
            self.cache_probe = cache_probe

    def start(self) -> None:
        """Mark the wall-clock start of the run."""
        self._started = self._clock()
        self._last_emit = self._started
        self.events = 0
        self._countdown = self.check_every

    # -- hot path ------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Account one dispatched event at simulated time ``now``.

        Called once per event by the engine; everything beyond the
        countdown decrement is amortised over ``check_every`` events.
        """
        self.events += 1
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.check_every
        wall = self._clock()
        if wall - self._last_emit >= self.interval:
            self._emit(now, wall, final=False)

    # -- emission -------------------------------------------------------------

    def _emit(self, now: float, wall: float, final: bool) -> None:
        if self._started is None:
            self._started = wall
        elapsed = wall - self._started
        rate = self.events / elapsed if elapsed > 0 else None
        progress = None
        eta = None
        if self.horizon and self.horizon > 0:
            progress = min(1.0, now / self.horizon)
            if progress > 0 and elapsed > 0 and not final:
                eta = elapsed * (1.0 - progress) / progress
        beat: Dict[str, object] = {
            "wall_elapsed": round(elapsed, 3),
            "sim_time": now,
            "progress": round(progress, 4) if progress is not None else None,
            "eta_seconds": round(eta, 1) if eta is not None else None,
            "events": self.events,
            "events_per_sec": round(rate, 1) if rate is not None else None,
            "rss_bytes": rss_bytes(),
            "cache_used_bytes": self.cache_probe() if self.cache_probe else None,
            "final": final,
        }
        self.last = beat
        self.heartbeat_count += 1
        self._last_emit = wall
        if self._file is not None:
            self._file.write(json.dumps(beat, separators=(",", ":")) + "\n")
            self._file.flush()
        if not self._jsonl:
            self._write_text(beat)

    def _write_text(self, beat: Dict[str, object]) -> None:
        progress = beat["progress"]
        pct = f" ({progress * 100:.1f}%)" if progress is not None else ""
        horizon = f"/{self.horizon:g}" if self.horizon else ""
        eta = beat["eta_seconds"]
        eta_part = f" eta={_fmt_seconds(eta)}" if eta is not None else ""
        rate = beat["events_per_sec"]
        rate_part = f" ({rate:,.0f} ev/s)" if rate is not None else ""
        cache = beat["cache_used_bytes"]
        cache_part = f" cache={_fmt_bytes(cache)}" if cache is not None else ""
        tag = "done" if beat["final"] else "run"
        sys.stderr.write(
            f"[monitor {tag}] t={beat['sim_time']:g}{horizon}{pct}{eta_part}"
            f" events={beat['events']}{rate_part}"
            f" rss={_fmt_bytes(beat['rss_bytes'])}{cache_part}\n"
        )

    # -- teardown --------------------------------------------------------------

    def finish(self, now: float) -> None:
        """Emit the final heartbeat (end of run)."""
        self._emit(now, self._clock(), final=True)

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self._owns_file:
                self._file.close()
            self._file = None
