"""Waxman random topology (BRITE's default router-level model).

Nodes are placed uniformly at random on an ``plane_size`` x ``plane_size``
plane; each candidate edge (u, v) exists with probability::

    P(u, v) = alpha * exp(-d(u, v) / (beta * L))

where ``d`` is the Euclidean distance and ``L`` the maximum possible
distance (the plane diagonal).  BRITE's defaults are alpha = 0.15 and
beta = 0.2 with incremental node joining (each new node connects to
``m`` existing nodes chosen by the Waxman probability); that is the
variant implemented here, which also guarantees connectivity.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.graph import Graph


def waxman_graph(
    node_count: int,
    rng: np.random.Generator,
    alpha: float = 0.15,
    beta: float = 0.2,
    links_per_node: int = 2,
    plane_size: float = 1000.0,
) -> Graph:
    """Generate a connected Waxman graph with BRITE-style incremental growth.

    Args:
        node_count: number of nodes (>= 1).
        rng: the random stream to draw from.
        alpha: Waxman edge-probability scale (0 < alpha <= 1).
        beta: Waxman distance decay (larger => longer edges likelier).
        links_per_node: edges added per joining node (BRITE's ``m``).
        plane_size: side of the placement square.

    Returns:
        A connected :class:`Graph` whose edge weights are Euclidean
        distances and whose ``positions`` carry node coordinates.
    """
    if node_count < 1:
        raise ValueError(f"node_count must be >= 1, got {node_count}")
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    if links_per_node < 1:
        raise ValueError(f"links_per_node must be >= 1, got {links_per_node}")

    graph = Graph()
    coordinates = rng.uniform(0.0, plane_size, size=(node_count, 2))
    max_distance = plane_size * math.sqrt(2.0)

    for node in range(node_count):
        graph.add_node(node)
        graph.positions[node] = (float(coordinates[node, 0]), float(coordinates[node, 1]))
        if node == 0:
            continue
        # Waxman probability against every already-placed node.
        existing = coordinates[:node]
        deltas = existing - coordinates[node]
        distances = np.hypot(deltas[:, 0], deltas[:, 1])
        probabilities = alpha * np.exp(-distances / (beta * max_distance))
        total = float(probabilities.sum())
        picks = min(links_per_node, node)
        if total <= 0.0:
            chosen = rng.choice(node, size=picks, replace=False)
        else:
            chosen = rng.choice(
                node, size=picks, replace=False, p=probabilities / total
            )
        for neighbor in np.atleast_1d(chosen):
            graph.add_edge(node, int(neighbor), float(distances[int(neighbor)]))
    return graph
