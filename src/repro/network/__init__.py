"""Network topology substrate.

The paper places proxy servers and the publisher on a random graph
generated with BRITE and uses the network distance from each proxy to
the publisher as the fetch cost ``c(p)`` in the replacement policies
(§3.1, following Cao & Irani).  BRITE is a C++/Java tool; this package
reimplements its two classic router-level models in pure Python:

* :func:`~repro.network.waxman.waxman_graph` — the Waxman probabilistic
  model (BRITE's default), and
* :func:`~repro.network.barabasi.barabasi_albert_graph` — incremental
  preferential attachment.

:class:`~repro.network.topology.Topology` wraps a generated graph,
designates a publisher node, assigns proxies to nodes and exposes the
hop-count (or weighted) distance from every proxy to the publisher.
"""

from repro.network.graph import Graph
from repro.network.waxman import waxman_graph
from repro.network.barabasi import barabasi_albert_graph
from repro.network.topology import Topology, build_topology

__all__ = [
    "Graph",
    "waxman_graph",
    "barabasi_albert_graph",
    "Topology",
    "build_topology",
]
