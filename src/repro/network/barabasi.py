"""Barabási–Albert preferential-attachment topology.

BRITE's second router-level model: nodes join one at a time and attach
to ``links_per_node`` existing nodes with probability proportional to
the targets' current degree, producing the heavy-tailed degree
distributions observed in the Internet AS graph.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.network.graph import Graph


def barabasi_albert_graph(
    node_count: int,
    rng: np.random.Generator,
    links_per_node: int = 2,
    plane_size: float = 1000.0,
) -> Graph:
    """Generate a connected Barabási–Albert graph.

    Args:
        node_count: number of nodes (must exceed ``links_per_node``).
        rng: the random stream to draw from.
        links_per_node: edges added by each joining node.
        plane_size: side of the square used for cosmetic coordinates.

    Returns:
        A connected :class:`Graph`; edge weights are 1 (the model is
        topological, not geometric) and positions are random, carried
        only for plotting parity with the Waxman generator.
    """
    if links_per_node < 1:
        raise ValueError(f"links_per_node must be >= 1, got {links_per_node}")
    if node_count <= links_per_node:
        raise ValueError(
            f"node_count must exceed links_per_node "
            f"({node_count} <= {links_per_node})"
        )

    graph = Graph()
    coordinates = rng.uniform(0.0, plane_size, size=(node_count, 2))
    for node in range(node_count):
        graph.add_node(node)
        graph.positions[node] = (float(coordinates[node, 0]), float(coordinates[node, 1]))

    # Seed clique over the first links_per_node + 1 nodes.
    seed_size = links_per_node + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v, 1.0)

    # repeated_nodes holds one entry per edge endpoint => sampling from it
    # uniformly is sampling proportionally to degree.
    repeated_nodes: List[int] = []
    for u in range(seed_size):
        repeated_nodes.extend([u] * graph.degree(u))

    for node in range(seed_size, node_count):
        targets: set = set()
        while len(targets) < links_per_node:
            candidate = repeated_nodes[int(rng.integers(len(repeated_nodes)))]
            targets.add(candidate)
        for target in sorted(targets):
            graph.add_edge(node, target, 1.0)
            repeated_nodes.append(target)
        repeated_nodes.extend([node] * links_per_node)
    return graph
