"""Publisher/proxy placement on a generated topology.

The replacement policies need a single number per proxy: the network
distance to the origin publisher, used as the fetch cost ``c(p)`` for
every page served from that proxy (§3.1).  :class:`Topology` computes
and caches those distances.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.network.graph import Graph
from repro.network.waxman import waxman_graph
from repro.network.barabasi import barabasi_albert_graph


class Topology:
    """A graph with a designated publisher and a set of proxy nodes."""

    def __init__(self, graph: Graph, publisher_node: int, proxy_nodes: Sequence[int]) -> None:
        if publisher_node not in set(graph.nodes()):
            raise ValueError(f"publisher node {publisher_node} not in graph")
        missing = [node for node in proxy_nodes if node not in set(graph.nodes())]
        if missing:
            raise ValueError(f"proxy nodes not in graph: {missing}")
        self.graph = graph
        self.publisher_node = int(publisher_node)
        self.proxy_nodes: List[int] = [int(node) for node in proxy_nodes]
        distances = graph.shortest_paths_from(self.publisher_node, weighted=False)
        unreachable = [node for node in self.proxy_nodes if node not in distances]
        if unreachable:
            raise ValueError(f"proxies unreachable from publisher: {unreachable}")
        self._hops: Dict[int, float] = {
            node: distances[node] for node in self.proxy_nodes
        }

    @property
    def proxy_count(self) -> int:
        return len(self.proxy_nodes)

    def fetch_cost(self, proxy_index: int) -> float:
        """Hop distance from proxy ``proxy_index`` to the publisher.

        A co-located proxy would have distance 0, which would zero out
        every page value; following Cao & Irani we count the final hop
        to the origin server, so the cost is at least 1.
        """
        node = self.proxy_nodes[proxy_index]
        return max(1.0, self._hops[node])

    def fetch_costs(self) -> List[float]:
        """Fetch cost for every proxy, indexed by proxy number."""
        return [self.fetch_cost(index) for index in range(self.proxy_count)]

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize the placement and its graph to JSON."""
        import json

        payload = {
            "publisher_node": self.publisher_node,
            "proxy_nodes": self.proxy_nodes,
            "nodes": sorted(self.graph.nodes()),
            "edges": [[u, v, w] for u, v, w in self.graph.edges()],
            "positions": {
                str(node): [x, y] for node, (x, y) in self.graph.positions.items()
            },
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Topology":
        """Rebuild a topology serialized with :meth:`to_json`.

        Hop distances are recomputed from the graph, which is
        deterministic, so a round-tripped topology yields the same
        fetch costs as the original.
        """
        import json

        payload = json.loads(text)
        graph = Graph()
        for node in payload["nodes"]:
            graph.add_node(int(node))
        for u, v, weight in payload["edges"]:
            graph.add_edge(int(u), int(v), float(weight))
        graph.positions = {
            int(node): (float(x), float(y))
            for node, (x, y) in payload.get("positions", {}).items()
        }
        return cls(
            graph,
            publisher_node=int(payload["publisher_node"]),
            proxy_nodes=[int(node) for node in payload["proxy_nodes"]],
        )


def build_topology(
    proxy_count: int,
    rng: np.random.Generator,
    model: str = "waxman",
    extra_nodes: int = 0,
    **model_kwargs,
) -> Topology:
    """Generate a topology hosting one publisher and ``proxy_count`` proxies.

    Args:
        proxy_count: number of proxy servers to place.
        rng: random stream for the generator.
        model: ``"waxman"`` (BRITE default) or ``"barabasi"``.
        extra_nodes: additional transit-only nodes (routers that host
            neither the publisher nor a proxy), enlarging path spread.
        **model_kwargs: forwarded to the graph generator.

    The publisher sits on node 0; proxies occupy nodes
    ``1 .. proxy_count`` and any remaining nodes are transit routers.
    """
    if proxy_count < 1:
        raise ValueError(f"proxy_count must be >= 1, got {proxy_count}")
    node_count = 1 + proxy_count + max(0, int(extra_nodes))
    if model == "waxman":
        graph = waxman_graph(node_count, rng, **model_kwargs)
    elif model == "barabasi":
        graph = barabasi_albert_graph(node_count, rng, **model_kwargs)
    else:
        raise ValueError(f"unknown topology model: {model!r}")
    if not graph.is_connected():
        graph.connect_components()
    proxy_nodes = list(range(1, proxy_count + 1))
    return Topology(graph, publisher_node=0, proxy_nodes=proxy_nodes)
