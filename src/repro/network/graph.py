"""A small undirected weighted graph with shortest-path queries.

Kept dependency-free (plain dicts and a binary heap) so the topology
substrate does not require networkx at runtime; the test suite
cross-checks distances against networkx where it is available.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Iterator, List, Tuple


class Graph:
    """Undirected graph with non-negative edge weights."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, Dict[int, float]] = {}
        #: Optional (x, y) coordinates per node, set by geometric generators.
        self.positions: Dict[int, Tuple[float, float]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: int) -> None:
        """Add ``node`` (no-op if it already exists)."""
        self._adjacency.setdefault(int(node), {})

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add an undirected edge; re-adding overwrites the weight."""
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        if weight < 0:
            raise ValueError(f"negative edge weight: {weight}")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u][v] = float(weight)
        self._adjacency[v][u] = float(weight)

    # -- queries -------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        return sum(len(neighbors) for neighbors in self._adjacency.values()) // 2

    def nodes(self) -> Iterator[int]:
        return iter(self._adjacency)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u, neighbors in self._adjacency.items():
            for v, weight in neighbors.items():
                if u < v:
                    yield (u, v, weight)

    def neighbors(self, node: int) -> Iterable[int]:
        return self._adjacency[node].keys()

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency.get(u, ())

    def weight(self, u: int, v: int) -> float:
        return self._adjacency[u][v]

    # -- algorithms ------------------------------------------------------------

    def shortest_paths_from(self, source: int, weighted: bool = False) -> Dict[int, float]:
        """Distance from ``source`` to every reachable node.

        With ``weighted=False`` every edge counts 1 hop (the paper uses
        hop distance as fetch cost); with ``weighted=True`` Dijkstra
        uses the stored weights.
        """
        if source not in self._adjacency:
            raise KeyError(f"unknown node: {source}")
        distances: Dict[int, float] = {source: 0.0}
        frontier: List[Tuple[float, int]] = [(0.0, source)]
        while frontier:
            dist, node = heapq.heappop(frontier)
            if dist > distances.get(node, math.inf):
                continue
            for neighbor, weight in self._adjacency[node].items():
                step = weight if weighted else 1.0
                candidate = dist + step
                if candidate < distances.get(neighbor, math.inf):
                    distances[neighbor] = candidate
                    heapq.heappush(frontier, (candidate, neighbor))
        return distances

    def is_connected(self) -> bool:
        """``True`` if every node is reachable from every other."""
        if not self._adjacency:
            return True
        first = next(iter(self._adjacency))
        return len(self.shortest_paths_from(first)) == self.node_count

    def connect_components(self) -> int:
        """Link disconnected components with minimal extra edges.

        Components are joined through their geometrically closest node
        pair when positions are available, else through arbitrary
        representatives.  Returns the number of edges added.
        """
        components = self._components()
        added = 0
        while len(components) > 1:
            base = components[0]
            other = components[1]
            u, v = self._closest_pair(base, other)
            self.add_edge(u, v, self._euclidean(u, v) if self.positions else 1.0)
            components = [base | other] + components[2:]
            added += 1
        return added

    def _components(self) -> List[set]:
        seen: set = set()
        components: List[set] = []
        for node in self._adjacency:
            if node in seen:
                continue
            component = set(self.shortest_paths_from(node))
            seen |= component
            components.append(component)
        return components

    def _closest_pair(self, left: set, right: set) -> Tuple[int, int]:
        if not self.positions:
            return (next(iter(left)), next(iter(right)))
        best = (math.inf, -1, -1)
        for u in left:
            for v in right:
                dist = self._euclidean(u, v)
                if dist < best[0]:
                    best = (dist, u, v)
        return (best[1], best[2])

    def _euclidean(self, u: int, v: int) -> float:
        (ux, uy), (vx, vy) = self.positions[u], self.positions[v]
        return math.hypot(ux - vx, uy - vy)
