"""Content distribution strategies — the paper's primary contribution.

Every strategy from Table 1 of the paper is implemented against a
single :class:`~repro.core.policy.Policy` interface:

================  =============================================  =======
Strategy          Class                                          Section
================  =============================================  =======
GD*               :class:`~repro.core.gdstar.GDStarPolicy`       3.1
SUB               :class:`~repro.core.sub.SubPolicy`             3.2
SG1 / SG2 / SR    :class:`~repro.core.single_cache.SingleCacheCombinedPolicy`  3.3
DM                :class:`~repro.core.dual_methods.DualMethodsPolicy`          3.3
DC-FP             :class:`~repro.core.dual_caches.DualCacheFixedPolicy`        3.3
DC-AP / DC-LAP    :class:`~repro.core.dual_caches.DualCacheAdaptivePolicy`     3.3
LRU / GDS / LFU-DA :mod:`repro.core.classic` (comparators)       3.1
================  =============================================  =======

Use :func:`~repro.core.registry.make_policy` (or
:data:`~repro.core.registry.STRATEGIES`) to construct policies by the
names the paper uses ("gdstar", "sub", "sg1", "sg2", "sr", "dm",
"dc-fp", "dc-ap", "dc-lap", plus "lru", "gds", "lfu-da").
"""

from repro.core.policy import Policy, PushOutcome, RequestOutcome
from repro.core.values import gdstar_value, sub_value, sr_value
from repro.core.gdstar import GDStarPolicy
from repro.core.classic import LRUPolicy, GDSPolicy, LFUDAPolicy
from repro.core.sub import SubPolicy
from repro.core.single_cache import SingleCacheCombinedPolicy
from repro.core.dual_methods import DualMethodsPolicy
from repro.core.dual_caches import DualCacheFixedPolicy, DualCacheAdaptivePolicy
from repro.core.registry import STRATEGIES, make_policy, strategy_names

__all__ = [
    "Policy",
    "PushOutcome",
    "RequestOutcome",
    "gdstar_value",
    "sub_value",
    "sr_value",
    "GDStarPolicy",
    "LRUPolicy",
    "GDSPolicy",
    "LFUDAPolicy",
    "SubPolicy",
    "SingleCacheCombinedPolicy",
    "DualMethodsPolicy",
    "DualCacheFixedPolicy",
    "DualCacheAdaptivePolicy",
    "STRATEGIES",
    "make_policy",
    "strategy_names",
]
