"""The policy interface shared by every content distribution strategy.

A policy lives on one proxy server.  The simulator drives it through
two entry points, matching the paper's two placement opportunities:

* :meth:`Policy.on_publish` — *push time*: the matching engine found
  ``match_count`` local subscriptions for a freshly published page
  version.  The policy decides whether the content should be stored
  (and therefore transferred under Pushing-When-Necessary).
* :meth:`Policy.on_request` — *access time*: a local user asked for the
  current version of a page.  The policy reports hit/miss and performs
  any access-time placement.

Traffic accounting stays in the simulator: policies return what
happened, the simulator prices it under the active pushing scheme.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cache.stats import CacheStats


@dataclass(frozen=True, slots=True)
class PushOutcome:
    """Result of a push-time placement attempt.

    Attributes:
        stored: the page content now resides in the cache.
        refreshed: an already-cached entry was updated to the new
            version (implies ``stored``).
    """

    stored: bool
    refreshed: bool = False

    def __post_init__(self) -> None:
        if self.refreshed and not self.stored:
            raise ValueError("refreshed implies stored")


@dataclass(frozen=True, slots=True)
class RequestOutcome:
    """Result of serving one user request.

    Attributes:
        hit: the current version was served from the local cache.
        stale: a previous version was cached (still a miss; the fresh
            version is fetched from the publisher).
        cached_after: the requested page resides in the cache after the
            request completed (policies may decline to keep it).
    """

    hit: bool
    stale: bool = False
    cached_after: bool = False

    def __post_init__(self) -> None:
        if self.hit and self.stale:
            raise ValueError("a hit cannot be stale")


# Interned outcome constants.  Frozen dataclasses pay an
# ``object.__setattr__`` per field on construction, and the replay hot
# path returns one outcome per event — millions per run.  The nine
# combinations the policies actually produce are pre-built here;
# equality is by value, so callers that compare against freshly
# constructed instances are unaffected.
PUSH_SKIPPED = PushOutcome(stored=False)
PUSH_STORED = PushOutcome(stored=True)
PUSH_REFRESHED = PushOutcome(stored=True, refreshed=True)

REQUEST_HIT = RequestOutcome(hit=True, cached_after=True)
REQUEST_HIT_DROPPED = RequestOutcome(hit=True, cached_after=False)
REQUEST_STALE = RequestOutcome(hit=False, stale=True, cached_after=True)
REQUEST_STALE_DROPPED = RequestOutcome(hit=False, stale=True, cached_after=False)
REQUEST_MISS = RequestOutcome(hit=False, cached_after=False)
REQUEST_MISS_CACHED = RequestOutcome(hit=False, cached_after=True)


class Policy(ABC):
    """Base class for placement/replacement strategies on one proxy.

    Args:
        capacity_bytes: cache capacity of this proxy.
        cost: fetch cost ``c(p)`` from this proxy to the publisher
            (network hop distance; constant per proxy, per §3.1).

    The base attributes the replay hot paths touch on every event are
    slotted; ``"__dict__"`` stays in the slot list so subclasses that
    declare no ``__slots__`` of their own — and ad-hoc instance
    attributes like the per-instance ``name`` override or the
    observer-installed ``evict_listener`` — keep working unchanged.
    """

    __slots__ = ("capacity_bytes", "cost", "stats", "__dict__")

    #: Registry name, set by subclasses (e.g. ``"gdstar"``).
    name: str = "abstract"
    #: Optional observability hook, called as ``listener(page_id,
    #: size, cause)`` after each eviction.  ``None`` (the class
    #: default) keeps the eviction path free of extra work; the
    #: simulator installs one per proxy when an Observer is attached.
    evict_listener = None
    #: Whether the strategy has a push-time module at all.  Pure
    #: access-time policies (GD*, LRU, ...) set this False; the
    #: simulator then never transfers pushed content to them, even
    #: under Always-Pushing (§5.6: GD*'s traffic does not change with
    #: the pushing scheme).
    uses_push: bool = True

    def __init__(self, capacity_bytes: int, cost: float = 1.0) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        self.capacity_bytes = int(capacity_bytes)
        self.cost = float(cost)
        self.stats = CacheStats()

    # -- the two placement opportunities ---------------------------------

    @abstractmethod
    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        """Handle a matched publication (push-time placement)."""

    @abstractmethod
    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        """Serve a user request for the current ``version`` of a page."""

    # -- introspection ------------------------------------------------------

    @abstractmethod
    def contains(self, page_id: int) -> bool:
        """Whether any version of ``page_id`` is currently cached.

        Together with :meth:`cached_version` this is the read-only
        introspection surface the simulator's degraded paths build on:
        peer lookups in the cooperative extension, hit probing under
        faults, and the overload layer's serve-stale mode (a cached
        copy answers while the origin admission gate is closed) all
        query the cache without mutating recency or placement state.
        """

    @abstractmethod
    def cached_version(self, page_id: int) -> int:
        """Version cached for ``page_id``; raises KeyError when absent.

        Must be side-effect free (see :meth:`contains`): callers use it
        to decide *whether* to serve a stale copy before any accounted
        ``on_request`` call happens.
        """

    @property
    @abstractmethod
    def used_bytes(self) -> int:
        """Bytes currently occupied."""

    @abstractmethod
    def check_invariants(self) -> None:
        """Raise AssertionError if internal bookkeeping drifted."""

    # -- fault model ---------------------------------------------------------

    def drop_contents(self) -> None:
        """Discard every cached page: the proxy process restarted cold.

        Dropped pages are not evictions (no replacement decision was
        made), so eviction counters are untouched.  Configuration
        (capacity, cost, strategy parameters) survives a restart;
        in-memory state does not.  Subclasses with state beyond the
        standard ``_cache`` heap-cache override this.
        """
        cache = getattr(self, "_cache", None)
        if cache is None:
            raise NotImplementedError(
                f"{type(self).__name__} must implement drop_contents()"
            )
        cache.clear()

    # -- shared helpers -----------------------------------------------------

    def _record_request(
        self, hit: bool, size: int, now: float, stale: bool = False
    ) -> None:
        """Update stats with one request, bucketed by hour."""
        bucket = int(now // 3600.0)
        self.stats.record_request(hit=hit, size=size, bucket=bucket, stale=stale)

    def _note_eviction(self, entry, cause: str = "capacity") -> None:
        """Count one eviction and notify the observability hook.

        ``cause`` distinguishes unconditional replacement
        ("capacity"), conditional displacement by a more valuable page
        ("displaced") and dual-cache repartitioning ("repartition").
        """
        self.stats.record_eviction(entry.size)
        if self.evict_listener is not None:
            self.evict_listener(entry.page_id, entry.size, cause)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(capacity={self.capacity_bytes}, "
            f"used={self.used_bytes}, cost={self.cost})"
        )
