"""SG1 / SG2 / SR — single cache, single replacement method (§3.3).

These strategies run both placement opportunities (push time and access
time) against one shared cache with one evaluation function:

* **SG1** — GD* with ``f = s + a`` (eq. 3): prediction plus history.
* **SG2** — GD* with ``f = s − a`` (eq. 4): estimated *remaining*
  references, assuming every subscriber reads a matched page once.
* **SR**  — ``V = (s − a)·c/size`` (eq. 5): pure remaining-demand
  frequency, no GD* aging.

Placement is value-gated at *both* opportunities ("whether to store a
page on a server is purely based on the value of the page"): a page is
stored only if the cached pages cheaper than it can free enough room;
on a cache miss the fetched page is forwarded to the user and discarded
when its value is not high enough to reside in the cache.

The access count ``a`` is **proxy-level and persistent**: the proxy
serves every local request (forwarding misses to the publisher), so it
observes the complete access history of a page whether or not the page
is currently cached.  This is what makes eq. 4's "difference between
subscriptions and past requests = future references" correct — with
in-cache-only counts, a fully-read page whose modified version is
re-published would come back with ``a = 0`` and its full subscription
count and be re-admitted forever, which collapses SG2/SR into SUB.
(GD*'s own frequency term keeps its In-Cache-LFU reset per §3.1; the
reset is specific to that baseline.)
"""

from __future__ import annotations

from collections import defaultdict
from heapq import heappush
from typing import Dict

from repro.cache.entry import CacheEntry, ACCESS_MODULE, PUSH_MODULE
from repro.cache.heap import _COMPACT_FLOOR
from repro.core._base import HeapCache
from repro.core.policy import (
    PUSH_REFRESHED,
    PUSH_SKIPPED,
    PUSH_STORED,
    REQUEST_HIT,
    REQUEST_MISS,
    REQUEST_MISS_CACHED,
    REQUEST_STALE,
    Policy,
    PushOutcome,
    RequestOutcome,
)
from repro.core.values import gdstar_value, sg1_frequency, sg2_frequency, sr_value

#: Evaluation modes and their registry names.
SG1 = "sg1"
SG2 = "sg2"
SR = "sr"
_MODES = (SG1, SG2, SR)


class SingleCacheCombinedPolicy(Policy):
    """Push-time + access-time placement with one evaluation function."""

    name = "single-cache"

    # Fully slotted: ``on_request`` reads half a dozen of these per
    # replayed event (the instance ``name`` override lands in the
    # ``__dict__`` slot inherited from Policy).
    __slots__ = (
        "mode",
        "beta",
        "inflation",
        "_cache",
        "_access_counts",
        "_inv_beta",
        "_entries",
        "_heap",
    )

    def __init__(
        self,
        capacity_bytes: int,
        cost: float = 1.0,
        mode: str = SG2,
        beta: float = 2.0,
    ) -> None:
        super().__init__(capacity_bytes, cost)
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.mode = mode
        self.name = mode
        self.beta = float(beta)
        self.inflation = 0.0
        self._cache = HeapCache(capacity_bytes)
        #: Persistent per-page access history observed at this proxy.
        self._access_counts: Dict[int, int] = defaultdict(int)
        # Hot-path aliases: the request path runs once per replay event,
        # so it probes the entry dict and pushes to the heap directly
        # instead of going through the HeapCache wrappers.  ``1/beta``
        # is loop-invariant; precomputing it is bit-identical to the
        # ``base ** (1.0 / beta)`` in values.gdstar_value.
        self._inv_beta = 1.0 / self.beta
        self._entries = self._cache.storage.entries_by_id
        self._heap = self._cache.heap

    # -- valuation ---------------------------------------------------------

    def _value_of(self, match_count: int, access_count: int, size: int) -> float:
        if self.mode == SG1:
            frequency = sg1_frequency(match_count, access_count)
            return gdstar_value(self.inflation, frequency, self.cost, size, self.beta)
        if self.mode == SG2:
            frequency = sg2_frequency(match_count, access_count)
            return gdstar_value(self.inflation, frequency, self.cost, size, self.beta)
        return sr_value(match_count, access_count, self.cost, size)

    def _entry_value(self, entry: CacheEntry) -> float:
        observed = self._access_counts[entry.page_id]
        return self._value_of(entry.match_count, observed, entry.size)

    def _settle_evictions(self, result) -> None:
        for evicted in result.evicted:
            self._note_eviction(evicted)
        if self.mode != SR and result.last_value is not None:
            self.inflation = result.last_value

    def _gated_place(self, entry: CacheEntry) -> bool:
        """Value-gated placement shared by push and access time.

        Runs once per miss and per push of an uncached page, so the
        valuation is inlined (bit-identical to ``_entry_value``): the
        ``base`` term does not depend on the inflation value L, which
        lets the post-eviction re-valuation — kept so the stored value
        is consistent with the heap ordering the entry will live under
        — reuse it without recomputing the frequency.
        """
        size = entry.size
        observed = self._access_counts[entry.page_id]
        mode = self.mode
        if mode == SG1:
            frequency = entry.match_count + observed
        else:
            frequency = entry.match_count - observed
        base = frequency * self.cost / size
        if mode == SR:
            value = base
        elif base <= 0.0:
            value = self.inflation
        else:
            value = self.inflation + base ** self._inv_beta
        result = self._cache.evict_cheaper_for(size, threshold=value)
        if not result.success:
            return False
        for evicted in result.evicted:
            self._note_eviction(evicted)
        if mode != SR:
            if result.last_value is not None:
                self.inflation = result.last_value
            if base <= 0.0:
                value = self.inflation
            else:
                value = self.inflation + base ** self._inv_beta
        self._cache.add(entry, value)
        return True

    # -- push time -----------------------------------------------------------

    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        existing = self._entries.get(page_id)
        stats = self.stats
        if existing is not None:
            if existing.version == version:
                return PUSH_SKIPPED
            # Self-refresh: the new version replaces the cache's own
            # stale copy (for the GD*-framework modes this also follows
            # from the candidate rule — L has advanced since the entry
            # was last valued, so the incoming version strictly
            # out-prices the resident copy).  The entry keeps its last
            # access-time valuation: a push is not an access, and
            # re-inflating here would let frequently-updated but
            # no-longer-read pages evade eviction forever.
            existing.version = version
            existing.match_count = match_count
            stats.pages_pushed_stored += 1
            stats.bytes_pushed += size
            return PUSH_REFRESHED

        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            module=PUSH_MODULE,
            last_access_time=now,
        )
        if self._gated_place(entry):
            stats.pages_pushed_stored += 1
            stats.bytes_pushed += size
            return PUSH_STORED
        stats.pages_pushed_rejected += 1
        return PUSH_SKIPPED

    # -- access time -------------------------------------------------------------

    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        # The replay hot path: one call per request event.  Entry
        # lookup, valuation, repricing and stats are all inlined — the
        # math reproduces values.gdstar_value / sr_value bit for bit
        # (same operation order, same clamp), specialised by mode.
        counts = self._access_counts
        observed = counts[page_id] + 1
        counts[page_id] = observed
        entry = self._entries.get(page_id)
        stats = self.stats
        bucket = int(now // 3600.0)
        stats.requests += 1
        breq = stats.bucketed_requests
        breq[bucket] = breq.get(bucket, 0) + 1
        if entry is not None:
            hit = entry.version == version
            if not hit:
                entry.version = version
            entry.access_count += 1
            entry.accessed_since_replacement = True
            entry.last_access_time = now
            mode = self.mode
            if mode == SG1:
                frequency = entry.match_count + observed
            else:
                frequency = entry.match_count - observed
            base = frequency * self.cost / entry.size
            if mode == SR:
                value = base
            elif base <= 0.0:
                value = self.inflation
            else:
                value = self.inflation + base ** self._inv_beta
            entry.value = value
            # Inlined AddressableHeap.push — the hottest line of the
            # replay (one repricing per request).  The mutations mirror
            # push exactly, auto-compaction bound included; profiled
            # runs time these pushes under policy.on_request instead
            # of heap.push.
            heap = self._heap
            sequence = heap._sequence + 1
            heap._sequence = sequence
            record = (value, sequence, page_id)
            live = heap._live
            live[page_id] = record
            backing = heap._heap
            heappush(backing, record)
            backing_size = len(backing)
            if backing_size >= _COMPACT_FLOOR and backing_size > 2 * len(live):
                heap.compact()
            if hit:
                stats.hits += 1
                stats.bytes_served_local += size
                bhits = stats.bucketed_hits
                bhits[bucket] = bhits.get(bucket, 0) + 1
                return REQUEST_HIT
            stats.stale_hits += 1
            stats.pages_fetched += 1
            stats.bytes_fetched += size
            return REQUEST_STALE

        stats.pages_fetched += 1
        stats.bytes_fetched += size
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            access_count=observed,
            module=ACCESS_MODULE,
            last_access_time=now,
        )
        if self._gated_place(entry):
            return REQUEST_MISS_CACHED
        return REQUEST_MISS

    def drop_contents(self) -> None:
        self._cache.clear()
        self.inflation = 0.0

    # -- introspection -----------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        return page_id in self._cache

    def cached_version(self, page_id: int) -> int:
        entry = self._cache.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self) -> int:
        return self._cache.used_bytes

    def check_invariants(self) -> None:
        self._cache.check_invariants()
