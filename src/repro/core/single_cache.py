"""SG1 / SG2 / SR — single cache, single replacement method (§3.3).

These strategies run both placement opportunities (push time and access
time) against one shared cache with one evaluation function:

* **SG1** — GD* with ``f = s + a`` (eq. 3): prediction plus history.
* **SG2** — GD* with ``f = s − a`` (eq. 4): estimated *remaining*
  references, assuming every subscriber reads a matched page once.
* **SR**  — ``V = (s − a)·c/size`` (eq. 5): pure remaining-demand
  frequency, no GD* aging.

Placement is value-gated at *both* opportunities ("whether to store a
page on a server is purely based on the value of the page"): a page is
stored only if the cached pages cheaper than it can free enough room;
on a cache miss the fetched page is forwarded to the user and discarded
when its value is not high enough to reside in the cache.

The access count ``a`` is **proxy-level and persistent**: the proxy
serves every local request (forwarding misses to the publisher), so it
observes the complete access history of a page whether or not the page
is currently cached.  This is what makes eq. 4's "difference between
subscriptions and past requests = future references" correct — with
in-cache-only counts, a fully-read page whose modified version is
re-published would come back with ``a = 0`` and its full subscription
count and be re-admitted forever, which collapses SG2/SR into SUB.
(GD*'s own frequency term keeps its In-Cache-LFU reset per §3.1; the
reset is specific to that baseline.)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.cache.entry import CacheEntry, ACCESS_MODULE, PUSH_MODULE
from repro.core._base import HeapCache
from repro.core.policy import Policy, PushOutcome, RequestOutcome
from repro.core.values import gdstar_value, sg1_frequency, sg2_frequency, sr_value

#: Evaluation modes and their registry names.
SG1 = "sg1"
SG2 = "sg2"
SR = "sr"
_MODES = (SG1, SG2, SR)


class SingleCacheCombinedPolicy(Policy):
    """Push-time + access-time placement with one evaluation function."""

    name = "single-cache"

    def __init__(
        self,
        capacity_bytes: int,
        cost: float = 1.0,
        mode: str = SG2,
        beta: float = 2.0,
    ) -> None:
        super().__init__(capacity_bytes, cost)
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.mode = mode
        self.name = mode
        self.beta = float(beta)
        self.inflation = 0.0
        self._cache = HeapCache(capacity_bytes)
        #: Persistent per-page access history observed at this proxy.
        self._access_counts: Dict[int, int] = defaultdict(int)

    # -- valuation ---------------------------------------------------------

    def _value_of(self, match_count: int, access_count: int, size: int) -> float:
        if self.mode == SG1:
            frequency = sg1_frequency(match_count, access_count)
            return gdstar_value(self.inflation, frequency, self.cost, size, self.beta)
        if self.mode == SG2:
            frequency = sg2_frequency(match_count, access_count)
            return gdstar_value(self.inflation, frequency, self.cost, size, self.beta)
        return sr_value(match_count, access_count, self.cost, size)

    def _entry_value(self, entry: CacheEntry) -> float:
        observed = self._access_counts[entry.page_id]
        return self._value_of(entry.match_count, observed, entry.size)

    def _settle_evictions(self, result) -> None:
        for evicted in result.evicted:
            self._note_eviction(evicted)
        if self.mode != SR and result.last_value is not None:
            self.inflation = result.last_value

    def _gated_place(self, entry: CacheEntry) -> bool:
        """Value-gated placement shared by push and access time."""
        value = self._entry_value(entry)
        result = self._cache.evict_cheaper_for(entry.size, threshold=value)
        if not result.success:
            return False
        self._settle_evictions(result)
        # Re-value after the inflation update so the stored value is
        # consistent with the heap ordering the entry will live under.
        self._cache.add(entry, self._entry_value(entry))
        return True

    # -- push time -----------------------------------------------------------

    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        existing = self._cache.get(page_id)
        if existing is not None:
            if existing.version == version:
                return PushOutcome(stored=False)
            # Self-refresh: the new version replaces the cache's own
            # stale copy (for the GD*-framework modes this also follows
            # from the candidate rule — L has advanced since the entry
            # was last valued, so the incoming version strictly
            # out-prices the resident copy).  The entry keeps its last
            # access-time valuation: a push is not an access, and
            # re-inflating here would let frequently-updated but
            # no-longer-read pages evade eviction forever.
            existing.version = version
            existing.match_count = match_count
            self.stats.record_push(stored=True, size=size, transferred=True)
            return PushOutcome(stored=True, refreshed=True)

        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            module=PUSH_MODULE,
            last_access_time=now,
        )
        stored = self._gated_place(entry)
        self.stats.record_push(stored=stored, size=size, transferred=stored)
        return PushOutcome(stored=stored)

    # -- access time -------------------------------------------------------------

    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        self._access_counts[page_id] += 1
        entry = self._cache.get(page_id)
        if entry is not None and entry.version == version:
            entry.record_access(now)
            self._cache.reprice(entry, self._entry_value(entry))
            self._record_request(hit=True, size=size, now=now)
            return RequestOutcome(hit=True, cached_after=True)

        if entry is not None:
            entry.version = version
            entry.record_access(now)
            self._cache.reprice(entry, self._entry_value(entry))
            self._record_request(hit=False, size=size, now=now, stale=True)
            return RequestOutcome(hit=False, stale=True, cached_after=True)

        self._record_request(hit=False, size=size, now=now)
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            access_count=self._access_counts[page_id],
            module=ACCESS_MODULE,
            last_access_time=now,
        )
        cached = self._gated_place(entry)
        return RequestOutcome(hit=False, cached_after=cached)

    def drop_contents(self) -> None:
        self._cache.clear()
        self.inflation = 0.0

    # -- introspection -----------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        return page_id in self._cache

    def cached_version(self, page_id: int) -> int:
        entry = self._cache.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self) -> int:
        return self._cache.used_bytes

    def check_invariants(self) -> None:
        self._cache.check_invariants()
