"""Classic access-time replacement comparators: LRU, GDS, LFU-DA.

The paper chose GD* as its baseline because it beats LRU,
GreedyDual-Size and LFU-DA on hit ratio (§3.1, citing Jin & Bestavros).
These three are implemented so that claim can be checked in this
reproduction (``benchmarks/test_ablation_baselines.py``) and so users
have drop-in alternatives.  All three are access-time-only policies:
``on_publish`` is a no-op.
"""

from __future__ import annotations

from repro.cache.entry import CacheEntry
from repro.core._base import HeapCache
from repro.core.policy import (
    PUSH_SKIPPED,
    REQUEST_HIT,
    REQUEST_MISS,
    REQUEST_MISS_CACHED,
    REQUEST_STALE,
    Policy,
    PushOutcome,
    RequestOutcome,
)


class _AccessOnlyPolicy(Policy):
    """Shared skeleton: no push placement, unconditional admission."""

    uses_push = False

    def __init__(self, capacity_bytes: int, cost: float = 1.0) -> None:
        super().__init__(capacity_bytes, cost)
        self._cache = HeapCache(capacity_bytes)

    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        return PUSH_SKIPPED

    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        entry = self._cache.get(page_id)
        if entry is not None and entry.version == version:
            entry.record_access(now)
            self._cache.reprice(entry, self._value(entry, now))
            self._record_request(hit=True, size=size, now=now)
            return REQUEST_HIT
        if entry is not None:
            entry.version = version
            entry.record_access(now)
            self._cache.reprice(entry, self._value(entry, now))
            self._record_request(hit=False, size=size, now=now, stale=True)
            return REQUEST_STALE

        self._record_request(hit=False, size=size, now=now)
        result = self._cache.evict_for(size)
        if not result.success:
            return REQUEST_MISS
        for evicted in result.evicted:
            self._note_eviction(evicted)
        self._after_evictions(result)
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            access_count=1,
            last_access_time=now,
        )
        self._cache.add(entry, self._value(entry, now))
        return REQUEST_MISS_CACHED

    def _after_evictions(self, result) -> None:
        """Hook for aging mechanisms (GDS/LFU-DA inflation)."""

    def drop_contents(self) -> None:
        self._cache.clear()
        if hasattr(self, "inflation"):
            self.inflation = 0.0

    def _value(self, entry: CacheEntry, now: float) -> float:
        raise NotImplementedError

    def contains(self, page_id: int) -> bool:
        return page_id in self._cache

    def cached_version(self, page_id: int) -> int:
        entry = self._cache.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self) -> int:
        return self._cache.used_bytes

    def check_invariants(self) -> None:
        self._cache.check_invariants()


class LRUPolicy(_AccessOnlyPolicy):
    """Least-recently-used: value = time of last access."""

    name = "lru"

    def _value(self, entry: CacheEntry, now: float) -> float:
        return now


class GDSPolicy(_AccessOnlyPolicy):
    """GreedyDual-Size (Cao & Irani 1997): ``V = L + c/s``.

    No frequency term; the inflation value L provides aging exactly as
    in GD* (GD* with beta → infinity degenerates to a frequency-less
    form close to GDS).
    """

    name = "gds"

    def __init__(self, capacity_bytes: int, cost: float = 1.0) -> None:
        super().__init__(capacity_bytes, cost)
        self.inflation = 0.0

    def _after_evictions(self, result) -> None:
        if result.last_value is not None:
            self.inflation = result.last_value

    def _value(self, entry: CacheEntry, now: float) -> float:
        return self.inflation + entry.cost / entry.size


class LFUDAPolicy(_AccessOnlyPolicy):
    """LFU with Dynamic Aging: ``V = L + f`` (size-blind frequency).

    The dynamic-aging term prevents formerly popular pages from
    occupying the cache forever, the classic failure of plain LFU.
    """

    name = "lfu-da"

    def __init__(self, capacity_bytes: int, cost: float = 1.0) -> None:
        super().__init__(capacity_bytes, cost)
        self.inflation = 0.0

    def _after_evictions(self, result) -> None:
        if result.last_value is not None:
            self.inflation = result.last_value

    def _value(self, entry: CacheEntry, now: float) -> float:
        return self.inflation + entry.access_count
