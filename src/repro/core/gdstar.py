"""GD* — the access-based caching baseline (§3.1).

Greedy-Dual* (Jin & Bestavros 2001) generalizes GreedyDual-Size with a
frequency term and an aging mechanism: every page is valued

    V(p) = L + (f(p) · c(p) / s(p)) ^ (1/beta)

where ``L`` is an inflation value set to the value of the last evicted
page, so long-idle pages decay relative to fresh ones.  Following the
paper's implementation notes:

* reference counts are discarded on eviction (In-Cache LFU) — this is
  the ``retain_counts_on_eviction=False`` default; the ablation bench
  flips it;
* on a hit, ``f(p)`` increments and the page is re-valued with the
  *current* ``L``;
* on a miss the page is always admitted, evicting least-valuable pages
  until it fits (pages larger than the whole cache are served without
  caching).

GD* performs no push-time placement: :meth:`on_publish` is a no-op, so
the strategy generates no push traffic and its curves are flat across
pushing schemes (Fig. 7).
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict

from repro.cache.entry import CacheEntry
from repro.cache.heap import _COMPACT_FLOOR
from repro.core._base import HeapCache
from repro.core.policy import (
    PUSH_SKIPPED,
    REQUEST_HIT,
    REQUEST_MISS,
    REQUEST_MISS_CACHED,
    REQUEST_STALE,
    Policy,
    PushOutcome,
    RequestOutcome,
)
from repro.core.values import gdstar_value


class GDStarPolicy(Policy):
    """The GD* replacement algorithm on one proxy cache."""

    name = "gdstar"
    uses_push = False

    # Fully slotted — same hot-path rationale as
    # SingleCacheCombinedPolicy.
    __slots__ = (
        "beta",
        "retain_counts_on_eviction",
        "inflation",
        "_cache",
        "_evicted_counts",
        "_inv_beta",
        "_entries",
        "_heap",
    )

    def __init__(
        self,
        capacity_bytes: int,
        cost: float = 1.0,
        beta: float = 2.0,
        retain_counts_on_eviction: bool = False,
    ) -> None:
        super().__init__(capacity_bytes, cost)
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.retain_counts_on_eviction = retain_counts_on_eviction
        self.inflation = 0.0
        self._cache = HeapCache(capacity_bytes)
        #: Reference counts kept across evictions (ablation mode only).
        self._evicted_counts: Dict[int, int] = {}
        # Hot-path aliases (see SingleCacheCombinedPolicy): direct entry
        # probes and heap pushes, plus the loop-invariant ``1/beta``.
        self._inv_beta = 1.0 / self.beta
        self._entries = self._cache.storage.entries_by_id
        self._heap = self._cache.heap

    # -- push time: nothing happens ------------------------------------------

    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        """Pure caching ignores publications (the cached copy, if any,
        simply becomes stale and is detected at the next access)."""
        return PUSH_SKIPPED

    # -- access time --------------------------------------------------------

    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        # Replay hot path: valuation, repricing and stats inlined; the
        # math reproduces values.gdstar_value bit for bit.
        entry = self._entries.get(page_id)
        stats = self.stats
        bucket = int(now // 3600.0)
        stats.requests += 1
        breq = stats.bucketed_requests
        breq[bucket] = breq.get(bucket, 0) + 1
        if entry is not None:
            hit = entry.version == version
            if not hit:
                # Stale copy: fetch the fresh version, refresh in place.
                entry.version = version
            entry.access_count += 1
            entry.accessed_since_replacement = True
            entry.last_access_time = now
            base = entry.access_count * entry.cost / entry.size
            if base <= 0.0:
                value = self.inflation
            else:
                value = self.inflation + base ** self._inv_beta
            entry.value = value
            # Inlined AddressableHeap.push — see SingleCacheCombinedPolicy.
            heap = self._heap
            sequence = heap._sequence + 1
            heap._sequence = sequence
            record = (value, sequence, page_id)
            live = heap._live
            live[page_id] = record
            backing = heap._heap
            heappush(backing, record)
            backing_size = len(backing)
            if backing_size >= _COMPACT_FLOOR and backing_size > 2 * len(live):
                heap.compact()
            if hit:
                stats.hits += 1
                stats.bytes_served_local += size
                bhits = stats.bucketed_hits
                bhits[bucket] = bhits.get(bucket, 0) + 1
                return REQUEST_HIT
            stats.stale_hits += 1
            stats.pages_fetched += 1
            stats.bytes_fetched += size
            return REQUEST_STALE

        stats.pages_fetched += 1
        stats.bytes_fetched += size
        if self._admit(page_id, version, size, now):
            return REQUEST_MISS_CACHED
        return REQUEST_MISS

    def _admit(self, page_id: int, version: int, size: int, now: float) -> bool:
        """Unconditional GD* placement of a just-fetched page."""
        result = self._cache.evict_for(size)
        if not result.success:
            return False
        self._settle_evictions(result)
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            access_count=1 + self._evicted_counts.pop(page_id, 0),
            last_access_time=now,
        )
        self._cache.add(entry, self._value(entry))
        return True

    def _settle_evictions(self, result) -> None:
        """Account for evicted pages and advance the inflation value."""
        for evicted in result.evicted:
            self._note_eviction(evicted)
            if self.retain_counts_on_eviction:
                self._evicted_counts[evicted.page_id] = evicted.access_count
        if result.last_value is not None:
            self.inflation = result.last_value

    def _value(self, entry: CacheEntry) -> float:
        return gdstar_value(
            self.inflation, entry.access_count, entry.cost, entry.size, self.beta
        )

    def drop_contents(self) -> None:
        """Cold restart: contents, inflation and retained counts are
        all in-memory state and do not survive."""
        self._cache.clear()
        self.inflation = 0.0
        self._evicted_counts.clear()

    # -- introspection -----------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        return page_id in self._cache

    def cached_version(self, page_id: int) -> int:
        entry = self._cache.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self) -> int:
        return self._cache.used_bytes

    def check_invariants(self) -> None:
        self._cache.check_invariants()
