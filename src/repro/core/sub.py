"""SUB — push-time placement from subscription counts only (§3.2).

When a page matching local subscriptions is published, SUB values it as

    V(p) = s(p) · c(p) / size(p)                       (eq. 2)

where ``s(p)`` is the number of matching subscriptions.  Pages already
cached with a lower value are *candidates*; if the candidates (plus
free space) cannot make room, the page is **not** stored and nothing is
evicted.  SUB is push-time-only: on a cache miss it fetches and
forwards the page without caching it, and page values never change
after placement (subscriptions are static).
"""

from __future__ import annotations

from repro.cache.entry import CacheEntry, PUSH_MODULE
from repro.core._base import HeapCache
from repro.core.policy import (
    PUSH_REFRESHED,
    PUSH_SKIPPED,
    PUSH_STORED,
    REQUEST_HIT,
    REQUEST_MISS,
    REQUEST_STALE,
    Policy,
    PushOutcome,
    RequestOutcome,
)
from repro.core.values import sub_value


class SubPolicy(Policy):
    """Subscription-driven push-time placement."""

    name = "sub"

    def __init__(
        self,
        capacity_bytes: int,
        cost: float = 1.0,
        refresh_on_push: bool = True,
    ) -> None:
        super().__init__(capacity_bytes, cost)
        self._cache = HeapCache(capacity_bytes)
        #: Whether a pushed new version may replace the cache's own
        #: stale copy of the same page.  True (default) treats
        #: self-replacement as natural; False applies the paper's
        #: candidate rule literally ("pages whose values are LESS than
        #: the new page's") — the resident copy prices identically and
        #: can never be displaced, so it rots.  The two settings
        #: bracket the paper's SUB behaviour; see the
        #: ``ablation_sub_refresh`` benchmark.
        self.refresh_on_push = refresh_on_push

    # -- push time -------------------------------------------------------

    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        existing = self._cache.get(page_id)
        if existing is not None:
            if existing.version == version:
                return PUSH_SKIPPED
            if not self.refresh_on_push:
                self.stats.record_push(stored=False, size=size, transferred=False)
                return PUSH_SKIPPED
            existing.version = version
            existing.match_count = match_count
            self._cache.reprice(existing, self._value(existing))
            self.stats.record_push(stored=True, size=size, transferred=True)
            return PUSH_REFRESHED

        value = sub_value(match_count, self.cost, size)
        result = self._cache.evict_cheaper_for(size, threshold=value)
        if not result.success:
            self.stats.record_push(stored=False, size=size, transferred=False)
            return PUSH_SKIPPED
        for evicted in result.evicted:
            self._note_eviction(evicted, cause="displaced")
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            module=PUSH_MODULE,
            last_access_time=now,
        )
        self._cache.add(entry, value)
        self.stats.record_push(stored=True, size=size, transferred=True)
        return PUSH_STORED

    # -- access time ----------------------------------------------------------

    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        entry = self._cache.get(page_id)
        if entry is not None and entry.version == version:
            entry.record_access(now)
            self._record_request(hit=True, size=size, now=now)
            return REQUEST_HIT
        if entry is not None:
            # Stale copy: the fresh version is fetched and forwarded,
            # but SUB performs no access-time placement (§3.2), so the
            # cached bytes are NOT updated; the copy stays stale.
            entry.record_access(now)
            self._record_request(hit=False, size=size, now=now, stale=True)
            return REQUEST_STALE
        # Push-time-only: forward without caching (§3.2).
        self._record_request(hit=False, size=size, now=now)
        return REQUEST_MISS

    def _value(self, entry: CacheEntry) -> float:
        return sub_value(entry.match_count, entry.cost, entry.size)

    # -- introspection -----------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        return page_id in self._cache

    def cached_version(self, page_id: int) -> int:
        entry = self._cache.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self) -> int:
        return self._cache.used_bytes

    def check_invariants(self) -> None:
        self._cache.check_invariants()
