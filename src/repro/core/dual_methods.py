"""DM — Dual-Methods: one cache, two independent replacement methods (§3.3).

DM labels every cached page with *two* values and considers each value
only in the corresponding module:

* the **push module** runs SUB (eq. 2) over the whole cache — a new
  matched publication may evict any page whose SUB value is lower,
  under SUB's all-or-nothing candidate rule;
* the **access module** runs GD* (eq. 1) over the whole cache — a miss
  always admits the fetched page, evicting by GD* value.

Because both modules operate on the same storage, a page in hot use can
be evicted at push time when few subscriptions match it, and a freshly
pushed page with high predicted use can be evicted on a miss because it
has no access history yet — the interference the Dual-Cache variants
(§3.3, :mod:`repro.core.dual_caches`) were designed to remove.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.entry import CacheEntry, ACCESS_MODULE, PUSH_MODULE
from repro.cache.heap import AddressableHeap
from repro.cache.storage import CacheStorage
from repro.core.policy import (
    PUSH_REFRESHED,
    PUSH_SKIPPED,
    PUSH_STORED,
    REQUEST_HIT,
    REQUEST_MISS,
    REQUEST_MISS_CACHED,
    REQUEST_STALE,
    Policy,
    PushOutcome,
    RequestOutcome,
)
from repro.core.values import gdstar_value, sub_value


class DualMethodsPolicy(Policy):
    """SUB at push time and GD* at access time on one shared cache."""

    name = "dm"

    def __init__(
        self, capacity_bytes: int, cost: float = 1.0, beta: float = 2.0
    ) -> None:
        super().__init__(capacity_bytes, cost)
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)
        self.inflation = 0.0
        self._storage = CacheStorage(capacity_bytes)
        self._push_heap = AddressableHeap()
        self._access_heap = AddressableHeap()

    # -- valuation -------------------------------------------------------

    def _push_value(self, entry: CacheEntry) -> float:
        return sub_value(entry.match_count, entry.cost, entry.size)

    def _access_value(self, entry: CacheEntry) -> float:
        return gdstar_value(
            self.inflation, entry.access_count, entry.cost, entry.size, self.beta
        )

    def _insert(self, entry: CacheEntry) -> None:
        self._storage.add(entry)
        self._push_heap.push(entry.page_id, self._push_value(entry))
        access_value = self._access_value(entry)
        entry.value = access_value
        self._access_heap.push(entry.page_id, access_value)

    def _drop(self, page_id: int) -> CacheEntry:
        self._push_heap.discard(page_id)
        self._access_heap.discard(page_id)
        return self._storage.remove(page_id)

    # -- push time ---------------------------------------------------------

    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        existing = self._storage.get(page_id)
        if existing is not None:
            if existing.version == version:
                return PUSH_SKIPPED
            # Self-refresh of the cache's own stale copy; the SUB-side
            # value is static so only the content changes.
            existing.version = version
            existing.match_count = match_count
            self._push_heap.push(page_id, self._push_value(existing))
            self.stats.record_push(stored=True, size=size, transferred=True)
            return PUSH_REFRESHED

        threshold = sub_value(match_count, self.cost, size)
        if not self._evict_cheaper_by_push_value(size, threshold):
            self.stats.record_push(stored=False, size=size, transferred=False)
            return PUSH_SKIPPED
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            module=PUSH_MODULE,
            last_access_time=now,
        )
        self._insert(entry)
        self.stats.record_push(stored=True, size=size, transferred=True)
        return PUSH_STORED

    def _evict_cheaper_by_push_value(self, size: int, threshold: float) -> bool:
        """SUB's all-or-nothing conditional eviction over the push heap.

        Evictions made by the push module do not touch the GD* inflation
        value — L belongs to the access module.
        """
        if size <= self._storage.free_bytes:
            return True
        if size > self._storage.capacity_bytes:
            return False
        popped: List[Tuple[int, float]] = []
        freed = 0
        needed = size - self._storage.free_bytes
        while freed < needed:
            minimum = self._push_heap.min_priority()
            if minimum is None or minimum >= threshold:
                for page_id, value in popped:
                    self._push_heap.push(page_id, value)
                return False
            page_id, value = self._push_heap.pop()
            popped.append((page_id, value))
            freed += self._storage.get(page_id).size
        for page_id, _value in popped:
            self._access_heap.discard(page_id)
            evicted = self._storage.remove(page_id)
            self._note_eviction(evicted, cause="displaced")
        return True

    # -- access time ----------------------------------------------------------

    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        entry = self._storage.get(page_id)
        if entry is not None and entry.version == version:
            entry.record_access(now)
            value = self._access_value(entry)
            entry.value = value
            self._access_heap.push(page_id, value)
            self._record_request(hit=True, size=size, now=now)
            return REQUEST_HIT

        if entry is not None:
            entry.version = version
            entry.record_access(now)
            value = self._access_value(entry)
            entry.value = value
            self._access_heap.push(page_id, value)
            self._record_request(hit=False, size=size, now=now, stale=True)
            return REQUEST_STALE

        self._record_request(hit=False, size=size, now=now)
        if size > self._storage.capacity_bytes:
            return REQUEST_MISS
        last_value: Optional[float] = None
        while self._storage.free_bytes < size:
            victim_id, victim_value = self._access_heap.pop()
            self._push_heap.discard(victim_id)
            evicted = self._storage.remove(victim_id)
            self._note_eviction(evicted)
            last_value = victim_value
        if last_value is not None:
            self.inflation = last_value
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            access_count=1,
            module=ACCESS_MODULE,
            last_access_time=now,
        )
        self._insert(entry)
        return REQUEST_MISS_CACHED

    def drop_contents(self) -> None:
        self._storage.clear()
        self._push_heap.clear()
        self._access_heap.clear()
        self.inflation = 0.0

    # -- introspection -----------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        return page_id in self._storage

    def cached_version(self, page_id: int) -> int:
        entry = self._storage.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self) -> int:
        return self._storage.used_bytes

    def check_invariants(self) -> None:
        self._storage.check_invariants()
        storage_ids = {entry.page_id for entry in self._storage.entries()}
        for heap_name, heap in (("push", self._push_heap), ("access", self._access_heap)):
            heap_ids = set(heap.keys())
            if heap_ids != storage_ids:
                raise AssertionError(
                    f"{heap_name} heap drift: only-storage={storage_ids - heap_ids} "
                    f"only-heap={heap_ids - storage_ids}"
                )
