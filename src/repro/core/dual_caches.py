"""Dual-cache strategies: DC-FP, DC-AP and DC-LAP (§3.3).

The cache on a proxy is divided into a **Push-Cache (PC)** managed by
SUB and an **Access-Cache (AC)** managed by GD*, so that the two
placement modules never evict each other's pages directly (the
interference problem of Dual-Methods).

* **DC-FP** — fixed partition (50 %/50 % in the paper's experiments).
  A PC page is *moved* into AC on its first access, which may trigger a
  GD* replacement in AC.
* **DC-AP** — adaptive partition.  Storage is *relabeled* instead of
  moved: an accessed PC page's bytes simply become AC bytes (no AC
  replacement), and when SUB cannot place a pushed page, AC pages that
  have not been referenced since the last AC replacement donate their
  storage to PC (evicting those pages), per the paper's placing
  algorithm.
* **DC-LAP** — DC-AP with the PC fraction bounded (25 %–75 % in the
  paper); a repartition that would violate the bounds is not performed
  (pushes fail; accessed PC pages fall back to the DC-FP move).

GD*'s inflation value L belongs to the access module and advances only
on AC evictions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cache.entry import CacheEntry, ACCESS_MODULE, PUSH_MODULE
from repro.core._base import HeapCache
from repro.core.policy import (
    PUSH_REFRESHED,
    PUSH_SKIPPED,
    PUSH_STORED,
    REQUEST_HIT,
    REQUEST_HIT_DROPPED,
    REQUEST_MISS,
    REQUEST_MISS_CACHED,
    REQUEST_STALE,
    REQUEST_STALE_DROPPED,
    Policy,
    PushOutcome,
    RequestOutcome,
)
from repro.core.values import gdstar_value, sub_value


class _DualCacheBase(Policy):
    """Shared plumbing for the DC-* strategies."""

    def __init__(
        self,
        capacity_bytes: int,
        cost: float = 1.0,
        beta: float = 2.0,
        push_fraction: float = 0.5,
    ) -> None:
        super().__init__(capacity_bytes, cost)
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if not 0.0 <= push_fraction <= 1.0:
            raise ValueError(f"push_fraction must be in [0, 1], got {push_fraction}")
        self.beta = float(beta)
        self.inflation = 0.0
        pc_bytes = int(capacity_bytes * push_fraction)
        self.pc = HeapCache(pc_bytes)
        self.ac = HeapCache(capacity_bytes - pc_bytes)

    # -- valuation --------------------------------------------------------

    def _sub_value(self, entry: CacheEntry) -> float:
        return sub_value(entry.match_count, entry.cost, entry.size)

    def _gd_value(self, entry: CacheEntry) -> float:
        return gdstar_value(
            self.inflation, entry.access_count, entry.cost, entry.size, self.beta
        )

    @property
    def push_fraction(self) -> float:
        """Current fraction of total storage assigned to the push cache."""
        if self.capacity_bytes == 0:
            return 0.0
        return self.pc.capacity_bytes / self.capacity_bytes

    # -- AC helpers ----------------------------------------------------------

    def _ac_evict_for(self, size: int) -> bool:
        """Unconditional GD* eviction in AC; updates L; True on success."""
        result = self.ac.evict_for(size)
        if not result.success:
            return False
        for evicted in result.evicted:
            self._note_eviction(evicted)
        if result.last_value is not None:
            self.inflation = result.last_value
        if result.evicted:
            self._on_ac_replacement(result.evicted)
        return True

    def _on_ac_replacement(self, evicted: List[CacheEntry]) -> None:
        """Hook: DC-AP tracks replacement generations here."""

    def _ac_admit(self, entry: CacheEntry) -> bool:
        """Place ``entry`` into AC, evicting by GD* value as needed."""
        entry.module = ACCESS_MODULE
        if not self._ac_evict_for(entry.size):
            return False
        self.ac.add(entry, self._gd_value(entry))
        self._on_ac_insert(entry)
        return True

    def _on_ac_insert(self, entry: CacheEntry) -> None:
        """Hook: DC-AP stamps freshness here."""

    def _ac_touch(self, entry: CacheEntry, now: float) -> None:
        entry.record_access(now)
        self.ac.reprice(entry, self._gd_value(entry))
        self._on_ac_access(entry)

    def _on_ac_access(self, entry: CacheEntry) -> None:
        """Hook: DC-AP refreshes the idle-tracking stamp here."""

    # -- push time (shared by all DC variants) -----------------------------

    def on_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        in_pc = self.pc.get(page_id)
        if in_pc is not None:
            if in_pc.version == version:
                return PUSH_SKIPPED
            in_pc.version = version
            in_pc.match_count = match_count
            self.pc.reprice(in_pc, self._sub_value(in_pc))
            self.stats.record_push(stored=True, size=size, transferred=True)
            return PUSH_REFRESHED
        in_ac = self.ac.get(page_id)
        if in_ac is not None:
            if in_ac.version == version:
                return PUSH_SKIPPED
            # Content refresh of an access-cache resident; ownership
            # and GD* value are unchanged (an update is not an access).
            in_ac.version = version
            in_ac.match_count = match_count
            self.stats.record_push(stored=True, size=size, transferred=True)
            return PUSH_REFRESHED

        stored = self._pc_place(page_id, version, size, match_count, now)
        self.stats.record_push(stored=stored, size=size, transferred=stored)
        return PUSH_STORED if stored else PUSH_SKIPPED

    def _pc_place(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> bool:
        """SUB placement into PC; subclasses may add repartitioning."""
        value = sub_value(match_count, self.cost, size)
        result = self.pc.evict_cheaper_for(size, threshold=value)
        if not result.success:
            return False
        for evicted in result.evicted:
            self._note_eviction(evicted, cause="displaced")
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            module=PUSH_MODULE,
            last_access_time=now,
        )
        self.pc.add(entry, value)
        return True

    # -- access time (shared skeleton; PC-hit handling differs) ---------------

    def on_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        in_pc = self.pc.get(page_id)
        if in_pc is not None:
            if in_pc.version == version:
                self._record_request(hit=True, size=size, now=now)
                cached = self._promote(in_pc, now)
                return REQUEST_HIT if cached else REQUEST_HIT_DROPPED
            # Stale in PC: fetch fresh bytes, refresh, then promote —
            # the page is referenced now, so it belongs to AC.
            in_pc.version = version
            self._record_request(hit=False, size=size, now=now, stale=True)
            cached = self._promote(in_pc, now)
            return REQUEST_STALE if cached else REQUEST_STALE_DROPPED

        in_ac = self.ac.get(page_id)
        if in_ac is not None:
            if in_ac.version == version:
                self._ac_touch(in_ac, now)
                self._record_request(hit=True, size=size, now=now)
                return REQUEST_HIT
            in_ac.version = version
            self._ac_touch(in_ac, now)
            self._record_request(hit=False, size=size, now=now, stale=True)
            return REQUEST_STALE

        self._record_request(hit=False, size=size, now=now)
        entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            access_count=1,
            last_access_time=now,
        )
        cached = self._ac_admit(entry)
        return REQUEST_MISS_CACHED if cached else REQUEST_MISS

    def _promote(self, entry: CacheEntry, now: float) -> bool:
        """Handle the first access to a PC resident.  Returns whether the
        page is still cached afterwards."""
        raise NotImplementedError

    def _move_pc_entry_to_ac(self, entry: CacheEntry, now: float) -> bool:
        """DC-FP semantics: physically move the page into AC space."""
        self.pc.remove(entry.page_id)
        entry.record_access(now)
        return self._ac_admit(entry)

    def drop_contents(self) -> None:
        """Cold restart: both partitions empty out.  Partition *sizes*
        persist (they are configuration in DC-FP; for the adaptive
        variants the learnt split is the best available restart point)."""
        self.pc.clear()
        self.ac.clear()
        self.inflation = 0.0

    # -- introspection -----------------------------------------------------------

    def contains(self, page_id: int) -> bool:
        return page_id in self.pc or page_id in self.ac

    def cached_version(self, page_id: int) -> int:
        entry = self.pc.get(page_id) or self.ac.get(page_id)
        if entry is None:
            raise KeyError(f"page {page_id} not cached")
        return entry.version

    @property
    def used_bytes(self) -> int:
        return self.pc.used_bytes + self.ac.used_bytes

    def check_invariants(self) -> None:
        self.pc.check_invariants()
        self.ac.check_invariants()
        total = self.pc.capacity_bytes + self.ac.capacity_bytes
        if total != self.capacity_bytes:
            raise AssertionError(
                f"partition drift: pc={self.pc.capacity_bytes} "
                f"ac={self.ac.capacity_bytes} total={self.capacity_bytes}"
            )
        overlap = set(self.pc.heap.keys()) & set(self.ac.heap.keys())
        if overlap:
            raise AssertionError(f"pages cached in both partitions: {overlap}")


class DualCacheFixedPolicy(_DualCacheBase):
    """DC-FP — dual caches with a fixed partition (§3.3)."""

    name = "dc-fp"

    def _promote(self, entry: CacheEntry, now: float) -> bool:
        return self._move_pc_entry_to_ac(entry, now)


class DualCacheAdaptivePolicy(_DualCacheBase):
    """DC-AP / DC-LAP — dual caches with an adaptive partition (§3.3).

    With the default unbounded fractions this is DC-AP; passing
    ``lower_fraction=0.25, upper_fraction=0.75`` gives DC-LAP.  The
    partition adapts by *relabeling* storage:

    * an accessed PC page's bytes are relabeled as AC (no AC
      replacement is triggered), and
    * when SUB cannot place a pushed page in PC, AC pages that have not
      been referenced since the last AC replacement are evicted
      cheapest-GD*-value-first and their bytes relabeled as PC.
    """

    name = "dc-ap"

    def __init__(
        self,
        capacity_bytes: int,
        cost: float = 1.0,
        beta: float = 2.0,
        push_fraction: float = 0.5,
        lower_fraction: float = 0.0,
        upper_fraction: float = 1.0,
    ) -> None:
        if not 0.0 <= lower_fraction <= upper_fraction <= 1.0:
            raise ValueError(
                f"need 0 <= lower <= upper <= 1, got "
                f"[{lower_fraction}, {upper_fraction}]"
            )
        if not lower_fraction <= push_fraction <= upper_fraction:
            raise ValueError(
                f"push_fraction {push_fraction} outside "
                f"[{lower_fraction}, {upper_fraction}]"
            )
        super().__init__(capacity_bytes, cost, beta, push_fraction)
        self.lower_fraction = float(lower_fraction)
        self.upper_fraction = float(upper_fraction)
        if lower_fraction > 0.0 or upper_fraction < 1.0:
            self.name = "dc-lap"
        # Idle tracking: an AC entry is an eviction/donation candidate
        # when it has not been accessed since the last AC replacement.
        self._ac_generation = 0
        self._stamps: dict = {}
        self._fresh_bytes = 0

    # -- idle tracking hooks ------------------------------------------------

    def _on_ac_insert(self, entry: CacheEntry) -> None:
        self._stamps[entry.page_id] = self._ac_generation
        self._fresh_bytes += entry.size

    def _on_ac_access(self, entry: CacheEntry) -> None:
        if self._stamps.get(entry.page_id) != self._ac_generation:
            self._stamps[entry.page_id] = self._ac_generation
            self._fresh_bytes += entry.size

    def _on_ac_replacement(self, evicted: List[CacheEntry]) -> None:
        # A replacement round begins a new generation: every surviving
        # AC entry becomes idle until accessed again.
        for entry in evicted:
            self._stamps.pop(entry.page_id, None)
        self._ac_generation += 1
        self._fresh_bytes = 0

    @property
    def _idle_bytes(self) -> int:
        """Bytes of AC entries not accessed since the last replacement."""
        return self.ac.used_bytes - self._fresh_bytes

    def _is_idle(self, page_id: int) -> bool:
        return self._stamps.get(page_id) != self._ac_generation

    # -- repartition: AC -> PC at push time -----------------------------------

    def _pc_place(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> bool:
        if super()._pc_place(page_id, version, size, match_count, now):
            return True
        return self._pc_place_with_donation(page_id, version, size, match_count, now)

    def _pc_place_with_donation(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> bool:
        """The paper's DC-AP placing algorithm: grow PC from idle AC pages."""
        if self._idle_bytes < size:
            return False
        donated: List[CacheEntry] = []
        set_aside: List[Tuple[int, float]] = []
        pc_free = self.pc.free_bytes
        feasible = True
        while pc_free + sum(e.size for e in donated) < size:
            minimum = self.ac.heap.min_priority()
            if minimum is None:
                feasible = False
                break
            victim_id, victim_value = self.ac.heap.pop()
            if not self._is_idle(victim_id):
                set_aside.append((victim_id, victim_value))
                continue
            victim = self.ac.get(victim_id)
            donated.append(victim)
            new_pc = self.pc.capacity_bytes + sum(e.size for e in donated)
            if new_pc / max(1, self.capacity_bytes) > self.upper_fraction:
                donated.pop()
                set_aside.append((victim_id, victim_value))
                feasible = False
                break
        # Fresh pages that surfaced during the scan go back untouched.
        for aside_id, aside_value in set_aside:
            self.ac.heap.push(aside_id, aside_value)
        if not feasible:
            for entry in donated:
                self.ac.heap.push(entry.page_id, entry.value)
            return False
        # Commit: evict donors from AC, relabel their bytes as PC.
        moved_bytes = 0
        for entry in donated:
            self.ac.storage.remove(entry.page_id)
            self._stamps.pop(entry.page_id, None)
            self._note_eviction(entry, cause="repartition")
            moved_bytes += entry.size
        self.ac.storage.resize(self.ac.capacity_bytes - moved_bytes)
        self.pc.storage.resize(self.pc.capacity_bytes + moved_bytes)
        new_entry = CacheEntry(
            page_id=page_id,
            version=version,
            size=size,
            cost=self.cost,
            match_count=match_count,
            module=PUSH_MODULE,
            last_access_time=now,
        )
        self.pc.add(new_entry, sub_value(match_count, self.cost, size))
        return True

    # -- repartition: PC -> AC at access time ----------------------------------

    def drop_contents(self) -> None:
        super().drop_contents()
        self._stamps.clear()
        self._fresh_bytes = 0
        self._ac_generation += 1

    def _promote(self, entry: CacheEntry, now: float) -> bool:
        """Relabel the accessed PC page's storage as AC (no replacement).

        Falls back to the DC-FP physical move when shrinking PC below
        the lower bound is not allowed (DC-LAP).
        """
        new_pc = self.pc.capacity_bytes - entry.size
        if new_pc / max(1, self.capacity_bytes) < self.lower_fraction:
            return self._move_pc_entry_to_ac(entry, now)
        self.pc.remove(entry.page_id)
        self.pc.storage.resize(new_pc)
        self.ac.storage.resize(self.ac.capacity_bytes + entry.size)
        entry.record_access(now)
        entry.module = ACCESS_MODULE
        self.ac.add(entry, self._gd_value(entry))
        self._on_ac_insert(entry)
        return True
