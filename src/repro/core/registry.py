"""Strategy registry: build policies by their paper names.

The registry maps the names used throughout the paper (and this
reproduction's experiment configs) to constructor callables.  Every
constructor accepts ``capacity_bytes`` and ``cost`` plus the
strategy-specific keyword arguments listed in :data:`STRATEGIES`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.policy import Policy
from repro.core.gdstar import GDStarPolicy
from repro.core.classic import LRUPolicy, GDSPolicy, LFUDAPolicy
from repro.core.sub import SubPolicy
from repro.core.single_cache import SingleCacheCombinedPolicy
from repro.core.dual_methods import DualMethodsPolicy
from repro.core.dual_caches import DualCacheFixedPolicy, DualCacheAdaptivePolicy


def _make_sg1(capacity_bytes: int, cost: float = 1.0, beta: float = 2.0) -> Policy:
    return SingleCacheCombinedPolicy(capacity_bytes, cost, mode="sg1", beta=beta)


def _make_sg2(capacity_bytes: int, cost: float = 1.0, beta: float = 2.0) -> Policy:
    return SingleCacheCombinedPolicy(capacity_bytes, cost, mode="sg2", beta=beta)


def _make_sr(capacity_bytes: int, cost: float = 1.0, **_ignored) -> Policy:
    return SingleCacheCombinedPolicy(capacity_bytes, cost, mode="sr")


def _make_dc_fp(
    capacity_bytes: int,
    cost: float = 1.0,
    beta: float = 2.0,
    push_fraction: float = 0.5,
) -> Policy:
    return DualCacheFixedPolicy(
        capacity_bytes, cost, beta=beta, push_fraction=push_fraction
    )


def _make_dc_ap(
    capacity_bytes: int,
    cost: float = 1.0,
    beta: float = 2.0,
    push_fraction: float = 0.5,
) -> Policy:
    return DualCacheAdaptivePolicy(
        capacity_bytes, cost, beta=beta, push_fraction=push_fraction
    )


def _make_dc_lap(
    capacity_bytes: int,
    cost: float = 1.0,
    beta: float = 2.0,
    push_fraction: float = 0.5,
    lower_fraction: float = 0.25,
    upper_fraction: float = 0.75,
) -> Policy:
    return DualCacheAdaptivePolicy(
        capacity_bytes,
        cost,
        beta=beta,
        push_fraction=push_fraction,
        lower_fraction=lower_fraction,
        upper_fraction=upper_fraction,
    )


#: Name -> constructor.  Keys are the paper's strategy names.
STRATEGIES: Dict[str, Callable[..., Policy]] = {
    "gdstar": GDStarPolicy,
    "gd*": GDStarPolicy,
    "sub": SubPolicy,
    "sg1": _make_sg1,
    "sg2": _make_sg2,
    "sr": _make_sr,
    "dm": DualMethodsPolicy,
    "dc-fp": _make_dc_fp,
    "dc-ap": _make_dc_ap,
    "dc-lap": _make_dc_lap,
    "lru": LRUPolicy,
    "gds": GDSPolicy,
    "lfu-da": LFUDAPolicy,
}


def register_strategy(
    name: str, constructor: Callable[..., Policy], uses_beta: bool = False
) -> None:
    """Register a user-defined strategy under ``name``.

    After registration the strategy is constructible through
    :func:`make_policy` and usable as ``SimulationConfig(strategy=name)``
    — see ``examples/custom_policy.py``.  Re-registering a built-in
    name is rejected to avoid silently changing the paper's strategies.
    """
    key = name.lower()
    if key in _BUILTIN_NAMES:
        raise ValueError(f"cannot override built-in strategy {name!r}")
    STRATEGIES[key] = constructor
    if uses_beta:
        global BETA_STRATEGIES
        BETA_STRATEGIES = BETA_STRATEGIES | {key}


def strategy_names(include_aliases: bool = False) -> List[str]:
    """Canonical strategy names (``gd*`` is an alias of ``gdstar``)."""
    names = [name for name in STRATEGIES if include_aliases or name != "gd*"]
    return names


def make_policy(name: str, capacity_bytes: int, cost: float = 1.0, **kwargs) -> Policy:
    """Construct the strategy ``name`` for one proxy.

    Args:
        name: a key of :data:`STRATEGIES` (case-insensitive).
        capacity_bytes: proxy cache capacity.
        cost: fetch cost from the proxy to the publisher.
        **kwargs: strategy-specific options (``beta``, ``push_fraction``,
            ``lower_fraction``/``upper_fraction``, ...).  Strategies
            without a ``beta`` (SUB, LRU, ...) reject unknown options —
            pass only what the strategy takes, or use
            :func:`make_policy_lenient` from experiment code.

    Raises:
        KeyError: for an unknown strategy name.
    """
    key = name.lower()
    if key not in STRATEGIES:
        raise KeyError(
            f"unknown strategy {name!r}; known: {sorted(strategy_names())}"
        )
    return STRATEGIES[key](capacity_bytes, cost, **kwargs)


#: The built-in names (guarded against re-registration).
_BUILTIN_NAMES = frozenset(STRATEGIES)

#: Strategies whose value function uses the GD* beta parameter.
BETA_STRATEGIES = frozenset(
    ["gdstar", "gd*", "sg1", "sg2", "dm", "dc-fp", "dc-ap", "dc-lap"]
)


def make_policy_lenient(
    name: str, capacity_bytes: int, cost: float = 1.0, beta: float = 2.0, **kwargs
) -> Policy:
    """Like :func:`make_policy` but silently drops ``beta`` for
    strategies that do not use it — convenient in sweeps that build
    every strategy from one parameter set."""
    if name.lower() in BETA_STRATEGIES:
        kwargs["beta"] = beta
    return make_policy(name, capacity_bytes, cost, **kwargs)
