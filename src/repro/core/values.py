"""Page value functions (equations 1–5 of the paper).

All strategies price a page from some combination of:

* ``f`` — a frequency term (past accesses, matched subscriptions, or a
  blend; equations 1, 3, 4, 5),
* ``c`` — the cost to fetch the page from the publisher,
* ``s`` — the page size,
* ``L`` — the GD* inflation value capturing access recency,
* ``beta`` — the GD* balance between long-term popularity and
  short-term temporal correlation.

GD*-framework value (eq. 1):  ``V(p) = L + (f·c/s)^(1/beta)``.
SUB value (eq. 2):            ``V(p) = s_subs·c/s``.
SR value (eq. 5):             ``V(p) = (s_subs − a)·c/s``.
"""

from __future__ import annotations


def gdstar_value(
    inflation: float, frequency: float, cost: float, size: int, beta: float
) -> float:
    """Equation 1: ``L + (f·c/s)^(1/beta)``.

    The frequency term may be negative for SG2 (``f = s − a`` when a
    page was accessed more often than it was subscribed to, eq. 4);
    the fractional power is undefined there, so the base is clamped at
    zero — such a page has no predicted future use and sits at the
    inflation floor, making it the next eviction candidate.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    base = frequency * cost / size
    if base <= 0.0:
        return inflation
    return inflation + base ** (1.0 / beta)


def sub_value(match_count: float, cost: float, size: int) -> float:
    """Equation 2: ``s_subs·c/s`` — the SUB push-time value."""
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    return match_count * cost / size


def sr_value(match_count: float, access_count: float, cost: float, size: int) -> float:
    """Equation 5: ``(s_subs − a)·c/s`` — remaining-demand value.

    May be negative once a page has been read more times than it was
    subscribed to; negative values simply sort first for eviction.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    return (match_count - access_count) * cost / size


def sg1_frequency(match_count: float, access_count: float) -> float:
    """Equation 3: ``f = s + a`` (prediction plus history)."""
    return match_count + access_count


def sg2_frequency(match_count: float, access_count: float) -> float:
    """Equation 4: ``f = s − a`` (estimated *remaining* references)."""
    return match_count - access_count
