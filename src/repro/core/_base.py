"""Shared eviction mechanics for heap-ordered caches.

:class:`HeapCache` bundles a :class:`~repro.cache.storage.CacheStorage`
with an :class:`~repro.cache.heap.AddressableHeap` keyed by page value
and implements the two eviction disciplines the strategies need:

* *unconditional* (GD*, §3.1): evict least-valuable pages until the new
  page fits — the new page is always admitted;
* *conditional* (SUB and the single-cache combined schemes, §3.2–3.3):
  only pages **cheaper than the incoming page** are candidates; if the
  candidates (plus free space) cannot make room, nothing is evicted and
  the page is rejected.

Both return the value of the last evicted page so GD*-framework callers
can maintain the inflation value ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cache.entry import CacheEntry
from repro.cache.heap import AddressableHeap
from repro.cache.storage import CacheStorage


@dataclass
class EvictionResult:
    """Outcome of an eviction round.

    Attributes:
        success: enough room was (or already was) available.
        evicted: entries removed, in eviction order.
        last_value: value of the final evicted entry (None if none).
    """

    success: bool
    evicted: Sequence[CacheEntry]
    last_value: Optional[float]


#: Interned no-eviction outcomes.  Placement attempts resolve to one of
#: these far more often than they evict (the page fits, or nothing
#: cheap enough exists), and the replay hot path makes one attempt per
#: miss — sharing the two empty results avoids a dataclass construction
#: per event.  ``evicted`` is an (immutable) empty tuple: callers only
#: iterate it.
_FITS = EvictionResult(success=True, evicted=(), last_value=None)
_REJECTED = EvictionResult(success=False, evicted=(), last_value=None)


class HeapCache:
    """Byte-accounted storage plus a value-ordered eviction heap."""

    __slots__ = ("storage", "heap", "_entries")

    def __init__(self, capacity_bytes: int) -> None:
        self.storage = CacheStorage(capacity_bytes)
        self.heap = AddressableHeap()
        self._entries = self.storage.entries_by_id

    # -- delegation -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.storage)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.storage

    def get(self, page_id: int) -> Optional[CacheEntry]:
        return self.storage.get(page_id)

    @property
    def used_bytes(self) -> int:
        return self.storage.used_bytes

    @property
    def free_bytes(self) -> int:
        return self.storage.free_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.storage.capacity_bytes

    # -- mutation -----------------------------------------------------------

    def add(self, entry: CacheEntry, value: float) -> None:
        """Insert ``entry`` with ``value``; room must already exist."""
        entry.value = value
        self.storage.add(entry)
        self.heap.push(entry.page_id, value)

    def reprice(self, entry: CacheEntry, value: float) -> None:
        """Update the value of a cached entry (e.g. after a hit).

        Dead records from hit-heavy repricing are bounded by the heap's
        own auto-compaction in ``push`` (backing list <= 2x live once it
        crosses the compaction floor), so no extra sweep is needed here.
        """
        entry.value = value
        self.heap.push(entry.page_id, value)

    def remove(self, page_id: int) -> CacheEntry:
        """Remove an entry without counting it as an eviction."""
        self.heap.discard(page_id)
        return self.storage.remove(page_id)

    def clear(self) -> None:
        """Drop every entry at once (cold restart, not an eviction)."""
        self.storage.clear()
        self.heap.clear()

    # -- eviction disciplines ----------------------------------------------

    def evict_for(self, size: int) -> EvictionResult:
        """Unconditional GD*-style eviction: make ``size`` bytes free.

        Fails only when ``size`` exceeds total capacity (nothing is
        evicted in that case).
        """
        storage = self.storage
        if size <= storage.free_bytes:
            return _FITS
        if size > storage.capacity_bytes:
            return _REJECTED
        evicted: List[CacheEntry] = []
        last_value: Optional[float] = None
        while storage.free_bytes < size:
            page_id, value = self.heap.pop()
            entry = storage.remove(page_id)
            evicted.append(entry)
            last_value = value
        return EvictionResult(success=True, evicted=evicted, last_value=last_value)

    def evict_cheaper_for(self, size: int, threshold: float) -> EvictionResult:
        """Conditional eviction: only entries with value < ``threshold``.

        All-or-nothing: if the cheap entries plus existing free space
        cannot fit ``size`` bytes, no entry is evicted and the result is
        a failure.  Implemented as pop-and-rollback so no O(n) scan of
        the cache is needed per placement attempt.

        Runs once per placement attempt (every cache miss under the
        gated policies), so the byte arithmetic reads the storage
        fields directly instead of going through the ``free_bytes``
        property on every probe.
        """
        storage = self.storage
        capacity = storage.capacity_bytes
        free = capacity - storage._used_bytes
        if size <= free:
            return _FITS
        if size > capacity:
            return _REJECTED

        heap = self.heap
        entries = self._entries
        popped: List[Tuple[int, float]] = []
        freed = 0
        needed = size - free
        while freed < needed:
            minimum = heap.min_priority()
            if minimum is None or minimum >= threshold:
                # Not enough cheap pages: roll back.
                for page_id, value in popped:
                    heap.push(page_id, value)
                return _REJECTED
            page_id, value = heap.pop()
            popped.append((page_id, value))
            freed += entries[page_id].size

        evicted = []
        last_value: Optional[float] = None
        for page_id, value in popped:
            evicted.append(storage.remove(page_id))
            last_value = value
        return EvictionResult(success=True, evicted=evicted, last_value=last_value)

    # -- integrity --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify storage/heap agreement (tests and debug)."""
        self.storage.check_invariants()
        storage_ids = {entry.page_id for entry in self.storage.entries()}
        heap_ids = set(self.heap.keys())
        if storage_ids != heap_ids:
            raise AssertionError(
                f"storage/heap drift: only-storage={storage_ids - heap_ids} "
                f"only-heap={heap_ids - storage_ids}"
            )
        for entry in self.storage.entries():
            if self.heap.priority(entry.page_id) != entry.value:
                raise AssertionError(
                    f"value drift for page {entry.page_id}: "
                    f"heap={self.heap.priority(entry.page_id)} entry={entry.value}"
                )
