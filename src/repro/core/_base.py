"""Shared eviction mechanics for heap-ordered caches.

:class:`HeapCache` bundles a :class:`~repro.cache.storage.CacheStorage`
with an :class:`~repro.cache.heap.AddressableHeap` keyed by page value
and implements the two eviction disciplines the strategies need:

* *unconditional* (GD*, §3.1): evict least-valuable pages until the new
  page fits — the new page is always admitted;
* *conditional* (SUB and the single-cache combined schemes, §3.2–3.3):
  only pages **cheaper than the incoming page** are candidates; if the
  candidates (plus free space) cannot make room, nothing is evicted and
  the page is rejected.

Both return the value of the last evicted page so GD*-framework callers
can maintain the inflation value ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cache.entry import CacheEntry
from repro.cache.heap import AddressableHeap
from repro.cache.storage import CacheStorage


@dataclass
class EvictionResult:
    """Outcome of an eviction round.

    Attributes:
        success: enough room was (or already was) available.
        evicted: entries removed, in eviction order.
        last_value: value of the final evicted entry (None if none).
    """

    success: bool
    evicted: List[CacheEntry]
    last_value: Optional[float]


class HeapCache:
    """Byte-accounted storage plus a value-ordered eviction heap."""

    def __init__(self, capacity_bytes: int) -> None:
        self.storage = CacheStorage(capacity_bytes)
        self.heap = AddressableHeap()

    # -- delegation -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.storage)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.storage

    def get(self, page_id: int) -> Optional[CacheEntry]:
        return self.storage.get(page_id)

    @property
    def used_bytes(self) -> int:
        return self.storage.used_bytes

    @property
    def free_bytes(self) -> int:
        return self.storage.free_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.storage.capacity_bytes

    # -- mutation -----------------------------------------------------------

    def add(self, entry: CacheEntry, value: float) -> None:
        """Insert ``entry`` with ``value``; room must already exist."""
        entry.value = value
        self.storage.add(entry)
        self.heap.push(entry.page_id, value)

    def reprice(self, entry: CacheEntry, value: float) -> None:
        """Update the value of a cached entry (e.g. after a hit)."""
        entry.value = value
        self.heap.push(entry.page_id, value)
        # Hit-heavy workloads reprice far more often than they evict,
        # so dead heap records accumulate; compact opportunistically.
        self.heap.maybe_compact()

    def remove(self, page_id: int) -> CacheEntry:
        """Remove an entry without counting it as an eviction."""
        self.heap.discard(page_id)
        return self.storage.remove(page_id)

    def clear(self) -> None:
        """Drop every entry at once (cold restart, not an eviction)."""
        self.storage.clear()
        self.heap.clear()

    # -- eviction disciplines ----------------------------------------------

    def evict_for(self, size: int) -> EvictionResult:
        """Unconditional GD*-style eviction: make ``size`` bytes free.

        Fails only when ``size`` exceeds total capacity (nothing is
        evicted in that case).
        """
        if size <= self.storage.free_bytes:
            return EvictionResult(success=True, evicted=[], last_value=None)
        if size > self.storage.capacity_bytes:
            return EvictionResult(success=False, evicted=[], last_value=None)
        evicted: List[CacheEntry] = []
        last_value: Optional[float] = None
        while self.storage.free_bytes < size:
            page_id, value = self.heap.pop()
            entry = self.storage.remove(page_id)
            evicted.append(entry)
            last_value = value
        return EvictionResult(success=True, evicted=evicted, last_value=last_value)

    def evict_cheaper_for(self, size: int, threshold: float) -> EvictionResult:
        """Conditional eviction: only entries with value < ``threshold``.

        All-or-nothing: if the cheap entries plus existing free space
        cannot fit ``size`` bytes, no entry is evicted and the result is
        a failure.  Implemented as pop-and-rollback so no O(n) scan of
        the cache is needed per placement attempt.
        """
        if size <= self.storage.free_bytes:
            return EvictionResult(success=True, evicted=[], last_value=None)
        if size > self.storage.capacity_bytes:
            return EvictionResult(success=False, evicted=[], last_value=None)

        popped: List[Tuple[int, float]] = []
        freed = 0
        needed = size - self.storage.free_bytes
        while freed < needed:
            minimum = self.heap.min_priority()
            if minimum is None or minimum >= threshold:
                # Not enough cheap pages: roll back.
                for page_id, value in popped:
                    self.heap.push(page_id, value)
                return EvictionResult(success=False, evicted=[], last_value=None)
            page_id, value = self.heap.pop()
            popped.append((page_id, value))
            freed += self.storage.get(page_id).size

        evicted = []
        last_value: Optional[float] = None
        for page_id, value in popped:
            evicted.append(self.storage.remove(page_id))
            last_value = value
        return EvictionResult(success=True, evicted=evicted, last_value=last_value)

    # -- integrity --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify storage/heap agreement (tests and debug)."""
        self.storage.check_invariants()
        storage_ids = {entry.page_id for entry in self.storage.entries()}
        heap_ids = set(self.heap.keys())
        if storage_ids != heap_ids:
            raise AssertionError(
                f"storage/heap drift: only-storage={storage_ids - heap_ids} "
                f"only-heap={heap_ids - storage_ids}"
            )
        for entry in self.storage.entries():
            if self.heap.priority(entry.page_id) != entry.value:
                raise AssertionError(
                    f"value drift for page {entry.page_id}: "
                    f"heap={self.heap.priority(entry.page_id)} entry={entry.value}"
                )
