"""Table 2: relative hit-ratio improvement over GD* (§5.3).

The paper reports, at the 5 % capacity setting and SQ = 1, the relative
improvement of every strategy over the GD* baseline for both Zipf α
values.  The headline claim is that the ALTERNATIVE trace (α = 1.0)
benefits roughly twice as much as NEWS (α = 1.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.report import render_table
from repro.experiments.runner import run_grid
from repro.experiments.spec import ExperimentGrid

#: Column order of the paper's Table 2.
TABLE2_STRATEGIES = ("sub", "sg1", "sg2", "sr", "dm", "dc-fp", "dc-lap")

#: The paper's reported values (%), for side-by-side comparison.
PAPER_TABLE2 = {
    1.5: {"sub": 6, "sg1": 34, "sg2": 50, "sr": 54, "dm": 17, "dc-fp": 37, "dc-lap": 40},
    1.0: {"sub": 47, "sg1": 84, "sg2": 133, "sr": 133, "dm": 34, "dc-fp": 93, "dc-lap": 96},
}


@dataclass
class Table2Result:
    """Measured relative improvements, keyed by α then strategy."""

    improvements: Dict[float, Dict[str, float]] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def table2(scale: float = 1.0, seed: int = 7, capacity: float = 0.05) -> Table2Result:
    """Regenerate Table 2 (relative improvement over GD*, %)."""
    alphas = {"news": 1.5, "alternative": 1.0}
    improvements: Dict[float, Dict[str, float]] = {}
    for trace, alpha in alphas.items():
        grid = ExperimentGrid(
            traces=(trace,),
            strategies=("gdstar",) + TABLE2_STRATEGIES,
            capacities=(capacity,),
        )
        outcome = run_grid(grid, scale=scale, seed=seed)
        improvements[alpha] = {
            strategy: 100.0
            * (outcome.relative_improvement(strategy=strategy) or 0.0)
            for strategy in TABLE2_STRATEGIES
        }

    rows: Dict[str, List[float]] = {}
    for alpha in (1.5, 1.0):
        rows[f"α={alpha} (measured)"] = [
            improvements[alpha][s] for s in TABLE2_STRATEGIES
        ]
        rows[f"α={alpha} (paper)"] = [
            float(PAPER_TABLE2[alpha][s]) for s in TABLE2_STRATEGIES
        ]
    text = render_table(
        f"Table 2 — relative improvement over GD* (%) (capacity = "
        f"{capacity:.0%}, SQ = 1)",
        [s.upper() for s in TABLE2_STRATEGIES],
        rows,
        value_format="{:6.0f}",
    )
    return Table2Result(improvements=improvements, text=text)
