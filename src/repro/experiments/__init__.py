"""Experiment harness: regenerate every table and figure of §5.

One function per experiment, each returning structured results plus an
ASCII rendering matching the paper's rows/series:

=============  ==============================================  =========
Experiment     Function                                        Paper
=============  ==============================================  =========
Fig. 3         :func:`~repro.experiments.figures.figure3`      §5.2
Fig. 4a/4b     :func:`~repro.experiments.figures.figure4`      §5.3
Table 2        :func:`~repro.experiments.tables.table2`        §5.3
Fig. 5a/5b     :func:`~repro.experiments.figures.figure5`      §5.4
Fig. 6a/6b     :func:`~repro.experiments.figures.figure6`      §5.5
Fig. 7a/7b     :func:`~repro.experiments.figures.figure7`      §5.6
β sweep        :func:`~repro.experiments.figures.beta_sweep`   §5.1
=============  ==============================================  =========

All experiments accept ``scale`` (1.0 = the paper's full-size workload;
benchmarks default to a laptop-friendly fraction) and a ``seed``.
"""

from repro.experiments.spec import ExperimentGrid, GridResult, CellKey
from repro.experiments.artifacts import (
    FORMAT_VERSION,
    ArtifactCache,
)
from repro.experiments.runner import (
    trace_for,
    run_cell,
    run_grid,
    paper_beta,
    set_default_artifact_dir,
)
from repro.experiments.report import render_table, render_series
from repro.experiments.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    beta_sweep,
)
from repro.experiments.tables import table2
from repro.experiments.chaos import (
    CHAOS_STRATEGIES,
    DEFAULT_CHAOS,
    ChaosResult,
    run_chaos,
)
from repro.experiments.calibrate import (
    CalibrationResult,
    calibrate_all,
    calibrate_beta,
    trace_prefix,
)
from repro.experiments.sensitivity import (
    RobustComparison,
    SeedSweep,
    compare_across_seeds,
    seed_sweep,
)

__all__ = [
    "ExperimentGrid",
    "GridResult",
    "CellKey",
    "FORMAT_VERSION",
    "ArtifactCache",
    "trace_for",
    "run_cell",
    "run_grid",
    "paper_beta",
    "set_default_artifact_dir",
    "render_table",
    "render_series",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "beta_sweep",
    "table2",
    "CHAOS_STRATEGIES",
    "DEFAULT_CHAOS",
    "ChaosResult",
    "run_chaos",
    "CalibrationResult",
    "calibrate_all",
    "calibrate_beta",
    "trace_prefix",
    "RobustComparison",
    "SeedSweep",
    "compare_across_seeds",
    "seed_sweep",
]
