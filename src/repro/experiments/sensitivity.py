"""Seed-sensitivity analysis.

The paper reports single numbers; a reproduction should know how much
of a result is signal and how much is the seed.  This module re-runs a
cell across several root seeds (new workload, subscription table and
topology each time) and reports mean, standard deviation and range of
the hit ratio, plus the same for a comparison strategy so relative
claims ("SG2 beats GD*") can be tested across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.runner import run_cell
from repro.experiments.spec import CellKey


@dataclass
class SeedSweep:
    """Hit ratios of one cell across seeds."""

    key: CellKey
    seeds: List[int]
    hit_ratios: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.hit_ratios))

    @property
    def std(self) -> float:
        return float(np.std(self.hit_ratios))

    @property
    def spread(self) -> float:
        return float(max(self.hit_ratios) - min(self.hit_ratios))

    def render(self) -> str:
        return (
            f"{self.key.strategy:>7s} on {self.key.trace}: "
            f"H = {100 * self.mean:.1f}% ± {100 * self.std:.1f} "
            f"(range {100 * self.spread:.1f} over {len(self.seeds)} seeds)"
        )


def seed_sweep(
    key: CellKey,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 0.1,
) -> SeedSweep:
    """Run ``key`` once per seed and collect the hit ratios."""
    ratios = [
        run_cell(key, scale=scale, seed=seed).hit_ratio for seed in seeds
    ]
    return SeedSweep(key=key, seeds=list(seeds), hit_ratios=ratios)


@dataclass
class RobustComparison:
    """A relative claim evaluated per seed."""

    better: SeedSweep
    baseline: SeedSweep

    @property
    def wins(self) -> int:
        """Seeds on which ``better`` actually beat ``baseline``."""
        return sum(
            1
            for a, b in zip(self.better.hit_ratios, self.baseline.hit_ratios)
            if a > b
        )

    @property
    def mean_relative_gain(self) -> float:
        gains = [
            a / b - 1.0
            for a, b in zip(self.better.hit_ratios, self.baseline.hit_ratios)
            if b > 0
        ]
        return float(np.mean(gains)) if gains else 0.0

    def render(self) -> str:
        total = len(self.better.seeds)
        return (
            f"{self.better.key.strategy} vs {self.baseline.key.strategy} "
            f"({self.better.key.trace}): wins {self.wins}/{total} seeds, "
            f"mean relative gain {100 * self.mean_relative_gain:+.0f}%"
        )


def compare_across_seeds(
    strategy: str,
    baseline: str = "gdstar",
    trace: str = "news",
    capacity: float = 0.05,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 0.1,
) -> RobustComparison:
    """Evaluate "``strategy`` beats ``baseline``" on every seed."""
    better = seed_sweep(
        CellKey(trace, strategy, capacity), seeds=seeds, scale=scale
    )
    base = seed_sweep(
        CellKey(trace, baseline, capacity), seeds=seeds, scale=scale
    )
    return RobustComparison(better=better, baseline=base)
