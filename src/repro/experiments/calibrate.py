"""β calibration (§5.1).

The GD* parameter β balances long-term popularity against short-term
temporal correlation and "may be different from trace to trace"; the
paper notes that when β is learned on-line from past accesses it is
quite stable for a given trace.  This module provides that procedure:
evaluate a strategy on a *prefix* of the trace across a β grid, pick
the best, and (optionally) verify the choice holds on the remainder.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.system.config import SimulationConfig
from repro.system.simulator import run_simulation
from repro.workload.trace import Workload

#: The paper's β grid (§5.1: "varying β from 0.0625 to 4").
DEFAULT_BETAS = (0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0)


def trace_prefix(workload: Workload, fraction: float) -> Workload:
    """The first ``fraction`` of a workload, by time.

    Publish and request streams are truncated at the cut-off so the
    prefix is a valid (shorter-horizon) workload of its own.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return workload
    cutoff = workload.config.horizon * fraction
    config = dataclasses.replace(workload.config, horizon=cutoff)
    return Workload(
        config=config,
        pages=workload.pages,
        publishes=[e for e in workload.publishes if e.time <= cutoff],
        requests=[r for r in workload.requests if r.time <= cutoff],
        label=workload.label,
    )


@dataclass
class CalibrationResult:
    """Outcome of a β calibration run."""

    strategy: str
    best_beta: float
    #: beta -> hit ratio on the calibration prefix.
    prefix_scores: Dict[float, float]
    #: hit ratio of the chosen beta on the full trace (when verified).
    verified_hit_ratio: Optional[float] = None


def calibrate_beta(
    workload: Workload,
    strategy: str,
    capacity_fraction: float = 0.05,
    betas: Sequence[float] = DEFAULT_BETAS,
    prefix_fraction: float = 0.25,
    verify: bool = False,
    seed: int = 7,
) -> CalibrationResult:
    """Pick the β maximizing the hit ratio on a trace prefix.

    Args:
        workload: the full trace; calibration only sees its prefix.
        strategy: a GD*-framework strategy name ("gdstar", "sg1", ...).
        capacity_fraction: cache capacity setting.
        betas: the candidate grid.
        prefix_fraction: share of the horizon used for calibration.
        verify: also run the chosen β on the full trace.
        seed: simulation seed (subscription noise, topology).
    """
    prefix = trace_prefix(workload, prefix_fraction)
    scores: Dict[float, float] = {}
    for beta in betas:
        config = SimulationConfig(
            strategy=strategy,
            strategy_options={"beta": float(beta)},
            capacity_fraction=capacity_fraction,
            seed=seed,
        )
        scores[float(beta)] = run_simulation(prefix, config).hit_ratio
    best_beta = max(scores, key=lambda beta: (scores[beta], -beta))
    verified = None
    if verify:
        config = SimulationConfig(
            strategy=strategy,
            strategy_options={"beta": best_beta},
            capacity_fraction=capacity_fraction,
            seed=seed,
        )
        verified = run_simulation(workload, config).hit_ratio
    return CalibrationResult(
        strategy=strategy,
        best_beta=best_beta,
        prefix_scores=scores,
        verified_hit_ratio=verified,
    )


def calibrate_all(
    workload: Workload,
    strategies: Sequence[str] = ("gdstar", "sg1", "sg2"),
    capacity_fraction: float = 0.05,
    betas: Sequence[float] = DEFAULT_BETAS,
    prefix_fraction: float = 0.25,
    seed: int = 7,
) -> Dict[str, CalibrationResult]:
    """Calibrate every GD*-framework strategy the paper tunes."""
    return {
        strategy: calibrate_beta(
            workload,
            strategy,
            capacity_fraction=capacity_fraction,
            betas=betas,
            prefix_fraction=prefix_fraction,
            seed=seed,
        )
        for strategy in strategies
    }
