"""Experiment grids: cartesian sweeps over the §5 knobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.system.config import PushingScheme
from repro.system.metrics import SimulationResult


@dataclass(frozen=True)
class CellKey:
    """Coordinates of one simulation run inside a grid."""

    trace: str
    strategy: str
    capacity: float
    sq: float = 1.0
    pushing: str = PushingScheme.WHEN_NECESSARY.value

    def __str__(self) -> str:
        return (
            f"{self.trace}/{self.strategy}"
            f"@cap={self.capacity:g},sq={self.sq:g},{self.pushing}"
        )


@dataclass(frozen=True)
class ExperimentGrid:
    """A cartesian sweep (the paper's experiments are all grids)."""

    traces: Tuple[str, ...] = ("news",)
    strategies: Tuple[str, ...] = ("gdstar",)
    capacities: Tuple[float, ...] = (0.05,)
    sqs: Tuple[float, ...] = (1.0,)
    pushing_schemes: Tuple[str, ...] = (PushingScheme.WHEN_NECESSARY.value,)

    def cells(self) -> List[CellKey]:
        """All cells in deterministic order."""
        return [
            CellKey(trace, strategy, capacity, sq, pushing)
            for trace in self.traces
            for strategy in self.strategies
            for capacity in self.capacities
            for sq in self.sqs
            for pushing in self.pushing_schemes
        ]

    @property
    def cell_count(self) -> int:
        return (
            len(self.traces)
            * len(self.strategies)
            * len(self.capacities)
            * len(self.sqs)
            * len(self.pushing_schemes)
        )


@dataclass
class GridResult:
    """Results of a grid run, addressable by cell."""

    grid: ExperimentGrid
    scale: float
    seed: int
    results: Dict[CellKey, SimulationResult] = field(default_factory=dict)

    def get(self, **kwargs) -> SimulationResult:
        """Fetch one result by partial cell coordinates.

        Unspecified coordinates default to the grid's sole value; it is
        an error if the coordinate is ambiguous.
        """
        def sole(options, name):
            if len(options) != 1:
                raise KeyError(
                    f"{name} is ambiguous ({options}); pass {name}=..."
                )
            return options[0]

        key = CellKey(
            trace=kwargs.get("trace") or sole(self.grid.traces, "trace"),
            strategy=kwargs.get("strategy")
            or sole(self.grid.strategies, "strategy"),
            capacity=kwargs.get("capacity")
            or sole(self.grid.capacities, "capacity"),
            sq=kwargs.get("sq", None)
            if kwargs.get("sq") is not None
            else sole(self.grid.sqs, "sq"),
            pushing=kwargs.get("pushing")
            or sole(self.grid.pushing_schemes, "pushing"),
        )
        return self.results[key]

    def hit_ratio(self, **kwargs) -> float:
        return self.get(**kwargs).hit_ratio

    def relative_improvement(
        self, baseline: str = "gdstar", **kwargs
    ) -> Optional[float]:
        """Relative hit-ratio improvement over ``baseline`` (Table 2)."""
        target = self.get(**kwargs).hit_ratio
        base = self.get(**{**kwargs, "strategy": baseline}).hit_ratio
        if base == 0.0:
            return None
        return target / base - 1.0
