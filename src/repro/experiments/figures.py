"""Per-figure experiment definitions (§5.2–§5.6).

Each function runs the grid behind one figure of the paper and returns
a :class:`FigureResult` with the structured numbers plus a text
rendering whose rows/series mirror the figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.system.config import PushingScheme
from repro.experiments.report import render_series, render_table
from repro.experiments.runner import run_cell, run_grid
from repro.experiments.spec import CellKey, ExperimentGrid

#: The strategy line-up of Fig. 4/5 (§5.3, §5.4).
MAIN_STRATEGIES = ("gdstar", "sub", "sg1", "sg2", "sr", "dc-lap")
#: The Dual-* line-up of Fig. 3 (§5.2).
DUAL_STRATEGIES = ("gdstar", "dm", "dc-fp", "dc-ap", "dc-lap")
#: The three capacity settings of §5.1.
CAPACITIES = (0.01, 0.05, 0.10)
#: The subscription-quality sweep of Fig. 5 (§5.4).
SQS = (0.25, 0.5, 0.75, 1.0)


@dataclass
class FigureResult:
    """Structured data plus rendering for one figure."""

    name: str
    #: row label -> series of values (figure-specific meaning).
    data: Dict[str, List[float]] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def figure3(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Fig. 3: Dual-Methods vs Dual-Caches hit ratios (NEWS).

    Rows are strategies, columns the 1 %/5 %/10 % capacity settings.
    """
    grid = ExperimentGrid(
        traces=("news",), strategies=DUAL_STRATEGIES, capacities=CAPACITIES
    )
    outcome = run_grid(grid, scale=scale, seed=seed)
    data = {
        strategy: [
            100.0 * outcome.hit_ratio(strategy=strategy, capacity=capacity)
            for capacity in CAPACITIES
        ]
        for strategy in DUAL_STRATEGIES
    }
    text = render_table(
        "Figure 3 — hit ratio (%) of Dual-Methods and Dual-Caches (NEWS)",
        [f"{int(c * 100)}%" for c in CAPACITIES],
        data,
    )
    return FigureResult(name="figure3", data=data, text=text)


def figure4(scale: float = 1.0, seed: int = 7) -> Dict[str, FigureResult]:
    """Fig. 4a/4b: hit ratios of all methods, SQ = 1, both traces."""
    results = {}
    for trace in ("news", "alternative"):
        grid = ExperimentGrid(
            traces=(trace,), strategies=MAIN_STRATEGIES, capacities=CAPACITIES
        )
        outcome = run_grid(grid, scale=scale, seed=seed)
        data = {
            strategy: [
                100.0 * outcome.hit_ratio(strategy=strategy, capacity=capacity)
                for capacity in CAPACITIES
            ]
            for strategy in MAIN_STRATEGIES
        }
        panel = "a" if trace == "news" else "b"
        text = render_table(
            f"Figure 4{panel} — hit ratio (%) of all methods "
            f"(SQ = 1, {trace.upper()})",
            [f"{int(c * 100)}%" for c in CAPACITIES],
            data,
        )
        results[trace] = FigureResult(name=f"figure4{panel}", data=data, text=text)
    return results


def figure5(scale: float = 1.0, seed: int = 7) -> Dict[str, FigureResult]:
    """Fig. 5a/5b: hit ratio vs subscription quality (capacity 5 %)."""
    results = {}
    for trace in ("news", "alternative"):
        grid = ExperimentGrid(
            traces=(trace,),
            strategies=MAIN_STRATEGIES,
            capacities=(0.05,),
            sqs=SQS,
        )
        outcome = run_grid(grid, scale=scale, seed=seed)
        data = {
            strategy: [
                100.0 * outcome.hit_ratio(strategy=strategy, sq=sq)
                for sq in SQS
            ]
            for strategy in MAIN_STRATEGIES
        }
        panel = "a" if trace == "news" else "b"
        text = render_table(
            f"Figure 5{panel} — hit ratio (%) vs SQ (capacity 5 %, "
            f"{trace.upper()})",
            [f"SQ={sq:g}" for sq in SQS],
            data,
        )
        results[trace] = FigureResult(name=f"figure5{panel}", data=data, text=text)
    return results


def figure6(scale: float = 1.0, seed: int = 7) -> Dict[str, FigureResult]:
    """Fig. 6a/6b: hourly hit ratio of SG2, SUB, GD* (SQ = 1, 5 %)."""
    results = {}
    for trace in ("news", "alternative"):
        data: Dict[str, List[float]] = {}
        for strategy in ("sg2", "sub", "gdstar"):
            result = run_cell(
                CellKey(trace=trace, strategy=strategy, capacity=0.05),
                scale=scale,
                seed=seed,
            )
            data[strategy] = [100.0 * h for h in result.hourly_hit_ratio()]
        panel = "a" if trace == "news" else "b"
        text = render_series(
            f"Figure 6{panel} — average H hourly (SQ = 1, capacity 5 %, "
            f"{trace.upper()})",
            data,
            maximum=100.0,
            sample_every=2,
        )
        results[trace] = FigureResult(name=f"figure6{panel}", data=data, text=text)
    return results


def figure7(scale: float = 1.0, seed: int = 7) -> Dict[str, FigureResult]:
    """Fig. 7a/7b: hourly traffic under the two pushing schemes (NEWS).

    Traffic counts pages moved publisher→proxies (pushes + fetches).
    """
    results = {}
    for scheme in (PushingScheme.ALWAYS, PushingScheme.WHEN_NECESSARY):
        data: Dict[str, List[float]] = {}
        for strategy in ("sub", "sg2", "gdstar"):
            result = run_cell(
                CellKey(
                    trace="news",
                    strategy=strategy,
                    capacity=0.05,
                    pushing=scheme.value,
                ),
                scale=scale,
                seed=seed,
            )
            data[strategy] = [float(x) for x in result.hourly_traffic_pages()]
        panel = "a" if scheme is PushingScheme.ALWAYS else "b"
        text = render_series(
            f"Figure 7{panel} — traffic in pages/hour "
            f"({scheme.value} pushing, SQ = 1, capacity 5 %, NEWS)",
            data,
            sample_every=2,
        )
        results[scheme.value] = FigureResult(
            name=f"figure7{panel}", data=data, text=text
        )
    return results


def beta_sweep(
    scale: float = 1.0,
    seed: int = 7,
    betas: Sequence[float] = (0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0),
    trace: str = "news",
    capacity: float = 0.05,
) -> FigureResult:
    """§5.1's β calibration: GD*, SG1, SG2 over β ∈ [0.0625, 4]."""
    data: Dict[str, List[float]] = {}
    for strategy in ("gdstar", "sg1", "sg2"):
        row = []
        for beta in betas:
            result = run_cell(
                CellKey(trace=trace, strategy=strategy, capacity=capacity),
                scale=scale,
                seed=seed,
                beta=beta,
            )
            row.append(100.0 * result.hit_ratio)
        data[strategy] = row
    text = render_table(
        f"β sweep — hit ratio (%) vs β ({trace.upper()}, capacity "
        f"{capacity:.0%})",
        [f"β={beta:g}" for beta in betas],
        data,
    )
    return FigureResult(name="beta_sweep", data=data, text=text)
