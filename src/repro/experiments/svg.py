"""Dependency-free SVG rendering of the paper's figures.

The experiment harness produces structured data
(:class:`~repro.experiments.figures.FigureResult`); this module turns
it into standalone SVG files — grouped bar charts for the hit-ratio
figures (3, 4, 5) and line charts for the time series (6, 7) — so a
reproduction run can ship figure files next to the paper's.

Pure string assembly, no plotting library: the charts are simple and
the environment is offline by design.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: A colour-blind-safe qualitative palette (Okabe–Ito).
PALETTE = (
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#D55E00",
    "#CC79A7",
    "#56B4E9",
    "#F0E442",
    "#000000",
)

_MARGIN_LEFT = 60
_MARGIN_RIGHT = 20
_MARGIN_TOP = 40
_MARGIN_BOTTOM = 60


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _header(width: int, height: int, title: str) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{_escape(title)}</text>',
    ]


def _y_axis(height: int, plot_height: float, maximum: float, unit: str) -> List[str]:
    parts = []
    ticks = 5
    for tick in range(ticks + 1):
        value = maximum * tick / ticks
        y = _MARGIN_TOP + plot_height * (1.0 - tick / ticks)
        parts.append(
            f'<line x1="{_MARGIN_LEFT - 4}" y1="{y:.1f}" '
            f'x2="{_MARGIN_LEFT}" y2="{y:.1f}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{value:g}{unit}</text>'
        )
        if tick:
            parts.append(
                f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" x2="100%" '
                f'y2="{y:.1f}" stroke="#dddddd" stroke-width="0.5"/>'
            )
    return parts


def _legend(series_names: Sequence[str], width: int) -> List[str]:
    parts = []
    x = _MARGIN_LEFT
    y = 32
    for index, name in enumerate(series_names):
        colour = PALETTE[index % len(PALETTE)]
        parts.append(
            f'<rect x="{x}" y="{y - 9}" width="10" height="10" fill="{colour}"/>'
        )
        parts.append(f'<text x="{x + 14}" y="{y}">{_escape(name)}</text>')
        x += 14 + 8 * len(name) + 18
    return parts


def grouped_bar_chart(
    title: str,
    column_names: Sequence[str],
    rows: Dict[str, Sequence[float]],
    width: int = 640,
    height: int = 360,
    y_max: float = 100.0,
    unit: str = "",
) -> str:
    """Render ``{series: values-per-column}`` as a grouped bar chart.

    Matches the layout of the paper's Figures 3-5: one group per
    x-axis setting (capacity or SQ), one bar per strategy.
    """
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM
    group_count = len(column_names)
    series_names = list(rows)
    bar_slots = max(1, len(series_names))
    group_width = plot_width / max(1, group_count)
    bar_width = 0.8 * group_width / bar_slots

    parts = _header(width, height, title)
    parts += _y_axis(height, plot_height, y_max, unit)
    parts += _legend(series_names, width)

    for group_index, column in enumerate(column_names):
        group_x = _MARGIN_LEFT + group_index * group_width
        parts.append(
            f'<text x="{group_x + group_width / 2:.1f}" '
            f'y="{_MARGIN_TOP + plot_height + 18}" '
            f'text-anchor="middle">{_escape(str(column))}</text>'
        )
        for series_index, name in enumerate(series_names):
            value = rows[name][group_index]
            if value is None:
                continue
            clamped = max(0.0, min(float(value), y_max))
            bar_height = plot_height * clamped / y_max
            x = group_x + 0.1 * group_width + series_index * bar_width
            y = _MARGIN_TOP + plot_height - bar_height
            colour = PALETTE[series_index % len(PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_width:.1f}" '
                f'height="{bar_height:.1f}" fill="{colour}">'
                f"<title>{_escape(name)} @ {_escape(str(column))}: "
                f"{value:.1f}</title></rect>"
            )

    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + plot_height}" '
        f'x2="{width - _MARGIN_RIGHT}" y2="{_MARGIN_TOP + plot_height}" '
        f'stroke="black"/>'
    )
    parts.append("</svg>")
    return "\n".join(parts)


def line_chart(
    title: str,
    series: Dict[str, Sequence[float]],
    width: int = 720,
    height: int = 360,
    y_max: float = None,
    x_label: str = "hour",
    unit: str = "",
) -> str:
    """Render per-hour series as a line chart (Figures 6 and 7)."""
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM
    longest = max((len(values) for values in series.values()), default=0)
    if y_max is None:
        peak = max(
            (max(values) for values in series.values() if len(values)),
            default=1.0,
        )
        y_max = max(1.0, 1.1 * peak)

    parts = _header(width, height, title)
    parts += _y_axis(height, plot_height, y_max, unit)
    parts += _legend(list(series), width)

    for series_index, (name, values) in enumerate(series.items()):
        if not len(values):
            continue
        colour = PALETTE[series_index % len(PALETTE)]
        points = []
        for position, value in enumerate(values):
            x = _MARGIN_LEFT + plot_width * position / max(1, longest - 1)
            clamped = max(0.0, min(float(value), y_max))
            y = _MARGIN_TOP + plot_height * (1.0 - clamped / y_max)
            points.append(f"{x:.1f},{y:.1f}")
        parts.append(
            f'<polyline fill="none" stroke="{colour}" stroke-width="1.5" '
            f'points="{" ".join(points)}"><title>{_escape(name)}</title>'
            f"</polyline>"
        )

    # x axis with day ticks (24-hour steps for 7-day series).
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + plot_height}" '
        f'x2="{width - _MARGIN_RIGHT}" y2="{_MARGIN_TOP + plot_height}" '
        f'stroke="black"/>'
    )
    step = 24 if longest > 48 else max(1, longest // 8)
    for hour in range(0, longest, step):
        x = _MARGIN_LEFT + plot_width * hour / max(1, longest - 1)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_TOP + plot_height}" '
            f'x2="{x:.1f}" y2="{_MARGIN_TOP + plot_height + 4}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_MARGIN_TOP + plot_height + 18}" '
            f'text-anchor="middle">{hour}</text>'
        )
    parts.append(
        f'<text x="{width / 2}" y="{height - 10}" text-anchor="middle">'
        f"{_escape(x_label)}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def figure_to_svg(figure_result, kind: str = "bars", **kwargs) -> str:
    """Render a :class:`FigureResult` to SVG.

    ``kind`` is ``"bars"`` for the capacity/SQ figures and ``"lines"``
    for the hourly series.
    """
    name = figure_result.name
    data = figure_result.data
    if kind == "bars":
        first = next(iter(data.values()))
        columns = kwargs.pop("column_names", None) or [
            str(index) for index in range(len(first))
        ]
        return grouped_bar_chart(name, columns, data, **kwargs)
    if kind == "lines":
        return line_chart(name, data, **kwargs)
    raise ValueError(f"unknown chart kind: {kind!r}")
