"""On-disk artifact cache for expensive derived inputs.

Traces, match tables and topologies are deterministic functions of
their generation parameters, so repeated CLI invocations — and every
worker of a ``run_grid`` process pool — can load them from disk instead
of regenerating.  Artifacts are *content-addressed*: the file name is a
SHA-256 over the artifact kind, the canonicalised generation parameters
and :data:`FORMAT_VERSION`.  Any change to a generator or to a
serialization format must bump the version, which orphans every old
entry (they are simply never looked up again; ``clear()`` removes them).

Layout under the cache root (default ``.repro-cache/``)::

    .repro-cache/
        trace/<sha256>.json        Workload.to_json
        match-table/<sha256>.json  TraceMatchCounts.to_json
        topology/<sha256>.json     Topology.to_json

Writes go through a temporary file and ``os.replace`` so concurrent
pool workers racing to fill the same entry are safe: last writer wins
and both wrote identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Optional

from repro.network.topology import Topology, build_topology
from repro.obs.log import get_logger
from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.workload.presets import make_trace
from repro.workload.subscriptions import build_match_counts
from repro.workload.trace import Workload

logger = get_logger(__name__)

#: Serialization/generator format version.  Bump on ANY change to the
#: workload/table/topology generators or their JSON formats; every key
#: embeds it, so old cache entries are silently invalidated.
FORMAT_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ArtifactCache:
    """A content-addressed store of serialized generation artifacts."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        format_version: int = FORMAT_VERSION,
    ) -> None:
        self.root = root
        self.format_version = int(format_version)
        self.hits = 0
        self.misses = 0

    # -- keys ------------------------------------------------------------

    def key(self, kind: str, params: dict) -> str:
        """SHA-256 key of one artifact: kind + params + format version."""
        canonical = json.dumps(
            {"kind": kind, "version": self.format_version, "params": params},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path(self, kind: str, params: dict) -> str:
        return os.path.join(self.root, kind, self.key(kind, params) + ".json")

    # -- raw text access -------------------------------------------------

    def load_text(self, kind: str, params: dict) -> Optional[str]:
        """The stored payload, or None on a cache miss."""
        try:
            with open(self.path(kind, params), "r", encoding="utf-8") as handle:
                return handle.read()
        except (FileNotFoundError, NotADirectoryError):
            return None

    def store_text(self, kind: str, params: dict, text: str) -> str:
        """Atomically persist one payload; returns its path."""
        target = self.path(kind, params)
        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, target)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return target

    # -- the generic load-or-generate protocol ---------------------------

    def get_or_create(
        self,
        kind: str,
        params: dict,
        generate: Callable[[], object],
        serialize: Callable[[object], str],
        deserialize: Callable[[str], object],
    ):
        """Load ``kind``/``params`` from disk, generating on a miss."""
        text = self.load_text(kind, params)
        if text is not None:
            try:
                artifact = deserialize(text)
            except (ValueError, KeyError, TypeError) as error:
                # A truncated or hand-edited entry: regenerate over it.
                logger.warning(
                    "corrupt %s artifact %s (%s); regenerating",
                    kind, self.path(kind, params), error,
                )
            else:
                self.hits += 1
                logger.debug("artifact hit: %s %s", kind, params)
                return artifact
        self.misses += 1
        logger.debug("artifact miss: %s %s", kind, params)
        artifact = generate()
        self.store_text(kind, params, serialize(artifact))
        return artifact

    def clear(self) -> int:
        """Delete every stored artifact; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for kind in os.listdir(self.root):
            directory = os.path.join(self.root, kind)
            if not os.path.isdir(directory):
                continue
            for name in os.listdir(directory):
                if name.endswith(".json"):
                    os.unlink(os.path.join(directory, name))
                    removed += 1
        return removed


# -- typed artifact accessors (the keys the experiment runner uses) --------


def cached_trace(
    cache: ArtifactCache, trace: str, scale: float, seed: int
) -> Workload:
    """The preset trace ``trace`` at ``scale``/``seed``, disk-cached."""
    return cache.get_or_create(
        "trace",
        {"trace": trace, "scale": scale, "seed": seed},
        generate=lambda: make_trace(trace, scale=scale, seed=seed),
        serialize=lambda workload: workload.to_json(),
        deserialize=Workload.from_json,
    )


def cached_match_table(
    cache: ArtifactCache,
    workload: Workload,
    trace: str,
    scale: float,
    seed: int,
    sq: float,
    notified_fraction: float,
) -> TraceMatchCounts:
    """The eq.-7 match table for one (trace, SQ) pair, disk-cached.

    ``workload`` is only consulted on a miss (its request pairs feed
    the generator); the key is the *parameters* that produced it.
    """

    def generate() -> TraceMatchCounts:
        table = build_match_counts(
            workload.request_pairs(),
            sq,
            RandomStreams(seed).stream("subscriptions"),
            notified_fraction=notified_fraction,
        )
        return TraceMatchCounts(table)

    return cache.get_or_create(
        "match-table",
        {
            "trace": trace,
            "scale": scale,
            "seed": seed,
            "sq": sq,
            "notified_fraction": notified_fraction,
        },
        generate=generate,
        serialize=lambda table: table.to_json(),
        deserialize=TraceMatchCounts.from_json,
    )


def cached_topology(
    cache: ArtifactCache,
    server_count: int,
    seed: int,
    model: str,
    extra_nodes: int,
) -> Topology:
    """The fetch-cost topology for one server count, disk-cached."""
    return cache.get_or_create(
        "topology",
        {
            "server_count": server_count,
            "seed": seed,
            "model": model,
            "extra_nodes": extra_nodes,
        },
        generate=lambda: build_topology(
            server_count,
            RandomStreams(seed).stream("topology"),
            model=model,
            extra_nodes=extra_nodes,
        ),
        serialize=lambda topology: topology.to_json(),
        deserialize=Topology.from_json,
    )
