"""Grid execution with trace/table/topology reuse.

Workload generation, subscription tables and the topology are shared
across the cells of a grid (the paper evaluates all strategies on the
same trace), so a 36-cell Figure-4 grid generates two traces, not 36.

Two reuse layers stack here:

* an in-process ``lru_cache`` memo (always on), and
* an optional **on-disk artifact cache** (see
  :mod:`repro.experiments.artifacts`): with an artifact directory
  configured, traces/tables/topologies are serialized under it keyed by
  their generation parameters, so pool workers and *repeated
  invocations* load instead of regenerate.  Enable it per call
  (``artifact_dir=...``), process-wide (:func:`set_default_artifact_dir`)
  or from the CLI (``--artifact-cache``).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Optional

from repro.experiments.artifacts import (
    ArtifactCache,
    cached_match_table,
    cached_topology,
    cached_trace,
)
from repro.faults.spec import OverloadSpec
from repro.network.topology import Topology, build_topology
from repro.obs.log import get_logger
from repro.obs.recorder import Observer
from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.system.config import PushingScheme, SimulationConfig
from repro.system.metrics import SimulationResult
from repro.system.simulator import Simulation
from repro.system.sharding import run_sharded
from repro.workload.churn import ChurnSpec
from repro.workload.presets import make_trace
from repro.workload.streaming import StreamingWorkload, make_streaming_trace
from repro.workload.subscriptions import build_match_counts
from repro.workload.trace import Workload
from repro.experiments.spec import CellKey, ExperimentGrid, GridResult

logger = get_logger(__name__)

#: Process-wide default artifact directory (None = disk cache off).
_default_artifact_dir: Optional[str] = None


def set_default_artifact_dir(directory: Optional[str]) -> None:
    """Set (or clear, with None) the process-wide artifact directory."""
    global _default_artifact_dir
    _default_artifact_dir = directory


def _resolve_artifact_dir(artifact_dir: Optional[str]) -> Optional[str]:
    return artifact_dir if artifact_dir is not None else _default_artifact_dir


@lru_cache(maxsize=8)
def trace_for(
    trace: str, scale: float, seed: int, artifact_dir: Optional[str] = None
) -> Workload:
    """Generate (and memoize) one of the preset traces."""
    if artifact_dir is not None:
        return cached_trace(ArtifactCache(artifact_dir), trace, scale, seed)
    return make_trace(trace, scale=scale, seed=seed)


@lru_cache(maxsize=4)
def streaming_trace_for(trace: str, scale: float, seed: int) -> StreamingWorkload:
    """Generate (and memoize) a preset trace in streaming form.

    Streaming traces bypass the on-disk artifact cache: serializing the
    event stream to JSON would materialize it, defeating the point.
    The spool is reclaimed when the memo evicts the entry.
    """
    return make_streaming_trace(trace, scale=scale, seed=seed)


@lru_cache(maxsize=32)
def _match_table_for(
    trace: str,
    scale: float,
    seed: int,
    sq: float,
    notified_fraction: float,
    artifact_dir: Optional[str] = None,
    streaming: bool = False,
) -> TraceMatchCounts:
    # The streaming workload hands request_pairs out as an aggregated
    # mapping; build_match_counts produces a bit-identical table from
    # either form, so the cache key needs no streaming component — but
    # sourcing from the streaming trace avoids materializing one.
    if streaming:
        workload = streaming_trace_for(trace, scale, seed)
    else:
        workload = trace_for(trace, scale, seed, artifact_dir)
    if artifact_dir is not None:
        return cached_match_table(
            ArtifactCache(artifact_dir),
            workload,
            trace,
            scale,
            seed,
            sq,
            notified_fraction,
        )
    table = build_match_counts(
        workload.request_pairs(),
        sq,
        RandomStreams(seed).stream("subscriptions"),
        notified_fraction=notified_fraction,
    )
    return TraceMatchCounts(table)


@lru_cache(maxsize=8)
def _topology_for(
    server_count: int,
    seed: int,
    model: str,
    extra: int,
    artifact_dir: Optional[str] = None,
) -> Topology:
    if artifact_dir is not None:
        return cached_topology(
            ArtifactCache(artifact_dir), server_count, seed, model, extra
        )
    return build_topology(
        server_count,
        RandomStreams(seed).stream("topology"),
        model=model,
        extra_nodes=extra,
    )


def paper_beta(trace: str, strategy: str, capacity: float) -> float:
    """The β values §5.1 settled on per trace/strategy/capacity.

    "β is 2 in the three methods for the trace NEWS; for ALTERNATIVE,
    β is 2 in GD* and SG1 when the capacity setting is 5 % or 10 % and
    1 for 1 %, while the value of β is always 0.5 in SG2."  Strategies
    the paper does not name inherit GD*'s setting (they embed GD* as
    the access-time module).
    """
    if trace == "news":
        return 2.0
    if strategy == "sg2":
        return 0.5
    if capacity <= 0.01:
        return 1.0
    return 2.0


def run_cell(
    key: CellKey,
    scale: float = 1.0,
    seed: int = 7,
    beta: Optional[float] = None,
    notified_fraction: float = 1.0,
    strategy_options: Optional[Dict] = None,
    observer: Optional[Observer] = None,
    artifact_dir: Optional[str] = None,
    replay: str = "fast",
    churn: Optional[ChurnSpec] = None,
    overload: Optional[OverloadSpec] = None,
    workers: int = 1,
    streaming: bool = False,
) -> SimulationResult:
    """Run one simulation cell (trace and tables are memoized).

    With ``artifact_dir`` set (or a process default configured via
    :func:`set_default_artifact_dir`), the trace, match table and
    topology are additionally loaded from / stored to the on-disk
    artifact cache.

    ``churn`` attaches a subscription-lifecycle stream to the (cached)
    trace *after* loading: cache keys stay those of the churn-free
    parameters, and ``with_churn`` returns a fresh Workload so the
    memoized object is never mutated.

    ``overload`` arms the overload/backpressure layer (finite service
    queues, origin admission control, retry-storm protection); ``None``
    keeps every capacity infinite, bit-identical to the pre-layer
    behaviour.

    ``streaming`` generates the trace in streaming form (events spill
    to disk and replay chunk-at-a-time; see
    :mod:`repro.workload.streaming`) and ``workers > 1`` shards the
    proxies across that many processes (:mod:`repro.system.sharding`).
    Both are bit-identical to the default path in every result field
    except ``wall_seconds``/``profile``.
    """
    logger.info(
        "cell %s/%s cap=%.2f sq=%.2f (scale=%s seed=%d)",
        key.trace, key.strategy, key.capacity, key.sq, scale, seed,
    )
    artifact_dir = _resolve_artifact_dir(artifact_dir)
    if streaming:
        workload = streaming_trace_for(key.trace, scale, seed)
    else:
        workload = trace_for(key.trace, scale, seed, artifact_dir)
    if churn is not None:
        workload = workload.with_churn(
            churn, RandomStreams(seed).stream("workload.churn")
        )
    match_table = _match_table_for(
        key.trace,
        scale,
        seed,
        key.sq,
        notified_fraction,
        artifact_dir,
        streaming=streaming,
    )
    topology = _topology_for(
        workload.config.server_count, seed, "waxman", 20, artifact_dir
    )
    options = dict(strategy_options or {})
    if beta is None:
        beta = paper_beta(key.trace, key.strategy, key.capacity)
    options.setdefault("beta", beta)
    config = SimulationConfig(
        strategy=key.strategy,
        strategy_options=options,
        capacity_fraction=key.capacity,
        subscription_quality=key.sq,
        pushing=PushingScheme(key.pushing),
        seed=seed,
        notified_fraction=notified_fraction,
        overload=overload,
        replay=replay,
        workers=workers,
    )
    if config.workers > 1:
        result = run_sharded(
            workload, config, match_table, topology, observer=observer
        )
    else:
        simulation = Simulation(
            workload, config, match_table, topology, observer=observer
        )
        result = simulation.run()
    logger.debug("cell done: %s", result.summary())
    return result


def run_grid(
    grid: ExperimentGrid,
    scale: float = 1.0,
    seed: int = 7,
    beta: Optional[float] = None,
    notified_fraction: float = 1.0,
    strategy_options: Optional[Dict] = None,
    progress: Optional[Callable[[CellKey, SimulationResult], None]] = None,
    workers: int = 1,
    artifact_dir: Optional[str] = None,
    shard_workers: int = 1,
    streaming: bool = False,
) -> GridResult:
    """Run every cell of ``grid``; see :class:`GridResult` for access.

    With ``workers > 1`` the cells run in a process pool and
    ``progress`` fires as cells *finish* (completion order, no
    head-of-line blocking).  Workers do not share the in-process
    trace/table memo, so each regenerates the workload once — unless an
    artifact directory is configured, in which case the first worker to
    finish generating persists it and the rest load from disk.

    ``shard_workers`` and ``streaming`` forward to :func:`run_cell`:
    each cell shards its proxies across that many processes and/or
    consumes the trace in streaming form.  Cell-level and shard-level
    parallelism compose multiplicatively — prefer one or the other.
    """
    artifact_dir = _resolve_artifact_dir(artifact_dir)
    outcome = GridResult(grid=grid, scale=scale, seed=seed)
    cells = grid.cells()
    if workers <= 1:
        for key in cells:
            result = run_cell(
                key,
                scale=scale,
                seed=seed,
                beta=beta,
                notified_fraction=notified_fraction,
                strategy_options=strategy_options,
                artifact_dir=artifact_dir,
                workers=shard_workers,
                streaming=streaming,
            )
            outcome.results[key] = result
            if progress is not None:
                progress(key, result)
        return outcome

    from concurrent.futures import ProcessPoolExecutor, as_completed

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(
                run_cell,
                key,
                scale=scale,
                seed=seed,
                beta=beta,
                notified_fraction=notified_fraction,
                strategy_options=strategy_options,
                artifact_dir=artifact_dir,
                workers=shard_workers,
                streaming=streaming,
            ): key
            for key in cells
        }
        for future in as_completed(futures):
            key = futures[future]
            result = future.result()
            outcome.results[key] = result
            if progress is not None:
                progress(key, result)
    return outcome


def clear_caches() -> None:
    """Drop memoized traces/tables/topologies (tests use this)."""
    trace_for.cache_clear()
    streaming_trace_for.cache_clear()
    _match_table_for.cache_clear()
    _topology_for.cache_clear()
