"""Grid execution with trace/table/topology reuse.

Workload generation, subscription tables and the topology are shared
across the cells of a grid (the paper evaluates all strategies on the
same trace), so a 36-cell Figure-4 grid generates two traces, not 36.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Optional

from repro.network.topology import Topology, build_topology
from repro.obs.log import get_logger
from repro.obs.recorder import Observer
from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.system.config import PushingScheme, SimulationConfig
from repro.system.metrics import SimulationResult
from repro.system.simulator import Simulation
from repro.workload.presets import make_trace
from repro.workload.subscriptions import build_match_counts
from repro.workload.trace import Workload
from repro.experiments.spec import CellKey, ExperimentGrid, GridResult

logger = get_logger(__name__)


@lru_cache(maxsize=8)
def trace_for(trace: str, scale: float, seed: int) -> Workload:
    """Generate (and memoize) one of the preset traces."""
    return make_trace(trace, scale=scale, seed=seed)


@lru_cache(maxsize=32)
def _match_table_for(
    trace: str, scale: float, seed: int, sq: float, notified_fraction: float
) -> TraceMatchCounts:
    workload = trace_for(trace, scale, seed)
    table = build_match_counts(
        workload.request_pairs(),
        sq,
        RandomStreams(seed).stream("subscriptions"),
        notified_fraction=notified_fraction,
    )
    return TraceMatchCounts(table)


@lru_cache(maxsize=8)
def _topology_for(server_count: int, seed: int, model: str, extra: int) -> Topology:
    return build_topology(
        server_count,
        RandomStreams(seed).stream("topology"),
        model=model,
        extra_nodes=extra,
    )


def paper_beta(trace: str, strategy: str, capacity: float) -> float:
    """The β values §5.1 settled on per trace/strategy/capacity.

    "β is 2 in the three methods for the trace NEWS; for ALTERNATIVE,
    β is 2 in GD* and SG1 when the capacity setting is 5 % or 10 % and
    1 for 1 %, while the value of β is always 0.5 in SG2."  Strategies
    the paper does not name inherit GD*'s setting (they embed GD* as
    the access-time module).
    """
    if trace == "news":
        return 2.0
    if strategy == "sg2":
        return 0.5
    if capacity <= 0.01:
        return 1.0
    return 2.0


def run_cell(
    key: CellKey,
    scale: float = 1.0,
    seed: int = 7,
    beta: Optional[float] = None,
    notified_fraction: float = 1.0,
    strategy_options: Optional[Dict] = None,
    observer: Optional[Observer] = None,
) -> SimulationResult:
    """Run one simulation cell (trace and tables are memoized)."""
    logger.info(
        "cell %s/%s cap=%.2f sq=%.2f (scale=%s seed=%d)",
        key.trace, key.strategy, key.capacity, key.sq, scale, seed,
    )
    workload = trace_for(key.trace, scale, seed)
    match_table = _match_table_for(
        key.trace, scale, seed, key.sq, notified_fraction
    )
    topology = _topology_for(workload.config.server_count, seed, "waxman", 20)
    options = dict(strategy_options or {})
    if beta is None:
        beta = paper_beta(key.trace, key.strategy, key.capacity)
    options.setdefault("beta", beta)
    config = SimulationConfig(
        strategy=key.strategy,
        strategy_options=options,
        capacity_fraction=key.capacity,
        subscription_quality=key.sq,
        pushing=PushingScheme(key.pushing),
        seed=seed,
        notified_fraction=notified_fraction,
    )
    simulation = Simulation(workload, config, match_table, topology, observer=observer)
    result = simulation.run()
    logger.debug("cell done: %s", result.summary())
    return result


def run_grid(
    grid: ExperimentGrid,
    scale: float = 1.0,
    seed: int = 7,
    beta: Optional[float] = None,
    notified_fraction: float = 1.0,
    progress: Optional[Callable[[CellKey, SimulationResult], None]] = None,
    workers: int = 1,
) -> GridResult:
    """Run every cell of ``grid``; see :class:`GridResult` for access.

    With ``workers > 1`` the cells run in a process pool.  Workers do
    not share the trace/table memo, so each process regenerates the
    workload once — worthwhile for full-scale sweeps where simulation
    dominates, pointless for tiny test grids.
    """
    outcome = GridResult(grid=grid, scale=scale, seed=seed)
    cells = grid.cells()
    if workers <= 1:
        for key in cells:
            result = run_cell(
                key,
                scale=scale,
                seed=seed,
                beta=beta,
                notified_fraction=notified_fraction,
            )
            outcome.results[key] = result
            if progress is not None:
                progress(key, result)
        return outcome

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            key: pool.submit(
                run_cell,
                key,
                scale=scale,
                seed=seed,
                beta=beta,
                notified_fraction=notified_fraction,
            )
            for key in cells
        }
        for key, future in futures.items():
            result = future.result()
            outcome.results[key] = result
            if progress is not None:
                progress(key, result)
    return outcome


def clear_caches() -> None:
    """Drop memoized traces/tables/topologies (tests use this)."""
    trace_for.cache_clear()
    _match_table_for.cache_clear()
    _topology_for.cache_clear()
