"""Plain-text rendering of experiment results.

The paper's figures are bar/line charts; in a terminal reproduction the
same data renders as aligned tables and sparkline-style series so the
rows/series can be compared against the paper at a glance.
"""

from __future__ import annotations

from typing import Dict, Sequence

#: Eight-level block characters for text sparklines.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_table(
    title: str,
    column_names: Sequence[str],
    rows: Dict[str, Sequence[float]],
    value_format: str = "{:6.1f}",
) -> str:
    """Render ``{row_label: values}`` as an aligned ASCII table."""
    label_width = max([len(label) for label in rows] + [8])
    widths = [max(len(name), 7) for name in column_names]
    lines = [title]
    header = " " * label_width + " | " + "  ".join(
        name.rjust(width) for name, width in zip(column_names, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = []
        for value, width in zip(values, widths):
            if value is None:
                cells.append("-".rjust(width))
            else:
                cells.append(value_format.format(value).rjust(width))
        lines.append(label.ljust(label_width) + " | " + "  ".join(cells))
    return "\n".join(lines)


def sparkline(values: Sequence[float], maximum: float = None) -> str:
    """One-character-per-value block rendering of a series."""
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    out = []
    for value in values:
        level = int(round((len(_BLOCKS) - 1) * max(0.0, value) / top))
        out.append(_BLOCKS[min(level, len(_BLOCKS) - 1)])
    return "".join(out)


def render_series(
    title: str,
    series: Dict[str, Sequence[float]],
    maximum: float = None,
    sample_every: int = 1,
) -> str:
    """Render per-hour series as labelled sparklines plus summaries."""
    lines = [title]
    label_width = max([len(label) for label in series] + [8])
    for label, values in series.items():
        sampled = list(values)[::sample_every]
        mean = sum(values) / len(values) if values else 0.0
        lines.append(
            f"{label.ljust(label_width)} | mean={mean:8.2f} | "
            f"{sparkline(sampled, maximum)}"
        )
    return "\n".join(lines)
