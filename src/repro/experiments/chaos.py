"""The chaos experiment: strategy resilience under fault injection.

Beyond the paper's fair-weather comparison, this experiment replays the
same trace, the same topology **and the same fault schedule** (both are
pure functions of the seed) for each strategy, and asks how gracefully
each one degrades:

* **availability** — the fraction of requests served at all, with the
  origin retry budget as the only safety net during publisher outages;
* **time-to-warm** — how quickly a crashed proxy's cold cache climbs
  back to its pre-crash hit ratio, where push-time placement (SUB and
  the Dual-* hybrids) can re-warm caches *before* users ask, while
  pull-only strategies (GD*) must take every post-crash miss;
* the **recovery curve** — hit ratio bucketed by time since recovery.

The default fault mix is deliberately harsh (every proxy eligible to
crash about daily, a couple of origin outages over the week, occasional
degraded links) so the differences are visible at report scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import render_series, render_table
from repro.experiments.runner import paper_beta, trace_for
from repro.faults.spec import ChaosSpec
from repro.obs.log import get_logger
from repro.obs.recorder import Observer
from repro.system.config import SimulationConfig
from repro.system.metrics import SimulationResult
from repro.system.simulator import Simulation

logger = get_logger(__name__)

#: Strategies compared under chaos: the paper's best pull-only method,
#: the push-only baseline, and the two strongest hybrids.
CHAOS_STRATEGIES = ("gdstar", "sub", "sg2", "dc-lap")

#: One week of harsh weather: proxies crash about once a day for about
#: an hour, the origin goes dark about twice for about half an hour,
#: and links spend a few percent of the time degraded.
DEFAULT_CHAOS = ChaosSpec(
    proxy_mtbf=86_400.0,
    proxy_mttr=3_600.0,
    crash_fraction=0.5,
    publisher_mtbf=259_200.0,
    publisher_mttr=1_800.0,
    degraded_mtbf=172_800.0,
    degraded_mttr=3_600.0,
    degraded_latency_multiplier=4.0,
    degraded_loss_probability=0.02,
)


@dataclass
class ChaosResult:
    """Per-strategy resilience numbers plus renderings."""

    spec: ChaosSpec
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def run_chaos(
    strategies: Sequence[str] = CHAOS_STRATEGIES,
    trace: str = "news",
    capacity: float = 0.05,
    scale: float = 1.0,
    seed: int = 7,
    spec: Optional[ChaosSpec] = None,
    observer: Optional[Observer] = None,
) -> ChaosResult:
    """Run every strategy under one identical fault schedule.

    The schedule is generated inside each :class:`Simulation` from the
    dedicated fault streams of the shared seed, so every strategy sees
    the same crash times, the same outages and the same degraded
    windows — the comparison isolates the *strategy's* contribution to
    resilience.

    One ``observer`` (if given) is shared across the sequential
    strategy runs: each run re-binds the tracer context with its
    strategy tag, while registry counters accumulate across the whole
    comparison.
    """
    if spec is None:
        spec = DEFAULT_CHAOS
    workload = trace_for(trace, scale, seed)
    outcome = ChaosResult(spec=spec)
    for strategy in strategies:
        config = SimulationConfig(
            strategy=strategy,
            strategy_options={"beta": paper_beta(trace, strategy, capacity)},
            capacity_fraction=capacity,
            seed=seed,
            chaos=spec,
        )
        logger.info("chaos run: strategy=%s trace=%s", strategy, trace)
        outcome.results[strategy] = Simulation(
            workload, config, observer=observer
        ).run()
    outcome.text = _render(outcome, trace, capacity)
    return outcome


def _render(outcome: ChaosResult, trace: str, capacity: float) -> str:
    columns = [
        "H %",
        "avail %",
        "failed",
        "degraded",
        "crashes",
        "warm s",
        "unwarmed",
    ]
    delivery_active = any(
        result.notifications_sent > 0 for result in outcome.results.values()
    )
    if delivery_active:
        columns += ["lost", "retrans", "stale srv", "repairs"]
    rows: Dict[str, List[Optional[float]]] = {}
    for strategy, result in outcome.results.items():
        rows[strategy] = [
            100.0 * result.hit_ratio,
            100.0 * result.availability,
            float(result.failed_requests),
            float(result.degraded_requests),
            float(result.proxy_crashes),
            result.mean_time_to_warm,
            float(result.unwarmed_recoveries),
        ]
        if delivery_active:
            rows[strategy] += [
                float(result.notifications_lost),
                float(result.notifications_retransmitted),
                float(result.stale_hits_served),
                float(result.repair_fetches),
            ]
    parts = [
        render_table(
            f"Chaos — resilience by strategy ({trace.upper()}, "
            f"cap={capacity:.0%})",
            columns,
            rows,
        )
    ]
    curves = {
        strategy: result.recovery_hit_ratio_curve()
        for strategy, result in outcome.results.items()
    }
    if any(any(curve) for curve in curves.values()):
        parts.append(
            render_series(
                "Post-recovery hit ratio by time since restart "
                f"(bin={next(iter(outcome.results.values())).recovery_bin_seconds:.0f}s)",
                curves,
                maximum=1.0,
            )
        )
    availability = {
        strategy: result.hourly_availability()
        for strategy, result in outcome.results.items()
    }
    parts.append(
        render_series("Hourly availability", availability, maximum=1.0)
    )
    return "\n\n".join(parts)
