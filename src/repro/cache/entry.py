"""Cache entries.

An entry records one cached page version together with the mutable
state the replacement policies maintain.  The dual-cache strategies
(DC-FP/DC-AP/DC-LAP) additionally label each entry with the module that
owns its storage — the paper's 2-tuple ``(o, v)`` where ``o`` is the
owning module and ``v`` the value under that module's policy (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Entry/storage owned by the access-time (caching) module.
ACCESS_MODULE = "access"
#: Entry/storage owned by the push-time (placing) module.
PUSH_MODULE = "push"


@dataclass
class CacheEntry:
    """A cached page version plus policy bookkeeping.

    Attributes:
        page_id: stable page identifier.
        version: cached version number (stale versions are misses).
        size: bytes occupied.
        cost: fetch cost ``c(p)`` from this proxy to the publisher.
        access_count: ``a`` — accesses since the page entered the cache
            (reset on eviction per In-Cache LFU, §3.1).
        match_count: ``s`` — subscriptions matching the page at this
            proxy (static during a run; §4.3).
        value: current value under the owning policy.
        module: owning module label (dual-cache strategies only).
        accessed_since_replacement: whether the entry was referenced
            since the last replacement round in its cache — DC-AP uses
            this to pick repartition victims (§3.3).
        last_access_time: simulation time of the latest hit.
    """

    page_id: int
    version: int
    size: int
    cost: float
    access_count: int = 0
    match_count: int = 0
    value: float = 0.0
    module: str = ACCESS_MODULE
    accessed_since_replacement: bool = True
    last_access_time: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"entry size must be positive, got {self.size}")
        if self.cost <= 0:
            raise ValueError(f"entry cost must be positive, got {self.cost}")
        if self.module not in (ACCESS_MODULE, PUSH_MODULE):
            raise ValueError(f"unknown module label: {self.module!r}")

    @property
    def key(self) -> Tuple[int, int]:
        """(page_id, version) identity of the cached content."""
        return (self.page_id, self.version)

    def record_access(self, at: float) -> None:
        """Register a hit at simulation time ``at``."""
        self.access_count += 1
        self.accessed_since_replacement = True
        self.last_access_time = at
