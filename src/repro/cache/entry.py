"""Cache entries.

An entry records one cached page version together with the mutable
state the replacement policies maintain.  The dual-cache strategies
(DC-FP/DC-AP/DC-LAP) additionally label each entry with the module that
owns its storage — the paper's 2-tuple ``(o, v)`` where ``o`` is the
owning module and ``v`` the value under that module's policy (§3.3).

Entries are the highest-population objects of a replay (one per cached
page per proxy, churned on every eviction), so the class is a plain
``__slots__`` record rather than a dataclass: no per-instance
``__dict__``, cheaper attribute access, and a fixed field set the
replacement policies can mutate in place.
"""

from __future__ import annotations

from typing import Tuple

#: Entry/storage owned by the access-time (caching) module.
ACCESS_MODULE = "access"
#: Entry/storage owned by the push-time (placing) module.
PUSH_MODULE = "push"

_FIELDS = (
    "page_id",
    "version",
    "size",
    "cost",
    "access_count",
    "match_count",
    "value",
    "module",
    "accessed_since_replacement",
    "last_access_time",
)


class CacheEntry:
    """A cached page version plus policy bookkeeping.

    Attributes:
        page_id: stable page identifier.
        version: cached version number (stale versions are misses).
        size: bytes occupied.
        cost: fetch cost ``c(p)`` from this proxy to the publisher.
        access_count: ``a`` — accesses since the page entered the cache
            (reset on eviction per In-Cache LFU, §3.1).
        match_count: ``s`` — subscriptions matching the page at this
            proxy (static during a run; §4.3).
        value: current value under the owning policy.
        module: owning module label (dual-cache strategies only).
        accessed_since_replacement: whether the entry was referenced
            since the last replacement round in its cache — DC-AP uses
            this to pick repartition victims (§3.3).
        last_access_time: simulation time of the latest hit.
    """

    __slots__ = _FIELDS

    def __init__(
        self,
        page_id: int,
        version: int,
        size: int,
        cost: float,
        access_count: int = 0,
        match_count: int = 0,
        value: float = 0.0,
        module: str = ACCESS_MODULE,
        accessed_since_replacement: bool = True,
        last_access_time: float = 0.0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"entry size must be positive, got {size}")
        if cost <= 0:
            raise ValueError(f"entry cost must be positive, got {cost}")
        if module not in (ACCESS_MODULE, PUSH_MODULE):
            raise ValueError(f"unknown module label: {module!r}")
        self.page_id = page_id
        self.version = version
        self.size = size
        self.cost = cost
        self.access_count = access_count
        self.match_count = match_count
        self.value = value
        self.module = module
        self.accessed_since_replacement = accessed_since_replacement
        self.last_access_time = last_access_time

    @property
    def key(self) -> Tuple[int, int]:
        """(page_id, version) identity of the cached content."""
        return (self.page_id, self.version)

    def record_access(self, at: float) -> None:
        """Register a hit at simulation time ``at``."""
        self.access_count += 1
        self.accessed_since_replacement = True
        self.last_access_time = at

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheEntry):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in _FIELDS
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in _FIELDS)
        return f"CacheEntry({fields})"
