"""Byte-accounted cache storage.

Policies decide *what* to store and evict; :class:`CacheStorage` is the
mechanism: a dict of :class:`~repro.cache.entry.CacheEntry` keyed by
page_id with exact byte accounting and invariant checks.  One page_id
holds at most one entry (one version) at a time — pushing a newer
version of a cached page replaces it in place.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.cache.entry import CacheEntry


class CacheStorage:
    """A capacity-limited store of cache entries, keyed by page_id.

    The byte-accounting fields are slotted for the replay hot path;
    ``"__dict__"`` stays in the slot list so the observer can still
    install its per-instance ``listener`` attribute.
    """

    __slots__ = ("capacity_bytes", "_entries", "_used_bytes", "__dict__")

    #: Optional observability hook, called as ``listener(op, entry)``
    #: with ``op`` in {"add", "remove"} after each successful mutation.
    #: ``None`` (the class default) keeps the mutation paths untouched.
    listener = None

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: Dict[int, CacheEntry] = {}
        self._used_bytes = 0

    # -- capacity -------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used_bytes

    def fits(self, size: int) -> bool:
        """Whether ``size`` bytes fit without any eviction."""
        return size <= self.free_bytes

    def resize(self, new_capacity: int) -> None:
        """Change the capacity (used by the adaptive dual-cache split).

        The new capacity must cover the bytes currently stored; the
        adaptive strategies always evict or relocate entries before
        shrinking a partition.
        """
        if new_capacity < self._used_bytes:
            raise ValueError(
                f"cannot shrink below used bytes: new={new_capacity} "
                f"used={self._used_bytes}"
            )
        self.capacity_bytes = int(new_capacity)

    def can_ever_fit(self, size: int) -> bool:
        """Whether ``size`` bytes could fit even with a full purge."""
        return size <= self.capacity_bytes

    # -- content ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._entries

    def get(self, page_id: int) -> Optional[CacheEntry]:
        return self._entries.get(page_id)

    def entries(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    @property
    def entries_by_id(self) -> Dict[int, CacheEntry]:
        """The live page_id -> entry map.

        This is the backing dict itself, not a copy — hot replay loops
        probe it directly (``entries_by_id.get(page)``) without paying a
        bound-method call per event.  Callers must treat it as
        read-only; mutations bypass byte accounting and the listener.
        """
        return self._entries

    def add(self, entry: CacheEntry) -> None:
        """Insert ``entry``; the caller must have made room first."""
        if entry.page_id in self._entries:
            raise ValueError(
                f"page {entry.page_id} already cached; remove or replace it"
            )
        if entry.size > self.free_bytes:
            raise ValueError(
                f"no room for page {entry.page_id}: size={entry.size} "
                f"free={self.free_bytes}"
            )
        self._entries[entry.page_id] = entry
        self._used_bytes += entry.size
        if self.listener is not None:
            self.listener("add", entry)

    def remove(self, page_id: int) -> CacheEntry:
        """Remove and return the entry for ``page_id``."""
        entry = self._entries.pop(page_id)
        self._used_bytes -= entry.size
        if self.listener is not None:
            self.listener("remove", entry)
        return entry

    def pop_if_present(self, page_id: int) -> Optional[CacheEntry]:
        """Remove the entry if cached; return it or None."""
        if page_id in self._entries:
            return self.remove(page_id)
        return None

    def clear(self) -> None:
        self._entries.clear()
        self._used_bytes = 0

    def check_invariants(self) -> None:
        """Verify byte accounting (used by tests and debug assertions)."""
        actual = sum(entry.size for entry in self._entries.values())
        if actual != self._used_bytes:
            raise AssertionError(
                f"byte accounting drifted: tracked={self._used_bytes} actual={actual}"
            )
        if self._used_bytes > self.capacity_bytes:
            raise AssertionError(
                f"over capacity: used={self._used_bytes} "
                f"capacity={self.capacity_bytes}"
            )
