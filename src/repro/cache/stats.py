"""Per-cache statistics.

Counts requests, hits, stale hits (right page, outdated version — a
miss for freshness purposes), bytes served locally and bytes fetched
from the publisher.  The simulator aggregates these into the paper's
global hit ratio H (eq. 8) and traffic curves (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(slots=True)
class CacheStats:
    """Mutable counters for one proxy cache.

    ``slots=True`` because every replayed event bumps several of these
    counters — offset-based attribute access keeps the accounting off
    the hot path's profile.
    """

    requests: int = 0
    hits: int = 0
    stale_hits: int = 0
    bytes_served_local: int = 0
    bytes_fetched: int = 0
    pages_fetched: int = 0
    pages_pushed_stored: int = 0
    pages_pushed_rejected: int = 0
    bytes_pushed: int = 0
    evictions: int = 0
    bytes_evicted: int = 0
    #: Summed response latency of this proxy's requests (seconds).  The
    #: simulator totals it over proxies in server order at collection,
    #: so a sharded run (repro.system.sharding) reproduces the global
    #: total bit-for-bit despite float addition being non-associative.
    response_time: float = 0.0
    #: Optional per-bucket (e.g. hourly) request/hit counters.
    bucketed_requests: Dict[int, int] = field(default_factory=dict)
    bucketed_hits: Dict[int, int] = field(default_factory=dict)

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_ratio(self) -> float:
        """Hit ratio of this cache; 0.0 when no requests were seen."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def record_request(self, hit: bool, size: int, bucket: int, stale: bool = False) -> None:
        """Record one user request at time-bucket ``bucket``."""
        self.requests += 1
        self.bucketed_requests[bucket] = self.bucketed_requests.get(bucket, 0) + 1
        if hit:
            self.hits += 1
            self.bytes_served_local += size
            self.bucketed_hits[bucket] = self.bucketed_hits.get(bucket, 0) + 1
        else:
            if stale:
                self.stale_hits += 1
            self.pages_fetched += 1
            self.bytes_fetched += size

    def record_push(self, stored: bool, size: int, transferred: bool) -> None:
        """Record a push-time placement attempt.

        ``transferred`` tells whether content bytes actually crossed the
        network (Always-Pushing transfers even rejected pages;
        Pushing-When-Necessary does not — §5.6).
        """
        if stored:
            self.pages_pushed_stored += 1
        else:
            self.pages_pushed_rejected += 1
        if transferred:
            self.bytes_pushed += size

    def record_eviction(self, size: int) -> None:
        self.evictions += 1
        self.bytes_evicted += size

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Return a new CacheStats with counters summed."""
        merged = CacheStats(
            requests=self.requests + other.requests,
            hits=self.hits + other.hits,
            stale_hits=self.stale_hits + other.stale_hits,
            bytes_served_local=self.bytes_served_local + other.bytes_served_local,
            bytes_fetched=self.bytes_fetched + other.bytes_fetched,
            pages_fetched=self.pages_fetched + other.pages_fetched,
            pages_pushed_stored=self.pages_pushed_stored + other.pages_pushed_stored,
            pages_pushed_rejected=(
                self.pages_pushed_rejected + other.pages_pushed_rejected
            ),
            bytes_pushed=self.bytes_pushed + other.bytes_pushed,
            evictions=self.evictions + other.evictions,
            bytes_evicted=self.bytes_evicted + other.bytes_evicted,
            response_time=self.response_time + other.response_time,
        )
        for bucket, count in self.bucketed_requests.items():
            merged.bucketed_requests[bucket] = count
        for bucket, count in other.bucketed_requests.items():
            merged.bucketed_requests[bucket] = (
                merged.bucketed_requests.get(bucket, 0) + count
            )
        for bucket, count in self.bucketed_hits.items():
            merged.bucketed_hits[bucket] = count
        for bucket, count in other.bucketed_hits.items():
            merged.bucketed_hits[bucket] = (
                merged.bucketed_hits.get(bucket, 0) + count
            )
        return merged
