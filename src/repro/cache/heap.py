"""An addressable min-heap with lazy deletion.

Replacement policies repeatedly need "the least valuable cached page"
while page values change on every hit.  A plain ``heapq`` cannot update
priorities, so this heap keeps one *live* record per key and marks
superseded records dead; dead records are skipped (and discarded) when
they surface.  All operations are O(log n) amortized.

Ties on priority are broken by insertion sequence, which keeps eviction
order deterministic across runs.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple


#: Auto-compaction floor: backing lists shorter than this are never
#: rebuilt, so tiny heaps skip the bookkeeping entirely.
_COMPACT_FLOOR = 64


class AddressableHeap:
    """Min-heap mapping hashable keys to float priorities."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._live: Dict[Hashable, Tuple[float, int]] = {}
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._live

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` or update its priority if already present.

        Every update leaves a dead record behind; once dead records
        outnumber live ones the backing list is rebuilt in place, so
        update-heavy workloads (long sweeps re-prioritising on every
        hit) keep the list at most ~2× the live population instead of
        growing without bound.
        """
        self._sequence += 1
        record = (float(priority), self._sequence, key)
        self._live[key] = (record[0], record[1])
        heapq.heappush(self._heap, record)
        heap_size = len(self._heap)
        if heap_size >= _COMPACT_FLOOR and heap_size > 2 * len(self._live):
            self.compact()

    #: ``update`` is an alias — push already overwrites.
    update = push

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raises KeyError if absent."""
        del self._live[key]

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` if present."""
        self._live.pop(key, None)

    def clear(self) -> None:
        """Drop every key (and all dead heap records) at once."""
        self._heap.clear()
        self._live.clear()

    def priority(self, key: Hashable) -> float:
        """Current priority of ``key``."""
        return self._live[key][0]

    def _skim(self) -> None:
        """Drop dead records from the heap top."""
        heap = self._heap
        live = self._live
        while heap:
            priority, sequence, key = heap[0]
            current = live.get(key)
            if current is not None and current == (priority, sequence):
                return
            heapq.heappop(heap)

    def peek(self) -> Tuple[Hashable, float]:
        """(key, priority) of the minimum without removing it."""
        self._skim()
        if not self._heap:
            raise IndexError("heap is empty")
        priority, _sequence, key = self._heap[0]
        return key, priority

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return the minimum (key, priority)."""
        self._skim()
        if not self._heap:
            raise IndexError("heap is empty")
        priority, _sequence, key = heapq.heappop(self._heap)
        del self._live[key]
        return key, priority

    def min_priority(self) -> Optional[float]:
        """Priority of the minimum, or None when empty."""
        self._skim()
        if not self._heap:
            return None
        return self._heap[0][0]

    def keys(self):
        """Live keys (arbitrary order)."""
        return self._live.keys()

    def items(self):
        """Live (key, priority) pairs (arbitrary order)."""
        return ((key, record[0]) for key, record in self._live.items())

    def compact(self) -> None:
        """Rebuild the backing list, dropping all dead records.

        Called opportunistically by callers that churn keys heavily;
        never required for correctness.
        """
        self._heap = [
            (priority, sequence, key)
            for key, (priority, sequence) in self._live.items()
        ]
        heapq.heapify(self._heap)

    def maybe_compact(self, slack_factor: float = 4.0) -> None:
        """Compact when dead records dominate the backing list."""
        if len(self._heap) > slack_factor * max(8, len(self._live)):
            self.compact()

    def instrument(self, profiler) -> None:
        """Time this instance's ``push``/``pop`` under ``heap.*`` phases.

        ``profiler`` is a :class:`repro.obs.profile.Profiler`.  The
        wrappers shadow the bound methods as instance attributes, so
        uninstrumented heaps keep the plain class methods.  The
        class-level ``update`` alias still resolves to the unwrapped
        ``push``; callers of ``update`` go untimed.
        """
        self.push = profiler.wrap(self.push, "heap.push")
        self.pop = profiler.wrap(self.pop, "heap.pop")
