"""An addressable min-heap with lazy deletion.

Replacement policies repeatedly need "the least valuable cached page"
while page values change on every hit.  A plain ``heapq`` cannot update
priorities, so this heap keeps one *live* record per key and marks
superseded records dead; dead records are skipped (and discarded) when
they surface.  All operations are O(log n) amortized.

Ties on priority are broken by insertion sequence, which keeps eviction
order deterministic across runs.

Each key's live record is the very ``(priority, sequence, key)`` tuple
sitting in the backing list, stored once in ``_live``.  ``push`` then
costs a single dict store beyond the heapq insert (the tuple had to be
built for heapq anyway), the hot-path liveness test in ``_skim`` is one
dict probe plus an identity check, and ``compact`` rebuilds the backing
list straight from ``_live.values()`` with no tuple construction.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, Hashable, List, Optional, Tuple


#: Auto-compaction floor: backing lists shorter than this are never
#: rebuilt, so tiny heaps skip the bookkeeping entirely.
_COMPACT_FLOOR = 64


class AddressableHeap:
    """Min-heap mapping hashable keys to float priorities.

    The three backing fields are slotted — ``push`` runs once per
    replayed request — while ``"__dict__"`` stays in the slot list so
    :meth:`instrument` can still shadow ``push``/``pop`` with
    per-instance profiler wrappers.
    """

    __slots__ = ("_heap", "_live", "_sequence", "__dict__")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._live: Dict[Hashable, Tuple[float, int, Hashable]] = {}
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._live

    def push(self, key: Hashable, priority: float) -> None:
        """Insert ``key`` or update its priority if already present.

        Every update leaves a dead record behind; once dead records
        outnumber live ones the backing list is rebuilt in place, so
        update-heavy workloads (long sweeps re-prioritising on every
        hit) keep the list at most ~2× the live population instead of
        growing without bound.
        """
        sequence = self._sequence + 1
        self._sequence = sequence
        record = (priority, sequence, key)
        self._live[key] = record
        heap = self._heap
        heappush(heap, record)
        heap_size = len(heap)
        if heap_size >= _COMPACT_FLOOR and heap_size > 2 * len(self._live):
            self.compact()

    #: ``update`` is an alias — push already overwrites.
    update = push

    def remove(self, key: Hashable) -> None:
        """Remove ``key``; raises KeyError if absent."""
        del self._live[key]

    def discard(self, key: Hashable) -> None:
        """Remove ``key`` if present."""
        self._live.pop(key, None)

    def clear(self) -> None:
        """Drop every key (and all dead heap records) at once."""
        self._heap.clear()
        self._live.clear()

    def priority(self, key: Hashable) -> float:
        """Current priority of ``key``."""
        return self._live[key][0]

    def _skim(self) -> None:
        """Drop dead records from the heap top."""
        heap = self._heap
        live = self._live
        while heap:
            record = heap[0]
            # The live record *is* the heap record, so identity alone
            # proves this record is the key's current one.
            if live.get(record[2]) is record:
                return
            heappop(heap)

    def peek(self) -> Tuple[Hashable, float]:
        """(key, priority) of the minimum without removing it."""
        self._skim()
        if not self._heap:
            raise IndexError("heap is empty")
        priority, _sequence, key = self._heap[0]
        return key, priority

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return the minimum (key, priority)."""
        self._skim()
        if not self._heap:
            raise IndexError("heap is empty")
        priority, _sequence, key = heappop(self._heap)
        del self._live[key]
        return key, priority

    def min_priority(self) -> Optional[float]:
        """Priority of the minimum, or None when empty."""
        self._skim()
        if not self._heap:
            return None
        return self._heap[0][0]

    def keys(self):
        """Live keys (arbitrary order)."""
        return self._live.keys()

    def items(self):
        """Live (key, priority) pairs (arbitrary order)."""
        return ((key, record[0]) for key, record in self._live.items())

    def compact(self) -> None:
        """Rebuild the backing list, dropping all dead records.

        Compaction never changes pop order: live records keep their
        ``(priority, sequence)`` sort keys, and heapify orders them
        exactly as lazy skimming would have.

        Called opportunistically by callers that churn keys heavily;
        never required for correctness.
        """
        self._heap = list(self._live.values())
        heapify(self._heap)

    def maybe_compact(self, slack_factor: float = 4.0) -> None:
        """Compact when dead records dominate the backing list."""
        if len(self._heap) > slack_factor * max(8, len(self._live)):
            self.compact()

    def instrument(self, profiler) -> None:
        """Time this instance's ``push``/``pop`` under ``heap.*`` phases.

        ``profiler`` is a :class:`repro.obs.profile.Profiler`.  The
        wrappers shadow the bound methods as instance attributes, so
        uninstrumented heaps keep the plain class methods.  The
        class-level ``update`` alias still resolves to the unwrapped
        ``push``; callers of ``update`` go untimed.
        """
        self.push = profiler.wrap(self.push, "heap.push")
        self.pop = profiler.wrap(self.pop, "heap.pop")
