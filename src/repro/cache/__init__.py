"""Capacity-limited cache substrate.

The proxy servers of the paper hold page content in a byte-capacity
cache; every placement and replacement strategy in :mod:`repro.core`
runs on top of this substrate:

* :class:`~repro.cache.entry.CacheEntry` — a cached page version plus
  the mutable bookkeeping fields the policies need (access counts,
  matched-subscription counts, current value, owning module label);
* :class:`~repro.cache.heap.AddressableHeap` — a min-heap with O(log n)
  decrease/increase-key via lazy deletion, used to find the least
  valuable page during evictions;
* :class:`~repro.cache.storage.CacheStorage` — the byte-accounted store
  itself;
* :class:`~repro.cache.stats.CacheStats` — hit/miss/byte counters.
"""

from repro.cache.entry import CacheEntry, ACCESS_MODULE, PUSH_MODULE
from repro.cache.heap import AddressableHeap
from repro.cache.storage import CacheStorage
from repro.cache.stats import CacheStats

__all__ = [
    "CacheEntry",
    "AddressableHeap",
    "CacheStorage",
    "CacheStats",
    "ACCESS_MODULE",
    "PUSH_MODULE",
]
