"""Command-line interface.

``repro-pubsub`` drives the reproduction from a terminal::

    repro-pubsub run --strategy sg2 --trace news --capacity 0.05
    repro-pubsub figure 4 --scale 0.2
    repro-pubsub table 2 --scale 0.2
    repro-pubsub sweep-beta --scale 0.1
    repro-pubsub calibrate-beta --trace news --prefix 0.25
    repro-pubsub seed-sweep --strategy sg2 --baseline gdstar --seeds 5
    repro-pubsub chaos --strategies gdstar,sub --proxy-mtbf 86400
    repro-pubsub chaos --trace-out trace.jsonl --metrics-out metrics.prom
    repro-pubsub inspect trace.jsonl
    repro-pubsub trace-stats --trace alternative --scale 0.2 --validate
    repro-pubsub generate-trace --trace news --output trace.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.registry import strategy_names
from repro.experiments.artifacts import DEFAULT_CACHE_DIR
from repro.experiments.figures import beta_sweep, figure3, figure4, figure5, figure6, figure7
from repro.experiments.runner import run_cell, set_default_artifact_dir
from repro.experiments.spec import CellKey
from repro.experiments.tables import table2
from repro.obs import build_observer, setup_cli_logging
from repro.system.config import PushingScheme
from repro.workload.presets import make_trace


def _reject_unknown_strategies(*names: str) -> Optional[int]:
    """Print a helpful error and return an exit code on a bad name.

    Subcommands whose strategy arguments are free-form (seed-sweep,
    chaos) funnel through here so a typo produces one clear line, not a
    KeyError traceback from deep inside the registry.
    """
    valid = sorted(strategy_names())
    unknown = [name for name in names if name not in valid]
    if not unknown:
        return None
    listed = ", ".join(unknown)
    print(
        f"unknown strategy: {listed}\nvalid strategies: {', '.join(valid)}",
        file=sys.stderr,
    )
    return 2


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale (1.0 = the paper's full size)",
    )
    parser.add_argument("--seed", type=int, default=7, help="root random seed")
    parser.add_argument(
        "--artifact-cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
        metavar="DIR",
        help=(
            "cache generated traces/match tables/topologies on disk "
            f"under DIR (default {DEFAULT_CACHE_DIR}) so repeated runs "
            "load instead of regenerate"
        ),
    )
    parser.add_argument(
        "--no-artifact-cache", action="store_true",
        help="force the on-disk artifact cache off "
             "(overrides --artifact-cache and REPRO_ARTIFACT_CACHE)",
    )
    _add_verbose(parser)


def _configure_artifact_cache(args: argparse.Namespace) -> None:
    """Resolve the artifact-cache flags/env into the runner default.

    Precedence: ``--no-artifact-cache`` > ``--artifact-cache [DIR]`` >
    the ``REPRO_ARTIFACT_CACHE`` environment variable > off.
    """
    directory = None
    if not getattr(args, "no_artifact_cache", False):
        directory = (
            getattr(args, "artifact_cache", None)
            or os.environ.get("REPRO_ARTIFACT_CACHE")
            or None
        )
    set_default_artifact_dir(directory)


def _add_verbose(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (-v info, -vv debug)",
    )


def _add_obs(parser: argparse.ArgumentParser, profile: bool = False) -> None:
    """Observability flags shared by the simulating subcommands."""
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="stream simulation lifecycle events to FILE as JSONL",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write aggregate metrics to FILE in Prometheus text format",
    )
    parser.add_argument(
        "--monitor", metavar="SECONDS", nargs="?", const=5.0, type=float,
        default=None,
        help="emit live progress heartbeats (events/sec, ETA, RSS, cache "
             "occupancy) every SECONDS wall-clock seconds (default 5)",
    )
    parser.add_argument(
        "--monitor-out", metavar="FILE", default=None,
        help="write heartbeats to FILE as JSONL instead of stderr text",
    )
    parser.add_argument(
        "--series-out", metavar="FILE", default=None,
        help="write per-window time series (hits, traffic, churn, queue "
             "depths) to FILE as JSONL",
    )
    parser.add_argument(
        "--series-window", metavar="SECONDS", type=float, default=3600.0,
        help="simulated-time window width for --series-out (default 3600)",
    )
    if profile:
        parser.add_argument(
            "--profile", action="store_true",
            help="time the simulator's hot paths and print a summary",
        )


def _make_observer(args: argparse.Namespace):
    """Build an :class:`Observer` from the parsed obs flags (or None)."""
    return build_observer(
        trace_out=args.trace_out,
        metrics=bool(args.metrics_out),
        profile=bool(getattr(args, "profile", False)),
        series_out=getattr(args, "series_out", None),
        series_window=getattr(args, "series_window", 3600.0),
        monitor=getattr(args, "monitor", None),
        monitor_out=getattr(args, "monitor_out", None),
    )


def _finish_observer(observer, args: argparse.Namespace) -> None:
    """Flush observer outputs: the metrics file and the trace sink."""
    if observer is None:
        return
    if args.metrics_out and observer.registry is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(observer.registry.render_prometheus())
        print(f"wrote {args.metrics_out}")
    observer.close()
    if args.trace_out:
        print(f"wrote {args.trace_out}")
    if getattr(args, "series_out", None):
        print(f"wrote {args.series_out}")
    if getattr(args, "monitor_out", None):
        print(f"wrote {args.monitor_out}")
    if getattr(args, "profile", False) and observer.profiler is not None:
        print()
        print(observer.profiler.render())


def _build_churn_spec(args: argparse.Namespace):
    """A ChurnSpec from the run flags, or None when no flag was given."""
    flags = (
        args.churn_rate,
        args.lease_duration,
        args.renew_probability,
        args.confirm_loss,
    )
    if all(value is None for value in flags):
        return None
    from repro.workload.churn import ChurnSpec

    defaults = ChurnSpec()
    return ChurnSpec(
        churn_rate=(
            args.churn_rate if args.churn_rate is not None else defaults.churn_rate
        ),
        lease_duration=(
            args.lease_duration
            if args.lease_duration is not None
            else defaults.lease_duration
        ),
        renew_probability=(
            args.renew_probability
            if args.renew_probability is not None
            else defaults.renew_probability
        ),
        confirmation_loss_probability=(
            args.confirm_loss
            if args.confirm_loss is not None
            else defaults.confirmation_loss_probability
        ),
    )


def _validate_cell_args(args: argparse.Namespace) -> None:
    """Range-check the shared numeric cell flags.

    Runs before any workload generation so a bad value produces one
    clear line instead of a traceback from deep inside the pipeline.
    """
    capacity = getattr(args, "capacity", None)
    if capacity is not None and not 0.0 < capacity <= 1.0:
        raise ValueError(f"capacity must be in (0, 1], got {capacity}")
    sq = getattr(args, "sq", None)
    if sq is not None and not 0.0 < sq <= 1.0:
        raise ValueError(f"sq must be in (0, 1], got {sq}")
    scale = getattr(args, "scale", None)
    if scale is not None and scale <= 0.0:
        raise ValueError(f"scale must be > 0, got {scale}")
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if getattr(args, "streaming", False) and (
        getattr(args, "replay", "fast") == "agenda"
    ):
        raise ValueError(
            "--streaming requires a replay engine that can stream; "
            "the agenda engine cannot (use --replay fast or hybrid)"
        )


def _build_overload_spec(args: argparse.Namespace):
    """An OverloadSpec from the run flags, or None when no flag was given.

    Flags that *arm* a sub-mechanism (service rate, origin capacity,
    retry budget) must be strictly positive when given explicitly —
    their spec-level zero default means "disabled", which makes no
    sense to request by hand.
    """
    flags = (
        args.service_rate,
        args.queue_capacity,
        args.push_shed_fraction,
        args.origin_capacity,
        args.origin_burst,
        args.breaker_threshold,
        args.breaker_cooldown,
        args.breaker_probes,
        args.breaker_jitter,
        args.retry_budget,
        args.retry_budget_rate,
        args.retry_jitter,
    )
    if all(value is None for value in flags):
        return None
    if args.service_rate is not None and args.service_rate <= 0.0:
        raise ValueError(f"service rate must be > 0, got {args.service_rate}")
    if args.origin_capacity is not None and args.origin_capacity <= 0.0:
        raise ValueError(
            f"origin capacity must be > 0, got {args.origin_capacity}"
        )
    if args.retry_budget is not None and args.retry_budget <= 0:
        raise ValueError(f"retry budget must be > 0, got {args.retry_budget}")
    from repro.faults.spec import OverloadSpec

    defaults = OverloadSpec()

    def pick(value, default):
        return value if value is not None else default

    return OverloadSpec(
        service_rate=pick(args.service_rate, defaults.service_rate),
        queue_capacity=pick(args.queue_capacity, defaults.queue_capacity),
        push_shed_fraction=pick(
            args.push_shed_fraction, defaults.push_shed_fraction
        ),
        origin_capacity=pick(args.origin_capacity, defaults.origin_capacity),
        origin_burst=pick(args.origin_burst, defaults.origin_burst),
        breaker_threshold=pick(args.breaker_threshold, defaults.breaker_threshold),
        breaker_cooldown=pick(args.breaker_cooldown, defaults.breaker_cooldown),
        breaker_probe_successes=pick(
            args.breaker_probes, defaults.breaker_probe_successes
        ),
        breaker_jitter=pick(args.breaker_jitter, defaults.breaker_jitter),
        retry_budget=pick(args.retry_budget, defaults.retry_budget),
        retry_budget_rate=pick(
            args.retry_budget_rate, defaults.retry_budget_rate
        ),
        retry_jitter=pick(args.retry_jitter, defaults.retry_jitter),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        _validate_cell_args(args)
    except ValueError as error:
        print(f"invalid run parameter: {error}", file=sys.stderr)
        return 2
    try:
        churn = _build_churn_spec(args)
    except ValueError as error:
        print(f"invalid churn parameter: {error}", file=sys.stderr)
        return 2
    try:
        overload = _build_overload_spec(args)
    except ValueError as error:
        print(f"invalid overload parameter: {error}", file=sys.stderr)
        return 2
    observer = _make_observer(args)
    result = run_cell(
        CellKey(
            trace=args.trace,
            strategy=args.strategy,
            capacity=args.capacity,
            sq=args.sq,
            pushing=args.pushing,
        ),
        scale=args.scale,
        seed=args.seed,
        beta=args.beta,
        observer=observer,
        replay=args.replay,
        churn=churn,
        overload=overload,
        workers=args.workers,
        streaming=args.streaming,
    )
    print(result.summary())
    _finish_observer(observer, args)
    return 0


def _write_svg(panels, number: str, directory: str) -> None:
    import os

    from repro.experiments.figures import CAPACITIES, SQS
    from repro.experiments.svg import figure_to_svg

    os.makedirs(directory, exist_ok=True)
    for panel in panels:
        if number in ("3", "4"):
            columns = [f"{int(c * 100)}%" for c in CAPACITIES]
            svg = figure_to_svg(panel, kind="bars", column_names=columns)
        elif number == "5":
            svg = figure_to_svg(
                panel, kind="bars", column_names=[f"SQ={q:g}" for q in SQS]
            )
        else:
            svg = figure_to_svg(panel, kind="lines")
        path = os.path.join(directory, f"{panel.name}.svg")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"wrote {path}")


def _cmd_figure(args: argparse.Namespace) -> int:
    number = args.number
    if number == "3":
        panels = [figure3(scale=args.scale, seed=args.seed)]
    elif number == "4":
        panels = list(figure4(scale=args.scale, seed=args.seed).values())
    elif number == "5":
        panels = list(figure5(scale=args.scale, seed=args.seed).values())
    elif number == "6":
        panels = list(figure6(scale=args.scale, seed=args.seed).values())
    elif number == "7":
        panels = list(figure7(scale=args.scale, seed=args.seed).values())
    else:
        print(f"unknown figure {number!r}; the paper has figures 3-7", file=sys.stderr)
        return 2
    for panel in panels:
        print(panel.text)
        print()
    if args.svg:
        _write_svg(panels, number, args.svg)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number != "2":
        print("only Table 2 is an experiment (Table 1 is a taxonomy)", file=sys.stderr)
        return 2
    print(table2(scale=args.scale, seed=args.seed).text)
    return 0


def _cmd_sweep_beta(args: argparse.Namespace) -> int:
    print(beta_sweep(scale=args.scale, seed=args.seed, trace=args.trace).text)
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.experiments.calibrate import calibrate_all
    from repro.workload.presets import make_trace

    workload = make_trace(args.trace, scale=args.scale, seed=args.seed)
    results = calibrate_all(
        workload, prefix_fraction=args.prefix, capacity_fraction=args.capacity
    )
    print(
        f"beta calibrated on the first {args.prefix:.0%} of the "
        f"{args.trace} trace (capacity {args.capacity:.0%}):"
    )
    for strategy, outcome in results.items():
        grid = "  ".join(
            f"beta={beta:g}:{100 * score:.1f}%"
            for beta, score in sorted(outcome.prefix_scores.items())
        )
        print(f"  {strategy:>6s}: best beta = {outcome.best_beta:g}   [{grid}]")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reportgen import generate_report

    written = generate_report(args.output, scale=args.scale, seed=args.seed)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_seed_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import compare_across_seeds

    error = _reject_unknown_strategies(args.strategy, args.baseline)
    if error is not None:
        return error
    comparison = compare_across_seeds(
        args.strategy,
        baseline=args.baseline,
        trace=args.trace,
        capacity=args.capacity,
        seeds=tuple(range(1, args.seeds + 1)),
        scale=args.scale,
    )
    print(comparison.better.render())
    print(comparison.baseline.render())
    print(comparison.render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import DEFAULT_CHAOS, run_chaos
    from repro.faults.spec import ChaosSpec

    strategies = tuple(
        name.strip() for name in args.strategies.split(",") if name.strip()
    )
    if not strategies:
        print("no strategies given", file=sys.stderr)
        return 2
    error = _reject_unknown_strategies(*strategies)
    if error is not None:
        return error
    try:
        _validate_cell_args(args)
    except ValueError as error:
        print(f"invalid chaos parameter: {error}", file=sys.stderr)
        return 2
    base = DEFAULT_CHAOS
    try:
        spec = _build_chaos_spec(args, base)
    except ValueError as error:
        print(f"invalid chaos parameter: {error}", file=sys.stderr)
        return 2
    if not spec.injects_faults:
        print(
            "warning: the assembled ChaosSpec describes no faults "
            "(every MTBF and delivery knob is zero/off); this run is "
            "equivalent to a healthy one",
            file=sys.stderr,
        )
    observer = _make_observer(args)
    outcome = run_chaos(
        strategies=strategies,
        trace=args.trace,
        capacity=args.capacity,
        scale=args.scale,
        seed=args.seed,
        spec=spec,
        observer=observer,
    )
    print(outcome.text)
    _finish_observer(observer, args)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.obs.inspect import (
        page_history,
        render_page_history,
        summarize_trace,
    )

    try:
        if args.page is not None:
            if args.json:
                print(json.dumps(page_history(args.path, args.page), indent=2))
            else:
                print(render_page_history(args.path, args.page))
        else:
            summary = summarize_trace(args.path)
            if args.json:
                print(json.dumps(summary.as_dict(top=args.top), indent=2))
            else:
                print(summary.render(top=args.top))
    except FileNotFoundError:
        print(f"no such trace file: {args.path}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"malformed trace file: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.obs.explain import explain_page_from_file

    try:
        explanation = explain_page_from_file(args.path, args.id, proxy=args.proxy)
    except FileNotFoundError:
        print(f"no such trace file: {args.path}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"malformed trace file: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(explanation.as_dict(), indent=2))
    else:
        print(explanation.render())
    return 0


def _build_chaos_spec(args: argparse.Namespace, base) -> "ChaosSpec":
    from repro.faults.spec import ChaosSpec

    return ChaosSpec(
        proxy_mtbf=args.proxy_mtbf if args.proxy_mtbf is not None else base.proxy_mtbf,
        proxy_mttr=args.proxy_mttr if args.proxy_mttr is not None else base.proxy_mttr,
        crash_fraction=(
            args.crash_fraction
            if args.crash_fraction is not None
            else base.crash_fraction
        ),
        publisher_mtbf=(
            args.publisher_mtbf
            if args.publisher_mtbf is not None
            else base.publisher_mtbf
        ),
        publisher_mttr=(
            args.publisher_mttr
            if args.publisher_mttr is not None
            else base.publisher_mttr
        ),
        degraded_mtbf=(
            args.degraded_mtbf if args.degraded_mtbf is not None else base.degraded_mtbf
        ),
        degraded_mttr=(
            args.degraded_mttr if args.degraded_mttr is not None else base.degraded_mttr
        ),
        degraded_latency_multiplier=base.degraded_latency_multiplier,
        degraded_loss_probability=(
            args.loss if args.loss is not None else base.degraded_loss_probability
        ),
        delivery_loss_probability=(
            args.delivery_loss
            if args.delivery_loss is not None
            else base.delivery_loss_probability
        ),
        delivery_duplicate_probability=(
            args.delivery_dup
            if args.delivery_dup is not None
            else base.delivery_duplicate_probability
        ),
        delivery_reorder_delay=(
            args.delivery_reorder
            if args.delivery_reorder is not None
            else base.delivery_reorder_delay
        ),
        broker_mtbf=(
            args.broker_mtbf if args.broker_mtbf is not None else base.broker_mtbf
        ),
        broker_mttr=(
            args.broker_mttr if args.broker_mttr is not None else base.broker_mttr
        ),
        broker_count=(
            args.broker_count if args.broker_count is not None else base.broker_count
        ),
        delivery_retry_limit=(
            args.delivery_retries
            if args.delivery_retries is not None
            else base.delivery_retry_limit
        ),
        delivery_ack_timeout=(
            args.delivery_ack_timeout
            if args.delivery_ack_timeout is not None
            else base.delivery_ack_timeout
        ),
        delivery_repair=(not args.no_repair) if args.no_repair else base.delivery_repair,
    )


def _cmd_generate_trace(args: argparse.Namespace) -> int:
    from repro.workload.presets import make_trace

    workload = make_trace(args.trace, scale=args.scale, seed=args.seed)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(workload.to_json())
    print(
        f"wrote {args.output}: {len(workload.pages)} pages, "
        f"{workload.publish_count} publish events, "
        f"{workload.request_count} requests"
    )
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    workload = make_trace(args.trace, scale=args.scale, seed=args.seed)
    if args.validate:
        from repro.workload.validate import validate_workload

        report = validate_workload(workload)
        print(report.render())
        return 0 if report.ok else 1
    pairs = len(set(workload.request_pairs()))
    unique = workload.unique_bytes_per_server()
    mean_unique = sum(unique.values()) / max(1, len(unique))
    print(f"trace          : {workload.label}")
    print(f"distinct pages : {len(workload.pages)}")
    print(f"publish events : {workload.publish_count}")
    print(f"requests       : {workload.request_count}")
    print(f"(page,server)  : {pairs} pairs")
    print(f"servers        : {workload.config.server_count}")
    print(f"unique bytes/server (mean): {mean_unique / 1e6:.2f} MB")
    for fraction in (0.01, 0.05, 0.10):
        caps = workload.capacities(fraction)
        mean_cap = sum(caps.values()) / len(caps)
        print(f"capacity @{fraction:>4.0%} (mean): {mean_cap / 1e3:8.1f} KB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pubsub",
        description=(
            "Reproduction of 'Content Distribution for Publish/Subscribe "
            "Services' (Middleware 2003)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulation cell")
    run_parser.add_argument("--strategy", choices=sorted(strategy_names()), default="sg2")
    run_parser.add_argument("--trace", choices=["news", "alternative"], default="news")
    run_parser.add_argument("--capacity", type=float, default=0.05)
    run_parser.add_argument("--sq", type=float, default=1.0)
    run_parser.add_argument(
        "--pushing",
        choices=[scheme.value for scheme in PushingScheme],
        default=PushingScheme.WHEN_NECESSARY.value,
    )
    run_parser.add_argument("--beta", type=float, default=None)
    run_parser.add_argument(
        "--replay", choices=["fast", "hybrid", "agenda"], default="fast",
        help="trace replay engine: the batched fast path (default), the "
             "merged-iterator hybrid, or the legacy heap agenda (all "
             "bit-identical results)",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the proxies across N processes (bit-identical "
             "results; configs whose state crosses shards decline to "
             "one process)",
    )
    run_parser.add_argument(
        "--streaming", action="store_true",
        help="generate and replay the trace in streaming form (events "
             "spill to disk; peak memory stays flat as the trace grows)",
    )
    run_parser.add_argument(
        "--churn-rate", type=float, default=None, metavar="CYCLES",
        help="subscription churn: mean unsubscribe/resubscribe cycles "
             "per subscriber per day (any churn flag enables the "
             "lifecycle layer)",
    )
    run_parser.add_argument(
        "--lease-duration", type=float, default=None, metavar="SECONDS",
        help="mean subscription lease duration (exponential)",
    )
    run_parser.add_argument(
        "--renew-probability", type=float, default=None, metavar="P",
        help="probability an expiring lease is renewed in time",
    )
    run_parser.add_argument(
        "--confirm-loss", type=float, default=None, metavar="P",
        help="per-attempt confirmation-handshake loss probability",
    )
    run_parser.add_argument(
        "--service-rate", type=float, default=None, metavar="REQ_PER_S",
        help="overload: per-proxy service rate (requests/second); any "
             "overload flag arms the backpressure layer",
    )
    run_parser.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="overload: per-proxy service-queue capacity (slots)",
    )
    run_parser.add_argument(
        "--push-shed-fraction", type=float, default=None, metavar="F",
        help="overload: fraction of the queue pushes may fill before "
             "being shed (pulls keep the full capacity)",
    )
    run_parser.add_argument(
        "--origin-capacity", type=float, default=None, metavar="REQ_PER_S",
        help="overload: origin admission token-bucket refill rate",
    )
    run_parser.add_argument(
        "--origin-burst", type=int, default=None, metavar="N",
        help="overload: origin token-bucket burst size",
    )
    run_parser.add_argument(
        "--breaker-threshold", type=int, default=None, metavar="N",
        help="overload: consecutive origin rejections that open the "
             "circuit breaker",
    )
    run_parser.add_argument(
        "--breaker-cooldown", type=float, default=None, metavar="SECONDS",
        help="overload: seconds the breaker stays open before half-open "
             "probing",
    )
    run_parser.add_argument(
        "--breaker-probes", type=int, default=None, metavar="N",
        help="overload: half-open successes required to close the breaker",
    )
    run_parser.add_argument(
        "--breaker-jitter", type=float, default=None, metavar="F",
        help="overload: relative jitter in [0, 1) on the breaker cooldown",
    )
    run_parser.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="overload: global retry budget shared by origin, delivery "
             "and handshake retries",
    )
    run_parser.add_argument(
        "--retry-budget-rate", type=float, default=None, metavar="PER_S",
        help="overload: retry-budget refill rate (tokens/second; 0 = "
             "fixed budget)",
    )
    run_parser.add_argument(
        "--retry-jitter", type=float, default=None, metavar="F",
        help="overload: relative jitter in [0, 1) on every retry backoff",
    )
    _add_common(run_parser)
    _add_obs(run_parser, profile=True)
    run_parser.set_defaults(func=_cmd_run)

    figure_parser = sub.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("number", help="figure number (3-7)")
    figure_parser.add_argument(
        "--svg", metavar="DIR", default=None,
        help="also write the figure as SVG files into DIR",
    )
    _add_common(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    table_parser = sub.add_parser("table", help="regenerate a paper table")
    table_parser.add_argument("number", help="table number (2)")
    _add_common(table_parser)
    table_parser.set_defaults(func=_cmd_table)

    beta_parser = sub.add_parser("sweep-beta", help="§5.1 β calibration sweep")
    beta_parser.add_argument("--trace", choices=["news", "alternative"], default="news")
    _add_common(beta_parser)
    beta_parser.set_defaults(func=_cmd_sweep_beta)

    stats_parser = sub.add_parser("trace-stats", help="describe a generated trace")
    stats_parser.add_argument("--trace", choices=["news", "alternative"], default="news")
    stats_parser.add_argument(
        "--validate",
        action="store_true",
        help="audit the trace against the paper's §4 target statistics",
    )
    _add_common(stats_parser)
    stats_parser.set_defaults(func=_cmd_trace_stats)

    calibrate_parser = sub.add_parser(
        "calibrate-beta", help="learn beta from a trace prefix (§5.1)"
    )
    calibrate_parser.add_argument(
        "--trace", choices=["news", "alternative"], default="news"
    )
    calibrate_parser.add_argument("--prefix", type=float, default=0.25)
    calibrate_parser.add_argument("--capacity", type=float, default=0.05)
    _add_common(calibrate_parser)
    calibrate_parser.set_defaults(func=_cmd_calibrate)

    report_parser = sub.add_parser(
        "report", help="run every experiment and write a REPORT.md + SVGs"
    )
    report_parser.add_argument("--output", default="report")
    _add_common(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    sweep_parser = sub.add_parser(
        "seed-sweep", help="seed-sensitivity analysis of a relative claim"
    )
    sweep_parser.add_argument("--strategy", default="sg2")
    sweep_parser.add_argument("--baseline", default="gdstar")
    sweep_parser.add_argument(
        "--trace", choices=["news", "alternative"], default="news"
    )
    sweep_parser.add_argument("--capacity", type=float, default=0.05)
    sweep_parser.add_argument("--seeds", type=int, default=5)
    _add_common(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_seed_sweep)

    chaos_parser = sub.add_parser(
        "chaos", help="compare strategy resilience under fault injection"
    )
    chaos_parser.add_argument(
        "--strategies",
        default="gdstar,sub,sg2,dc-lap",
        help="comma-separated strategy names to compare",
    )
    chaos_parser.add_argument(
        "--trace", choices=["news", "alternative"], default="news"
    )
    chaos_parser.add_argument("--capacity", type=float, default=0.05)
    chaos_parser.add_argument(
        "--proxy-mtbf", type=float, default=None,
        help="mean seconds between proxy crashes (0 disables)",
    )
    chaos_parser.add_argument(
        "--proxy-mttr", type=float, default=None,
        help="mean proxy downtime in seconds",
    )
    chaos_parser.add_argument(
        "--crash-fraction", type=float, default=None,
        help="fraction of proxies eligible to crash",
    )
    chaos_parser.add_argument(
        "--publisher-mtbf", type=float, default=None,
        help="mean seconds between publisher outages (0 disables)",
    )
    chaos_parser.add_argument(
        "--publisher-mttr", type=float, default=None,
        help="mean publisher outage length in seconds",
    )
    chaos_parser.add_argument(
        "--degraded-mtbf", type=float, default=None,
        help="mean seconds between degraded-link episodes (0 disables)",
    )
    chaos_parser.add_argument(
        "--degraded-mttr", type=float, default=None,
        help="mean degraded-link episode length in seconds",
    )
    chaos_parser.add_argument(
        "--loss", type=float, default=None,
        help="per-transfer loss probability on degraded links",
    )
    chaos_parser.add_argument(
        "--delivery-loss", type=float, default=None,
        help="per-notification loss probability on the push path",
    )
    chaos_parser.add_argument(
        "--delivery-dup", type=float, default=None,
        help="probability a delivered notification arrives twice",
    )
    chaos_parser.add_argument(
        "--delivery-reorder", type=float, default=None,
        help="max extra notification delay in seconds (reordering)",
    )
    chaos_parser.add_argument(
        "--broker-mtbf", type=float, default=None,
        help="mean seconds between broker-node crashes (0 disables)",
    )
    chaos_parser.add_argument(
        "--broker-mttr", type=float, default=None,
        help="mean broker-node downtime in seconds",
    )
    chaos_parser.add_argument(
        "--broker-count", type=int, default=None,
        help="broker shards on the push path (proxy s -> broker s %% count)",
    )
    chaos_parser.add_argument(
        "--delivery-retries", type=int, default=None,
        help="max retransmissions per lost notification (0 = fire and forget)",
    )
    chaos_parser.add_argument(
        "--delivery-ack-timeout", type=float, default=None,
        help="seconds before the first retransmission (doubles per attempt)",
    )
    chaos_parser.add_argument(
        "--no-repair", action="store_true",
        help="disable access-time staleness repair (silent-staleness baseline)",
    )
    _add_common(chaos_parser)
    _add_obs(chaos_parser)
    chaos_parser.set_defaults(func=_cmd_chaos)

    inspect_parser = sub.add_parser(
        "inspect", help="summarize a JSONL event trace written by --trace-out"
    )
    inspect_parser.add_argument("path", help="trace file (JSONL)")
    inspect_parser.add_argument(
        "--top", type=int, default=10,
        help="how many hottest pages to list",
    )
    inspect_parser.add_argument(
        "--page", type=int, default=None,
        help="show the full event history of one page instead",
    )
    inspect_parser.add_argument(
        "--json", action="store_true",
        help="emit the summary (or page history) as JSON",
    )
    _add_verbose(inspect_parser)
    inspect_parser.set_defaults(func=_cmd_inspect)

    explain_parser = sub.add_parser(
        "explain",
        help="reconstruct one page's causal lifecycle chain from a trace "
             "(why was this request a miss?)",
    )
    explain_parser.add_argument(
        "kind", choices=["page"], help="what to explain (only 'page' for now)"
    )
    explain_parser.add_argument("id", type=int, help="page id to explain")
    explain_parser.add_argument(
        "path", help="trace file (JSONL) written by --trace-out"
    )
    explain_parser.add_argument(
        "--proxy", type=int, default=None,
        help="restrict the chain to one proxy",
    )
    explain_parser.add_argument(
        "--json", action="store_true", help="emit the chain as JSON"
    )
    _add_verbose(explain_parser)
    explain_parser.set_defaults(func=_cmd_explain)

    generate_parser = sub.add_parser(
        "generate-trace", help="generate a workload and write it as JSON"
    )
    generate_parser.add_argument(
        "--trace", choices=["news", "alternative"], default="news"
    )
    generate_parser.add_argument("--output", default="trace.json")
    _add_common(generate_parser)
    generate_parser.set_defaults(func=_cmd_generate_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-pubsub`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_cli_logging(args.verbose)
    _configure_artifact_cache(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
