"""repro — Content Distribution for Publish/Subscribe Services.

A from-scratch Python reproduction of Chen, LaPaugh & Singh,
*Content Distribution for Publish/Subscribe Services* (Middleware 2003):
hybrid push-time/access-time content placement for content-intensive
publish/subscribe systems, evaluated on an MSNBC-derived synthetic news
workload.

Package map:

* :mod:`repro.core` — the nine distribution strategies (GD*, SUB, SG1,
  SG2, SR, DM, DC-FP, DC-AP, DC-LAP) plus classic comparators.
* :mod:`repro.cache` — capacity-limited cache substrate.
* :mod:`repro.pubsub` — subscriptions, matching, routing, broker.
* :mod:`repro.network` — BRITE-style topologies and fetch costs.
* :mod:`repro.sim` — discrete-event simulation kernel and seeded RNG.
* :mod:`repro.workload` — the §4 synthetic workload generator.
* :mod:`repro.system` — the Fig. 2 simulator and its metrics.
* :mod:`repro.experiments` — one function per paper table/figure.

Quickstart::

    from repro.workload.presets import make_trace
    from repro.system import SimulationConfig, run_simulation

    trace = make_trace("news", scale=0.2, seed=7)
    result = run_simulation(trace, SimulationConfig(strategy="sg2"))
    print(result.summary())
"""

from repro.core import make_policy, strategy_names
from repro.system import SimulationConfig, PushingScheme, run_simulation
from repro.workload import (
    WorkloadConfig,
    generate_workload,
    news_config,
    alternative_config,
)
from repro.workload.presets import make_trace

__version__ = "1.0.0"

__all__ = [
    "make_policy",
    "strategy_names",
    "SimulationConfig",
    "PushingScheme",
    "run_simulation",
    "WorkloadConfig",
    "generate_workload",
    "news_config",
    "alternative_config",
    "make_trace",
    "__version__",
]
