"""Cooperative proxies — an extension beyond the paper.

The paper's proxies are independent: every miss goes to the publisher.
Its related-work section discusses cooperative/hierarchical caching
(Gadde et al.; Wolman et al.), so this extension adds the natural next
step: on a local miss, a proxy first asks its ``neighbor_count``
closest peers (by overlay hop distance) for the *current version* of
the page and fetches from the nearest holder instead of the origin.

Placement decisions are untouched — each proxy still runs its own
strategy on local information — so the comparison isolates how much
peering adds on top of each content distribution strategy.  Peer
fetches are counted separately (``peer_fetch_pages``) and priced at the
inter-proxy distance in the response-time model.

Under the fault layer a peer request can hit a *crashed* peer: the
requester pays ``peer_timeout`` for the dead probe and fails over down
the chain — next-nearest live holder, then the origin (with the origin
retry/backoff rules) — so cooperation degrades gracefully instead of
hanging on dead neighbours.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import FaultSchedule
from repro.network.topology import Topology
from repro.obs.recorder import Observer
from repro.pubsub.matching import TraceMatchCounts
from repro.system.config import SimulationConfig
from repro.system.metrics import SimulationResult
from repro.system.proxy import ProxyServer
from repro.system.simulator import Simulation
from repro.workload.trace import Workload


class CooperativeSimulation(Simulation):
    """A :class:`Simulation` whose proxies answer each other's misses."""

    def __init__(
        self,
        workload: Workload,
        config: SimulationConfig,
        match_table: Optional[TraceMatchCounts] = None,
        topology: Optional[Topology] = None,
        neighbor_count: int = 3,
        fault_schedule: Optional[FaultSchedule] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        if neighbor_count < 0:
            raise ValueError(f"neighbor_count must be >= 0, got {neighbor_count}")
        super().__init__(
            workload,
            config,
            match_table,
            topology,
            fault_schedule=fault_schedule,
            observer=observer,
        )
        self.neighbor_count = int(neighbor_count)
        self._neighbors = self._nearest_neighbors()
        self.peer_fetch_pages = 0
        self.peer_fetch_bytes = 0
        self.peer_fetch_pages_by_hour: Dict[int, int] = {}

    def _nearest_neighbors(self) -> List[List[Tuple[int, float]]]:
        """For each proxy: its k nearest peer proxies as (index, hops)."""
        graph = self.topology.graph
        proxy_nodes = self.topology.proxy_nodes
        node_to_index = {node: index for index, node in enumerate(proxy_nodes)}
        neighbors: List[List[Tuple[int, float]]] = []
        for node in proxy_nodes:
            distances = graph.shortest_paths_from(node)
            peers = sorted(
                (
                    (node_to_index[other], hops)
                    for other, hops in distances.items()
                    if other in node_to_index and other != node
                ),
                key=lambda pair: (pair[1], pair[0]),
            )
            neighbors.append(peers[: self.neighbor_count])
        return neighbors

    def _peer_with_version(
        self, server_id: int, page_id: int, version: int
    ) -> Optional[Tuple[int, float]]:
        """Nearest peer holding the current version, or None.

        A peer is only worth asking when it is strictly closer than the
        origin publisher — otherwise fetching from the origin is at
        least as fast and keeps the protocol simpler.
        """
        origin_cost = self.proxies[server_id].policy.cost
        for peer_index, hops in self._neighbors[server_id]:
            if max(1.0, hops) >= origin_cost:
                break  # neighbors are distance-sorted: no closer peer exists
            policy = self.proxies[peer_index].policy
            if policy.contains(page_id) and policy.cached_version(page_id) == version:
                return peer_index, hops
        return None

    def _handle_request(self, server_id: int, page_id: int, now: float) -> None:
        if self._faults_on or self._overload_on:
            # The base class routes through the degraded/overload path,
            # which resolves misses via our ``_fetch_on_miss`` failover
            # chain (and queue-rejected pulls via
            # ``_rejected_pull_resolution`` below).
            super()._handle_request(server_id, page_id, now)
            return
        version = self.publisher.current_version(page_id)
        if version is None:
            raise RuntimeError(
                f"request for page {page_id} before its first publication"
            )
        size = self.publisher.page_size(page_id)
        match_count = self.match_table.count_for(page_id, server_id)
        proxy = self.proxies[server_id]
        obs_on = self._obs_on
        if obs_on:
            self._obs_now = now
            self.obs.request(now, page_id, server_id)
        outcome = proxy.handle_request(page_id, version, size, match_count, now)
        latency = self.config.hit_latency
        if not outcome.hit:
            peer = self._peer_with_version(server_id, page_id, version)
            if peer is not None:
                peer_index, hops = peer
                self._record_peer_fetch(size, now)
                latency += self.config.per_hop_latency * max(1.0, hops)
                if obs_on:
                    self.obs.fetch(
                        now, page_id, server_id, source=f"peer:{peer_index}"
                    )
            else:
                self.publisher.record_fetch(page_id, now)
                latency += self.config.per_hop_latency * proxy.policy.cost
                if obs_on:
                    self.obs.fetch(now, page_id, server_id)
        proxy.stats.response_time += latency
        if obs_on:
            kind = "hit" if outcome.hit else ("stale" if outcome.stale else "miss")
            self.obs.request_outcome(now, page_id, server_id, kind, latency)
        self._maybe_check_invariants()

    def _record_peer_fetch(self, size: int, now: float) -> None:
        self.peer_fetch_pages += 1
        self.peer_fetch_bytes += size
        hour = int(now // 3600.0)
        self.peer_fetch_pages_by_hour[hour] = (
            self.peer_fetch_pages_by_hour.get(hour, 0) + 1
        )

    def _fetch_on_miss(
        self,
        proxy: ProxyServer,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        now: float,
    ) -> Optional[Tuple[float, bool]]:
        """The failover chain: nearest live holder, next, ..., origin.

        Peers strictly closer than the origin are probed in distance
        order.  A crashed peer costs ``peer_timeout`` seconds before the
        chain moves on; the first live peer holding the current version
        serves the fetch.  When the chain is exhausted the origin is the
        terminal fallback, with its usual outage retry rules — so the
        worst case is dead-peer timeouts plus origin backoff, and the
        request only *fails* if the origin retries are also exhausted.
        """
        obs_on = self._obs_on
        waited = 0.0
        timed_out = 0
        origin_cost = proxy.policy.cost
        for peer_index, hops in self._neighbors[server_id]:
            if max(1.0, hops) >= origin_cost:
                break  # neighbors are distance-sorted: no closer peer exists
            peer = self.proxies[peer_index]
            if not peer.up:
                # Dead probe: pay the timeout, fail over to the next hop.
                waited += self.chaos.peer_timeout
                timed_out += 1
                if obs_on:
                    self.obs.failover(
                        now,
                        server_id,
                        page_id,
                        target=f"peer:{peer_index}",
                        reason="peer-down",
                    )
                continue
            policy = peer.policy
            if policy.contains(page_id) and policy.cached_version(page_id) == version:
                self._record_peer_fetch(size, now)
                if obs_on:
                    self.obs.fetch(
                        now, page_id, server_id, source=f"peer:{peer_index}"
                    )
                latency, degraded = self._degrade_transfer(
                    self.config.per_hop_latency * max(1.0, hops), server_id, now
                )
                return waited + latency, degraded or timed_out > 0
        resolution = self._origin_resolution(proxy, server_id, page_id, now)
        if resolution is None:
            return None
        extra_latency, degraded = resolution
        return waited + extra_latency, degraded or timed_out > 0

    def _rejected_pull_resolution(
        self, proxy: ProxyServer, server_id: int, page_id: int, now: float
    ) -> Optional[Tuple[float, bool]]:
        """Queue-rejected pulls fail over down the peer chain too.

        The rejected client retries off-proxy exactly like a miss: the
        nearest live holder of the current version answers, and only an
        exhausted chain falls through to the origin admission gate.
        """
        version = self.publisher.current_version(page_id)
        size = self.publisher.page_size(page_id)
        return self._fetch_on_miss(proxy, server_id, page_id, version, size, now)

    def _attach_observer(self) -> None:
        super()._attach_observer()
        profiler = self.obs.profiler
        if profiler is not None:
            # Instance-attribute shadowing, like ProxyServer.instrument.
            self._peer_with_version = profiler.wrap(
                self._peer_with_version, "coop.peer_lookup"
            )

    def _collect(self, wall_seconds: float) -> SimulationResult:
        result = super()._collect(wall_seconds)
        result.peer_fetch_pages = self.peer_fetch_pages
        result.peer_fetch_bytes = self.peer_fetch_bytes
        return result


def run_cooperative_simulation(
    workload: Workload,
    config: SimulationConfig,
    neighbor_count: int = 3,
    match_table: Optional[TraceMatchCounts] = None,
    topology: Optional[Topology] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    observer: Optional[Observer] = None,
) -> SimulationResult:
    """Convenience wrapper mirroring :func:`run_simulation`."""
    return CooperativeSimulation(
        workload,
        config,
        match_table=match_table,
        topology=topology,
        neighbor_count=neighbor_count,
        fault_schedule=fault_schedule,
        observer=observer,
    ).run()
