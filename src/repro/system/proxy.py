"""Proxy servers.

A proxy aggregates its local users' subscriptions, runs the placing and
caching modules (one :class:`~repro.core.policy.Policy` instance) over
its limited storage, and serves its users' requests — Fig. 2's
"A server" box.

Under the fault-injection layer a proxy can crash: it goes offline,
loses its in-memory cache, and later restarts **cold**.  The ``up``
flag is toggled by the :class:`~repro.faults.injector.FaultInjector`
via the simulator; a down proxy serves no requests and rejects pushes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import Policy, PushOutcome, RequestOutcome


class ProxyServer:
    """One content-distribution proxy close to a group of subscribers."""

    def __init__(self, server_id: int, policy: Policy) -> None:
        self.server_id = int(server_id)
        self.policy = policy
        #: Whether the proxy process is currently running.
        self.up = True
        #: Number of crashes suffered so far.
        self.crash_count = 0
        #: Accumulated downtime (seconds) over completed outages.
        self.downtime_seconds = 0.0
        self._down_since: Optional[float] = None

    @property
    def stats(self):
        """The underlying policy's counters."""
        return self.policy.stats

    # -- fault model -------------------------------------------------------

    def crash(self, now: float) -> None:
        """The proxy process dies: offline, cache contents gone."""
        if not self.up:
            raise RuntimeError(f"proxy {self.server_id} is already down")
        self.up = False
        self.crash_count += 1
        self._down_since = now
        self.policy.drop_contents()

    def recover(self, now: float) -> None:
        """The proxy restarts — cold: storage was cleared at crash time."""
        if self.up:
            raise RuntimeError(f"proxy {self.server_id} is already up")
        self.up = True
        if self._down_since is not None:
            self.downtime_seconds += now - self._down_since
            self._down_since = None

    # -- request/publish handling ------------------------------------------

    def handle_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        """A published page matched ``match_count`` local subscriptions."""
        return self.policy.on_publish(page_id, version, size, match_count, now)

    def handle_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        """A local user requests the current ``version`` of a page."""
        return self.policy.on_request(page_id, version, size, match_count, now)

    def check_invariants(self) -> None:
        self.policy.check_invariants()

    # -- observability -------------------------------------------------------

    def instrument(self, profiler) -> None:
        """Time this proxy's policy entry points under ``policy.*``.

        ``profiler`` is a :class:`repro.obs.profile.Profiler`; the
        timed wrappers shadow the bound methods as instance attributes
        so uninstrumented proxies keep the plain class methods.
        """
        self.handle_publish = profiler.wrap(self.handle_publish, "policy.on_publish")
        self.handle_request = profiler.wrap(self.handle_request, "policy.on_request")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "down"
        return f"ProxyServer(id={self.server_id}, policy={self.policy.name}, {state})"
