"""Proxy servers.

A proxy aggregates its local users' subscriptions, runs the placing and
caching modules (one :class:`~repro.core.policy.Policy` instance) over
its limited storage, and serves its users' requests — Fig. 2's
"A server" box.
"""

from __future__ import annotations

from repro.core.policy import Policy, PushOutcome, RequestOutcome


class ProxyServer:
    """One content-distribution proxy close to a group of subscribers."""

    def __init__(self, server_id: int, policy: Policy) -> None:
        self.server_id = int(server_id)
        self.policy = policy

    @property
    def stats(self):
        """The underlying policy's counters."""
        return self.policy.stats

    def handle_publish(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> PushOutcome:
        """A published page matched ``match_count`` local subscriptions."""
        return self.policy.on_publish(page_id, version, size, match_count, now)

    def handle_request(
        self, page_id: int, version: int, size: int, match_count: int, now: float
    ) -> RequestOutcome:
        """A local user requests the current ``version`` of a page."""
        return self.policy.on_request(page_id, version, size, match_count, now)

    def check_invariants(self) -> None:
        self.policy.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProxyServer(id={self.server_id}, policy={self.policy.name})"
