"""Sharded simulation: the proxy fleet partitioned across processes.

In the fault-free simulation the proxies are *independent given the
trace*: a proxy's cache evolves only from the publish notifications
matched to it and the requests arriving at it, and the publisher's
version counter is a pure function of the publish stream.  So the run
parallelises by partitioning the proxies: every worker process replays
the **full publish stream** (keeping the publisher's version state
bit-identical everywhere) against a *shard-filtered match table* — so
notifications only reach, and push traffic is only accounted for, the
worker's own proxies — plus **only its shard's requests**.  Each worker
runs the ordinary batched/hybrid interior locally; the parent then
merges the per-shard :class:`~repro.system.metrics.SimulationResult`
partials with a pure reduction:

* additive scalars (requests, hits, push/fetch pages and bytes,
  response time, peer fetches) and hourly series sum element-wise;
* ``per_proxy`` stats are taken from each proxy's owning shard;
* metadata fields are asserted identical across shards;
* ``wall_seconds`` is the parent's wall clock.

Because each proxy sees exactly the event subsequence it would see in
one process — same order, same values — the merged result is
bit-identical to ``workers=1`` in every field except
``wall_seconds``/``profile`` (enforced by
``tests/system/test_sharding.py`` across strategies and pushing
schemes).

**Decline rules** (the batched-driver pattern: fall back rather than
be subtly wrong): configurations with cross-shard state — fault
schedules, the overload layer's shared origin admission and retry
budget, subscription churn, observers — run single-process.  The
**cooperative** extension shards only when its peer-lookup graph
allows: effective peer edges (k nearest neighbours strictly closer
than the origin) are grouped into connected components, components are
packed onto workers, and a chain that connects everything into one
component declines (:class:`ShardingError` when strict).

Workers are forked (``multiprocessing`` fork context), so the trace,
match table and topology are inherited copy-on-write — nothing is
pickled in, only the partial results come back.  Streaming workloads
(:mod:`repro.workload.streaming`) compose naturally: every worker
reads the shared on-disk spool lazily.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.network.topology import Topology, build_topology
from repro.obs.log import get_logger
from repro.obs.recorder import Observer
from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.metrics import SimulationResult
from repro.system.simulator import Simulation
from repro.workload.subscriptions import build_match_counts

logger = get_logger(__name__)


class ShardingError(ValueError):
    """A configuration whose state cannot be partitioned across shards."""


#: SimulationResult fields summed across shards.
_SUM_FIELDS = (
    "requests",
    "hits",
    "stale_hits",
    "push_transfers",
    "push_bytes",
    "fetch_pages",
    "fetch_bytes",
    "peer_fetch_pages",
    "peer_fetch_bytes",
)

#: Hourly series summed element-wise across shards.
_SUM_SERIES = (
    "hourly_requests",
    "hourly_hits",
    "hourly_push_pages",
    "hourly_fetch_pages",
    "hourly_push_bytes",
    "hourly_fetch_bytes",
)

#: Metadata fields that must agree across shards.
_EQUAL_FIELDS = (
    "strategy",
    "trace_label",
    "capacity_fraction",
    "subscription_quality",
    "pushing_scheme",
    "hour_count",
)


# -- eligibility and planning ------------------------------------------------


def shard_eligibility(
    workload, config: SimulationConfig, observer: Optional[Observer] = None
) -> Optional[str]:
    """Why this run cannot shard, or ``None`` when it can.

    Mirrors ``Simulation._batched_eligible``: anything that couples
    proxies through global state makes the per-shard replay diverge
    from the single-process one, so those configurations decline.
    """
    if config.chaos is not None:
        return "fault injection shares a global schedule and delivery state"
    if config.overload is not None and config.overload.enabled:
        return "the overload layer shares origin admission and retry budget"
    if getattr(workload, "lifecycle", None):
        return "subscription churn routes lifecycle state through one hub"
    if observer is not None and observer.enabled:
        return "an observer records one global event order"
    return None


def _server_weights(workload) -> List[int]:
    """Per-server request totals, for balanced partitioning."""
    server_count = workload.config.server_count
    weights = [0] * server_count
    pairs = workload.request_pairs()
    if isinstance(pairs, dict):
        for (_page_id, server_id), count in pairs.items():
            weights[server_id] += count
    else:
        for _page_id, server_id in pairs:
            weights[server_id] += 1
    return weights


def _pack_units(
    units: List[List[int]], weights: List[int], bins: int
) -> List[List[int]]:
    """Greedy LPT: heaviest unit first onto the lightest bin.

    Deterministic (ties break on lowest first-server, then lowest bin
    index); empty bins are dropped.
    """
    order = sorted(range(len(units)), key=lambda i: (-weights[i], units[i][0]))
    loads = [0] * bins
    shards: List[List[int]] = [[] for _ in range(bins)]
    for index in order:
        target = min(range(bins), key=lambda j: (loads[j], j))
        shards[target].extend(units[index])
        loads[target] += weights[index]
    return [sorted(shard) for shard in shards if shard]


def _peer_components(
    topology: Topology, neighbor_count: int
) -> List[List[int]]:
    """Connected components of the *effective* cooperative peer graph.

    An edge exists where a peer lookup can actually read another
    proxy's cache: peer ``p`` is among ``s``'s ``neighbor_count``
    nearest proxies *and* strictly closer than ``s``'s origin
    (``max(1, hops) < origin_cost``) — the exact walk-and-break rule of
    ``CooperativeSimulation``.  Proxies in one component must share a
    shard; distinct components never observe each other.
    """
    graph = topology.graph
    proxy_nodes = topology.proxy_nodes
    node_to_index = {node: index for index, node in enumerate(proxy_nodes)}
    costs = topology.fetch_costs()
    parent = list(range(len(proxy_nodes)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for index, node in enumerate(proxy_nodes):
        distances = graph.shortest_paths_from(node)
        peers = sorted(
            (
                (node_to_index[other], hops)
                for other, hops in distances.items()
                if other in node_to_index and other != node
            ),
            key=lambda pair: (pair[1], pair[0]),
        )[:neighbor_count]
        origin_cost = costs[index % len(costs)]
        for peer_index, hops in peers:
            if max(1.0, hops) >= origin_cost:
                break  # distance-sorted: no closer peer follows
            union(index, peer_index)

    components: Dict[int, List[int]] = {}
    for index in range(len(proxy_nodes)):
        components.setdefault(find(index), []).append(index)
    return [sorted(members) for _root, members in sorted(components.items())]


def plan_shards(
    workload,
    config: SimulationConfig,
    workers: int,
    topology: Optional[Topology] = None,
    neighbor_count: Optional[int] = None,
) -> List[List[int]]:
    """Partition the proxies into at most ``workers`` balanced shards.

    Plain runs split individual servers greedily by request weight;
    cooperative runs split whole peer-graph components.  Raises
    :class:`ShardingError` when cooperation chains every proxy into one
    component (nothing to parallelise without crossing shards).
    """
    server_count = workload.config.server_count
    bins = max(1, min(int(workers), server_count))
    weights = _server_weights(workload)
    if neighbor_count is not None and neighbor_count > 0 and bins > 1:
        if topology is None:
            raise ValueError("cooperative shard planning needs the topology")
        units = _peer_components(topology, neighbor_count)
        unit_weights = [
            sum(weights[server] for server in unit) for unit in units
        ]
        shards = _pack_units(units, unit_weights, bins)
        if len(shards) < 2:
            raise ShardingError(
                "cooperation peer chains connect the proxies into one "
                "group that cannot be split across workers; run with "
                "--workers 1 or fewer neighbors"
            )
        return shards
    units = [[server] for server in range(server_count)]
    return _pack_units(units, weights, bins)


# -- shard-local views -------------------------------------------------------


class ShardMatchTable:
    """A match-table view restricted to one shard's proxies.

    ``match_vector`` filters the publish fan-out so a worker's publish
    replay touches (and accounts traffic for) only its own proxies;
    ``count_for`` delegates unchanged — it is only ever asked about
    in-shard servers, because the request stream is already filtered.
    """

    def __init__(self, base: TraceMatchCounts, servers: FrozenSet[int]) -> None:
        self._base = base
        self._servers = servers
        self._vectors: Dict[int, tuple] = {}

    def match_vector(self, page_id: int):
        vector = self._vectors.get(page_id)
        if vector is None:
            servers = self._servers
            vector = tuple(
                pair
                for pair in self._base.match_vector(page_id)
                if pair[0] in servers
            )
            self._vectors[page_id] = vector
        return vector

    def count_for(self, page_id: int, server_id: int) -> int:
        return self._base.count_for(page_id, server_id)


class _FilteredRequests:
    """Re-iterable view of one shard's slice of the request stream."""

    __slots__ = ("_source", "_servers")

    def __init__(self, source, servers: FrozenSet[int]) -> None:
        self._source = source
        self._servers = servers

    def __iter__(self):
        servers = self._servers
        return (
            record for record in self._source if record.server_id in servers
        )


class ShardWorkloadView:
    """One worker's view of the trace: all publishes, shard requests.

    Duck-compatible with the workload objects the simulator consumes.
    ``capacities`` delegates to the *full* workload so every worker
    sizes every proxy exactly as the single-process run does (the mean
    over all servers enters the formula).  Works over materialized and
    streaming bases alike.
    """

    def __init__(self, base, servers: FrozenSet[int]) -> None:
        self._base = base
        self._servers = servers
        self.streaming = bool(getattr(base, "streaming", False))
        self.config = base.config
        self.pages = base.pages
        self.label = base.label
        # Sharding declines churn, so the view never carries lifecycle.
        self.lifecycle: List = []
        self.churn = None
        self._request_total: Optional[int] = None

    @property
    def publishes(self):
        return self._base.publishes

    @property
    def requests(self):
        return _FilteredRequests(self._base.requests, self._servers)

    @property
    def publish_count(self) -> int:
        return self._base.publish_count

    @property
    def request_count(self) -> int:
        if self._request_total is None:
            pairs = self._base.request_pairs()
            servers = self._servers
            if isinstance(pairs, dict):
                total = sum(
                    count
                    for (_page, server), count in pairs.items()
                    if server in servers
                )
            else:
                total = sum(1 for _page, server in pairs if server in servers)
            self._request_total = total
        return self._request_total

    def request_pairs(self):
        pairs = self._base.request_pairs()
        servers = self._servers
        if isinstance(pairs, dict):
            return {
                key: count
                for key, count in pairs.items()
                if key[1] in servers
            }
        return [pair for pair in pairs if pair[1] in servers]

    def capacities(self, fraction: float) -> Dict[int, int]:
        return self._base.capacities(fraction)

    def unique_bytes_per_server(self) -> Dict[int, int]:
        return self._base.unique_bytes_per_server()

    def version_at(self, page_id: int, when: float) -> int:
        return self._base.version_at(page_id, when)


# -- the fork-pool runner ----------------------------------------------------

#: Worker inputs, installed before the fork so nothing is pickled in.
_WORKER_CONTEXT: Optional[tuple] = None


def _run_shard(index: int) -> SimulationResult:
    workload, config, match_table, topology, shards, neighbor_count = (
        _WORKER_CONTEXT
    )
    shard = frozenset(shards[index])
    view = ShardWorkloadView(workload, shard)
    table = ShardMatchTable(match_table, shard)
    if neighbor_count is not None:
        from repro.system.cooperation import CooperativeSimulation

        simulation = CooperativeSimulation(
            view, config, table, topology, neighbor_count=neighbor_count
        )
    else:
        simulation = Simulation(view, config, table, topology)
    return simulation.run()


def merge_shard_results(
    partials: Sequence[SimulationResult],
    shards: Sequence[Sequence[int]],
    server_count: int,
    wall_seconds: float,
) -> SimulationResult:
    """Reduce per-shard partial results into one fleet-wide result."""
    if not partials:
        raise ValueError("nothing to merge: no shard results")
    first = partials[0]
    for other in partials[1:]:
        for name in _EQUAL_FIELDS:
            if getattr(other, name) != getattr(first, name):
                raise ValueError(
                    f"shard results disagree on {name}: "
                    f"{getattr(other, name)!r} != {getattr(first, name)!r}"
                )

    owner: Dict[int, int] = {}
    for shard_index, shard in enumerate(shards):
        for server_id in shard:
            owner[server_id] = shard_index

    merged = replace(first)
    for name in _SUM_FIELDS:
        setattr(merged, name, sum(getattr(p, name) for p in partials))
    for name in _SUM_SERIES:
        series = [list(getattr(p, name)) for p in partials]
        setattr(
            merged,
            name,
            [sum(values) for values in zip(*series)] if series[0] else [],
        )
    merged.per_proxy = [
        partials[owner[server_id]].per_proxy[server_id]
        for server_id in range(server_count)
    ]
    # The same server-order sum Simulation._collect evaluates, over the
    # same per-proxy floats — bit-identical to the workers=1 total.
    merged.total_response_time = sum(
        stats.response_time for stats in merged.per_proxy
    )
    merged.wall_seconds = wall_seconds
    merged.profile = None
    return merged


def run_sharded(
    workload,
    config: SimulationConfig,
    match_table: Optional[TraceMatchCounts] = None,
    topology: Optional[Topology] = None,
    observer: Optional[Observer] = None,
    neighbor_count: Optional[int] = None,
    strict: bool = False,
) -> SimulationResult:
    """Run one cell across ``config.workers`` shard processes.

    Ineligible or unpartitionable configurations fall back to the
    single-process simulation (logged); with ``strict=True`` an
    unpartitionable *cooperation* graph raises :class:`ShardingError`
    instead, so callers (the CLI) can surface a one-line error.
    """
    started = time.perf_counter()
    workers = int(config.workers)

    def single() -> SimulationResult:
        if neighbor_count is not None:
            from repro.system.cooperation import CooperativeSimulation

            return CooperativeSimulation(
                workload,
                config,
                match_table,
                topology,
                neighbor_count=neighbor_count,
                observer=observer,
            ).run()
        return Simulation(
            workload, config, match_table, topology, observer=observer
        ).run()

    if workers <= 1:
        return single()

    reason = shard_eligibility(workload, config, observer)
    if reason is None and "fork" not in multiprocessing.get_all_start_methods():
        reason = "the platform lacks the fork start method"
    if reason is not None:
        logger.info("sharding declined (%s); running single-process", reason)
        return single()

    # Build the shared inputs once, exactly as Simulation.__init__
    # would (the streams are independent per name, so order does not
    # matter); workers then inherit them through the fork.
    streams = RandomStreams(config.seed)
    if match_table is None:
        match_table = TraceMatchCounts(
            build_match_counts(
                workload.request_pairs(),
                config.subscription_quality,
                streams.stream("subscriptions"),
                notified_fraction=config.notified_fraction,
            )
        )
    if topology is None:
        topology = build_topology(
            workload.config.server_count,
            streams.stream("topology"),
            model=config.topology_model,
            extra_nodes=config.topology_extra_nodes,
        )

    try:
        shards = plan_shards(
            workload,
            config,
            workers,
            topology=topology,
            neighbor_count=neighbor_count,
        )
    except ShardingError as error:
        if strict:
            raise
        logger.info("sharding declined (%s); running single-process", error)
        return single()
    if len(shards) <= 1:
        return single()

    worker_config = replace(config, workers=1)
    global _WORKER_CONTEXT
    context = multiprocessing.get_context("fork")
    _WORKER_CONTEXT = (
        workload,
        worker_config,
        match_table,
        topology,
        shards,
        neighbor_count,
    )
    try:
        with context.Pool(processes=len(shards)) as pool:
            partials = pool.map(_run_shard, range(len(shards)))
    finally:
        _WORKER_CONTEXT = None

    logger.info(
        "merged %d shards (%s)",
        len(shards),
        "/".join(str(len(shard)) for shard in shards),
    )
    return merge_shard_results(
        partials,
        shards,
        workload.config.server_count,
        time.perf_counter() - started,
    )
