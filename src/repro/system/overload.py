"""Overload and backpressure: finite service capacity under load.

The paper's proxies and origin absorb unlimited concurrent work, so the
reproduction can never exhibit the overload regime where push-based
strategies earn their keep.  This module makes capacity finite, in
three independently armed parts (see
:class:`~repro.faults.spec.OverloadSpec`):

* :class:`ServiceQueue` — a bounded deterministic service queue per
  proxy (icarus-style): each admitted job occupies ``1/service_rate``
  seconds of a single server, arrivals beyond ``queue_capacity`` are
  rejected, and *pushes are shed before pulls* (they lose admission at
  a lower occupancy threshold — the paper's subscriber-first model).
  Average queue size is sampled at arrivals, rejection percentage over
  all arrivals, matching icarus' ``AVERAGE_QUEUE_SIZE`` /
  ``PERCENTAGE_OF_REJECTION`` collectors.
* :class:`TokenBucket` + :class:`CircuitBreaker` — origin admission
  control.  Fetches spend bucket tokens refilled at
  ``origin_capacity``/s; consecutive rejections trip the breaker open,
  which fast-fails fetches (proxies degrade to serving stale copies)
  until a cooldown — optionally jittered from the ``faults.overload``
  stream — half-opens it for probes.
* :class:`RetryBudget` — a global cap on *extra* attempts shared by
  every ``capped_backoff`` user (origin retries, delivery retransmits,
  lifecycle confirms), plus seeded per-step jitter, so synchronized
  retries cannot re-overload a recovering origin.

Everything except the two jitter knobs is deterministic — no RNG
stream is derived unless jitter is requested — and the whole layer
allocates nothing when :attr:`OverloadSpec.enabled` is false, keeping
disabled runs bit-identical (the NULL discipline every optional layer
here follows).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

import numpy as np

from repro.faults.spec import OverloadSpec

__all__ = [
    "CircuitBreaker",
    "OverloadManager",
    "OverloadSpec",
    "RetryBudget",
    "ServiceQueue",
    "TokenBucket",
]


class ServiceQueue:
    """Bounded single-server queue with deterministic service times.

    Jobs are never simulated as DES events: an admitted job's
    completion time is ``max(now, last_finish) + 1/rate`` (work
    conserving, FIFO), committed into a min-heap that is lazily drained
    at the next arrival.  Occupancy is therefore an exact M/D/1-style
    queue length at every arrival instant while costing one heap op per
    job — the same lazy-drain pattern as ``SubscriberQueue`` and the
    delivery retransmit queue.
    """

    __slots__ = (
        "service_time",
        "capacity",
        "push_capacity",
        "_finish",
        "_last_finish",
        "arrivals",
        "rejected_pulls",
        "rejected_pushes",
        "occupancy_sum",
        "peak",
    )

    def __init__(self, rate: float, capacity: int, push_shed_fraction: float) -> None:
        self.service_time = 1.0 / rate
        self.capacity = capacity
        # Pushes are shed first: they lose admission once occupancy
        # reaches this lower threshold, leaving headroom for pulls.
        self.push_capacity = max(1, int(capacity * push_shed_fraction))
        self._finish: List[float] = []
        self._last_finish = 0.0
        self.arrivals = 0
        self.rejected_pulls = 0
        self.rejected_pushes = 0
        self.occupancy_sum = 0
        self.peak = 0

    def _occupancy(self, now: float) -> int:
        finish = self._finish
        while finish and finish[0] <= now:
            heappop(finish)
        return len(finish)

    def offer(self, now: float, push: bool) -> bool:
        """Admit or reject one arriving job; True when admitted."""
        occupancy = self._occupancy(now)
        self.arrivals += 1
        self.occupancy_sum += occupancy
        limit = self.push_capacity if push else self.capacity
        if occupancy >= limit:
            if push:
                self.rejected_pushes += 1
            else:
                self.rejected_pulls += 1
            return False
        start = self._last_finish if self._last_finish > now else now
        done = start + self.service_time
        self._last_finish = done
        heappush(self._finish, done)
        if occupancy + 1 > self.peak:
            self.peak = occupancy + 1
        return True

    @property
    def rejected(self) -> int:
        return self.rejected_pulls + self.rejected_pushes

    @property
    def average_queue_size(self) -> float:
        """Mean jobs in system seen by an arrival (icarus semantics)."""
        return self.occupancy_sum / self.arrivals if self.arrivals else 0.0

    @property
    def rejection_fraction(self) -> float:
        return self.rejected / self.arrivals if self.arrivals else 0.0


class TokenBucket:
    """A token-bucket admission gate (``rate`` tokens/s, ``burst`` cap).

    ``last`` may sit in the future: analytic retry timelines commit
    admissions at planned future instants (the same forward-commitment
    the delivery planner makes), so refill clamps elapsed time at zero
    instead of going negative.
    """

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = 0.0

    def admit(self, now: float) -> bool:
        elapsed = now - self.last
        if elapsed > 0.0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


#: Circuit-breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Classic three-state breaker with lazy, time-driven transitions.

    ``threshold`` consecutive failures open it; after ``cooldown``
    seconds (plus optional seeded jitter) it half-opens and admits
    probes; ``probe_successes`` consecutive probe successes close it,
    any probe failure re-opens it.  Transitions happen lazily inside
    :meth:`allow`, so the breaker needs no agenda events and behaves
    identically under every replay engine.
    """

    __slots__ = (
        "threshold",
        "cooldown",
        "probe_successes",
        "jitter",
        "_rng",
        "state",
        "_failures",
        "_successes",
        "_opened_at",
        "_reopen_at",
        "open_count",
        "open_seconds",
        "fast_failures",
    )

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        probe_successes: int,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.probe_successes = probe_successes
        self.jitter = jitter
        self._rng = rng
        self.state = CLOSED
        self._failures = 0
        self._successes = 0
        self._opened_at = 0.0
        self._reopen_at = 0.0
        self.open_count = 0
        self.open_seconds = 0.0
        self.fast_failures = 0

    def _cooldown(self) -> float:
        if self.jitter > 0.0 and self._rng is not None:
            return self.cooldown * (1.0 + self.jitter * float(self._rng.random()))
        return self.cooldown

    def _open(self, now: float) -> None:
        self.state = OPEN
        self.open_count += 1
        self._opened_at = now
        self._reopen_at = now + self._cooldown()
        self._failures = 0
        self._successes = 0

    def allow(self, now: float) -> bool:
        """Whether a request may reach the guarded resource at ``now``."""
        if self.state == OPEN:
            if now < self._reopen_at:
                self.fast_failures += 1
                return False
            self.open_seconds += self._reopen_at - self._opened_at
            self.state = HALF_OPEN
            self._successes = 0
        return True

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._successes += 1
            if self._successes >= self.probe_successes:
                self.state = CLOSED
        self._failures = 0

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._open(now)
            return
        self._failures += 1
        if self.state == CLOSED and self._failures >= self.threshold:
            self._open(now)

    def finalize(self, horizon: float) -> None:
        """Close the books: charge an open interval cut by run end."""
        if self.state == OPEN:
            end = min(self._reopen_at, horizon)
            if end > self._opened_at:
                self.open_seconds += end - self._opened_at
            self.state = CLOSED


class RetryBudget:
    """A global token pool of *extra* attempts, optionally refilling."""

    __slots__ = ("budget", "rate", "tokens", "last", "spent", "denied")

    def __init__(self, budget: int, rate: float = 0.0) -> None:
        self.budget = budget
        self.rate = rate
        self.tokens = float(budget)
        self.last = 0.0
        self.spent = 0
        self.denied = 0

    def allow(self, now: float) -> bool:
        if self.rate > 0.0:
            elapsed = now - self.last
            if elapsed > 0.0:
                self.tokens = min(
                    float(self.budget), self.tokens + elapsed * self.rate
                )
                self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


class OverloadManager:
    """Facade the simulator drives; owns queues, gate, breaker, budget.

    Each part exists only when its knob arms it, and every method is a
    cheap no-op (constant True) for unarmed parts, so a partially
    configured spec pays only for what it turned on.
    """

    def __init__(
        self,
        spec: OverloadSpec,
        server_ids,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.spec = spec
        self.queues: Dict[int, ServiceQueue] = {}
        if spec.service_rate > 0.0:
            self.queues = {
                server_id: ServiceQueue(
                    spec.service_rate, spec.queue_capacity, spec.push_shed_fraction
                )
                for server_id in server_ids
            }
        self.bucket: Optional[TokenBucket] = None
        self.breaker: Optional[CircuitBreaker] = None
        if spec.origin_capacity > 0.0:
            self.bucket = TokenBucket(spec.origin_capacity, spec.origin_burst)
            self.breaker = CircuitBreaker(
                spec.breaker_threshold,
                spec.breaker_cooldown,
                spec.breaker_probe_successes,
                spec.breaker_jitter,
                rng,
            )
        self.budget: Optional[RetryBudget] = None
        if spec.retry_budget > 0:
            self.budget = RetryBudget(spec.retry_budget, spec.retry_budget_rate)
        self._rng = rng
        #: Origin fetches refused by the gate or fast-failed by the
        #: open breaker (for the result/summary counters).
        self.origin_rejections = 0

    # -- per-proxy service queues -------------------------------------------

    def admit(self, server_id: int, now: float, push: bool) -> bool:
        """Offer one job to ``server_id``'s queue; True when admitted."""
        queue = self.queues.get(server_id)
        if queue is None:
            return True
        return queue.offer(now, push)

    # -- origin admission -----------------------------------------------------

    def origin_admit(self, now: float) -> bool:
        """Whether one origin fetch is admitted at ``now``."""
        if self.bucket is None:
            return True
        if not self.breaker.allow(now):
            self.origin_rejections += 1
            return False
        if self.bucket.admit(now):
            self.breaker.record_success(now)
            return True
        self.breaker.record_failure(now)
        self.origin_rejections += 1
        return False

    def breaker_open(self) -> bool:
        return self.breaker is not None and self.breaker.state == OPEN

    # -- retry-storm protection ----------------------------------------------

    def allow_retry(self, now: float) -> bool:
        """Whether one *extra* attempt fits the global retry budget."""
        if self.budget is None:
            return True
        return self.budget.allow(now)

    def jitter_backoff(self, backoff: float) -> float:
        """Stretch one backoff step by the seeded jitter fraction."""
        if self.spec.retry_jitter > 0.0 and self._rng is not None:
            return backoff * (1.0 + self.spec.retry_jitter * float(self._rng.random()))
        return backoff

    # -- bookkeeping ----------------------------------------------------------

    def finalize(self, horizon: float) -> None:
        if self.breaker is not None:
            self.breaker.finalize(horizon)

    @property
    def queue_arrivals(self) -> int:
        return sum(q.arrivals for q in self.queues.values())

    @property
    def queue_rejected_pulls(self) -> int:
        return sum(q.rejected_pulls for q in self.queues.values())

    @property
    def queue_rejected_pushes(self) -> int:
        return sum(q.rejected_pushes for q in self.queues.values())

    @property
    def average_queue_size(self) -> float:
        """Fleet-wide mean occupancy seen by an arrival."""
        arrivals = self.queue_arrivals
        if not arrivals:
            return 0.0
        occupancy = sum(q.occupancy_sum for q in self.queues.values())
        return occupancy / arrivals

    def queue_metrics_by_proxy(self) -> Dict[int, Dict[str, float]]:
        """Per-proxy ``AVERAGE_QUEUE_SIZE`` / ``PERCENTAGE_OF_REJECTION``."""
        return {
            server_id: {
                "average_queue_size": queue.average_queue_size,
                "rejection_percentage": 100.0 * queue.rejection_fraction,
                "arrivals": float(queue.arrivals),
                "rejected_pushes": float(queue.rejected_pushes),
                "rejected_pulls": float(queue.rejected_pulls),
                "peak": float(queue.peak),
            }
            for server_id, queue in self.queues.items()
        }
