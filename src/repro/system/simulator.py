"""The top-level simulation: workload replay over the DES engine.

:class:`Simulation` wires together the workload trace, the subscription
table (eq. 7), the topology-derived fetch costs, one policy instance
per proxy and the publisher, then replays the publish and request
streams in time order through :class:`repro.sim.Environment`.  Publish
events are scheduled at URGENT priority so a page exists before any
same-instant request for it.

Traffic accounting (§5.6) happens here, not in the policies:

* under **Always-Pushing** every matched publication transfers the page
  to the proxy, stored or not;
* under **Pushing-When-Necessary** only accepted placements transfer
  content (the meta-information handshake is control traffic, ignored
  in the page/byte counts as in the paper);
* every cache miss transfers the page from the publisher once.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.core.registry import make_policy_lenient
from repro.network.topology import Topology, build_topology
from repro.pubsub.matching import TraceMatchCounts
from repro.sim.engine import Environment, NORMAL, URGENT
from repro.sim.rng import RandomStreams
from repro.system.config import PushingScheme, SimulationConfig
from repro.system.metrics import SimulationResult
from repro.system.proxy import ProxyServer
from repro.system.publisher import Publisher
from repro.workload.subscriptions import build_match_counts
from repro.workload.trace import Workload


class Simulation:
    """One strategy, one trace, one configuration."""

    def __init__(
        self,
        workload: Workload,
        config: SimulationConfig,
        match_table: Optional[TraceMatchCounts] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.workload = workload
        self.config = config
        streams = RandomStreams(config.seed)

        if match_table is None:
            table = build_match_counts(
                workload.request_pairs(),
                config.subscription_quality,
                streams.stream("subscriptions"),
                notified_fraction=config.notified_fraction,
            )
            match_table = TraceMatchCounts(table)
        self.match_table = match_table

        if topology is None:
            topology = build_topology(
                workload.config.server_count,
                streams.stream("topology"),
                model=config.topology_model,
                extra_nodes=config.topology_extra_nodes,
            )
        self.topology = topology

        costs = topology.fetch_costs()
        capacities = workload.capacities(config.capacity_fraction)
        self.publisher = Publisher(workload)
        self.proxies: List[ProxyServer] = []
        for server_id in range(workload.config.server_count):
            policy = make_policy_lenient(
                config.strategy,
                capacity_bytes=capacities[server_id],
                cost=costs[server_id % len(costs)],
                **config.strategy_options,
            )
            self.proxies.append(ProxyServer(server_id, policy))

        # page_id -> sorted list of (server_id, match_count), fixed per run.
        self._matches_by_page: Dict[int, List] = {}
        for page in workload.pages:
            counts = self.match_table.match_counts_by_id(page.page_id)
            if counts:
                self._matches_by_page[page.page_id] = sorted(counts.items())

        self._events_processed = 0
        self._total_response_time = 0.0

    # -- event handlers ---------------------------------------------------

    def _handle_publish(self, page_id: int, version: int, now: float) -> None:
        self.publisher.publish(page_id, version)
        size = self.publisher.page_size(page_id)
        for server_id, match_count in self._matches_by_page.get(page_id, ()):
            proxy = self.proxies[server_id]
            outcome = proxy.handle_publish(page_id, version, size, match_count, now)
            transferred = outcome.stored or (
                self.config.pushing is PushingScheme.ALWAYS
                and proxy.policy.uses_push
            )
            if transferred:
                self.publisher.record_push_transfer(page_id, now)
        self._maybe_check_invariants()

    def _handle_request(self, server_id: int, page_id: int, now: float) -> None:
        version = self.publisher.current_version(page_id)
        if version is None:
            raise RuntimeError(
                f"request for page {page_id} before its first publication "
                f"(t={now}); the workload generator guarantees ordering"
            )
        size = self.publisher.page_size(page_id)
        match_count = self.match_table.count_for(page_id, server_id)
        proxy = self.proxies[server_id]
        outcome = proxy.handle_request(page_id, version, size, match_count, now)
        latency = self.config.hit_latency
        if not outcome.hit:
            self.publisher.record_fetch(page_id, now)
            latency += self.config.per_hop_latency * proxy.policy.cost
        self._total_response_time += latency
        self._maybe_check_invariants()

    def _maybe_check_invariants(self) -> None:
        interval = self.config.invariant_check_interval
        self._events_processed += 1
        if interval and self._events_processed % interval == 0:
            for proxy in self.proxies:
                proxy.check_invariants()

    # -- main entry ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Replay the whole trace and collect the metrics."""
        started = time.perf_counter()
        env = Environment()
        for event in self.workload.publishes:
            env.schedule(
                event.time,
                lambda _env, p=event.page_id, v=event.version: self._handle_publish(
                    p, v, _env.now
                ),
                priority=URGENT,
            )
        for record in self.workload.requests:
            env.schedule(
                record.time,
                lambda _env, s=record.server_id, p=record.page_id: (
                    self._handle_request(s, p, _env.now)
                ),
                priority=NORMAL,
            )
        env.run()
        return self._collect(time.perf_counter() - started)

    def _collect(self, wall_seconds: float) -> SimulationResult:
        hour_count = int(self.workload.config.horizon // 3600.0) + 1
        hourly_requests = [0] * hour_count
        hourly_hits = [0] * hour_count
        for proxy in self.proxies:
            stats = proxy.stats
            for hour, count in stats.bucketed_requests.items():
                if hour < hour_count:
                    hourly_requests[hour] += count
            for hour, count in stats.bucketed_hits.items():
                if hour < hour_count:
                    hourly_hits[hour] += count

        def dense(sparse: Dict[int, int]) -> List[int]:
            return [int(sparse.get(hour, 0)) for hour in range(hour_count)]

        total_requests = sum(proxy.stats.requests for proxy in self.proxies)
        total_hits = sum(proxy.stats.hits for proxy in self.proxies)
        total_stale = sum(proxy.stats.stale_hits for proxy in self.proxies)

        return SimulationResult(
            strategy=self.config.strategy,
            trace_label=self.workload.label or "custom",
            capacity_fraction=self.config.capacity_fraction,
            subscription_quality=self.config.subscription_quality,
            pushing_scheme=self.config.pushing.value,
            requests=total_requests,
            hits=total_hits,
            stale_hits=total_stale,
            push_transfers=self.publisher.total_push_pages,
            push_bytes=self.publisher.total_push_bytes,
            fetch_pages=self.publisher.total_fetch_pages,
            fetch_bytes=self.publisher.total_fetch_bytes,
            hour_count=hour_count,
            hourly_requests=hourly_requests,
            hourly_hits=hourly_hits,
            hourly_push_pages=dense(self.publisher.push_pages_by_hour),
            hourly_fetch_pages=dense(self.publisher.fetch_pages_by_hour),
            hourly_push_bytes=dense(self.publisher.push_bytes_by_hour),
            hourly_fetch_bytes=dense(self.publisher.fetch_bytes_by_hour),
            per_proxy=[proxy.stats for proxy in self.proxies],
            wall_seconds=wall_seconds,
            total_response_time=self._total_response_time,
        )


def run_simulation(
    workload: Workload,
    config: SimulationConfig,
    match_table: Optional[TraceMatchCounts] = None,
    topology: Optional[Topology] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(workload, config, match_table, topology).run()
