"""The top-level simulation: workload replay over the DES engine.

:class:`Simulation` wires together the workload trace, the subscription
table (eq. 7), the topology-derived fetch costs, one policy instance
per proxy and the publisher, then replays the publish and request
streams in time order through :class:`repro.sim.Environment`.  Publish
events are scheduled at URGENT priority so a page exists before any
same-instant request for it.

Traffic accounting (§5.6) happens here, not in the policies:

* under **Always-Pushing** every matched publication transfers the page
  to the proxy, stored or not;
* under **Pushing-When-Necessary** only accepted placements transfer
  content (the meta-information handshake is control traffic, ignored
  in the page/byte counts as in the paper);
* every cache miss transfers the page from the publisher once.

With a :class:`~repro.faults.spec.ChaosSpec` configured, the run also
carries a fault schedule whose crash/outage windows are injected as DES
processes, and the system degrades gracefully instead of assuming
success:

* a crashed proxy loses its cache (cold restart) and rejects pushes;
  its users' requests fail over **directly to the origin** at origin
  cost;
* origin fetches during a publisher outage retry with capped
  exponential backoff; exhausted retries are counted as **failed**
  requests (nothing is placed in the cache — the bytes never arrived);
* degraded links multiply fetch latency and may lose transfers, each
  loss costing one extra round trip.

With *delivery* faults configured as well, the push path itself stops
being reliable: notifications can be lost, duplicated, delayed out of
order, or routed through a crashed broker shard.  The publisher then
runs the reliable-delivery protocol of :mod:`repro.system.delivery`
(sequence numbers, ack-timeout retransmission with capped exponential
backoff, a bounded retransmit queue), proxies suppress duplicates and
detect gaps with a :class:`~repro.pubsub.routing.SequenceTracker`, and
the request path performs lazy **staleness repair**: a cache hit whose
copy the proxy wrongly believes current is caught by an access-time
sequence validation and healed with an origin fetch, counted as repair
traffic rather than a miss.  With repair disabled the proxy silently
serves the stale copy — the measurable no-protocol baseline.

Requests the policies never see (failover and failures) are tallied
separately and merged into the request totals at collection time, so
hit ratio, availability and the hourly series all share one
denominator.
"""

from __future__ import annotations

import time
from operator import itemgetter
from typing import Dict, List, Optional, Tuple

from repro.core.registry import make_policy_lenient
from repro.faults.generator import derive_overload_rng, generate_fault_schedule
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryTracker
from repro.faults.schedule import FaultSchedule
from repro.faults.spec import ChaosSpec, OverloadSpec
from repro.network.topology import Topology, build_topology
from repro.obs.log import get_logger
from repro.obs.recorder import NULL_OBSERVER, Observer
from repro.pubsub.matching import TraceMatchCounts
from repro.pubsub.routing import SequenceTracker
from repro.sim.engine import Environment, NORMAL, URGENT
from repro.sim.rng import RandomStreams
from repro.system.config import PushingScheme, SimulationConfig
from repro.faults import LIFECYCLE_STREAM
from repro.system.delivery import (
    STALENESS_AGE_BIN_EDGES,
    ReliableDelivery,
    staleness_age_bin,
)
from repro.system.lifecycle import (
    RENEWAL_LATENCY_BIN_EDGES,
    LifecycleManager,
)
from repro.system.metrics import SimulationResult, dense_clamped
from repro.system.overload import OverloadManager
from repro.system.proxy import ProxyServer
from repro.system.publisher import Publisher
from repro.workload.churn import LifecycleRecord
from repro.workload.subscriptions import build_match_counts
from repro.workload.trace import Workload

logger = get_logger(__name__)

#: Safety cap on modelled retransmissions over one lossy transfer.
_MAX_RETRANSMITS = 8

#: Sort key for the batched replay's merged event stream: time, then
#: kind (publishes before requests at equal times — the hybrid engine's
#: URGENT-vs-NORMAL priority rule).  The sort is stable, so events of
#: one kind keep their per-stream order.
_TIME_KIND = itemgetter(0, 1)


def _outcome_kind(outcome) -> str:
    """Trace-event kind for a RequestOutcome: hit, stale or miss."""
    if outcome.hit:
        return "hit"
    if outcome.stale:
        return "stale"
    return "miss"


def _attribute_values(policy):
    """Every attribute value of ``policy``, dict- or slot-stored.

    Policies are (partially) ``__slots__``-laid-out, so ``vars()``
    alone no longer sees their caches; the slots of every class in the
    MRO are walked as well.
    """
    yield from vars(policy).values()
    for klass in type(policy).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot != "__dict__":
                try:
                    yield getattr(policy, slot)
                except AttributeError:
                    pass


def _storages_of(policy):
    """Every CacheStorage a policy owns (directly or via a HeapCache)."""
    from repro.cache.storage import CacheStorage
    from repro.core._base import HeapCache

    storages = {}
    for value in _attribute_values(policy):
        if isinstance(value, HeapCache):
            storages[id(value.storage)] = value.storage
        elif isinstance(value, CacheStorage):
            storages[id(value)] = value
    return list(storages.values())


def _heaps_of(policy):
    """Every AddressableHeap a policy owns (directly or via a HeapCache).

    Deduplicated by identity: the hot-path aliases (``_heap`` next to
    ``_cache``) would otherwise instrument the same heap twice.
    """
    from repro.cache.heap import AddressableHeap
    from repro.core._base import HeapCache

    heaps = {}
    for value in _attribute_values(policy):
        if isinstance(value, HeapCache):
            heaps[id(value.heap)] = value.heap
        elif isinstance(value, AddressableHeap):
            heaps[id(value)] = value
    return list(heaps.values())


class Simulation:
    """One strategy, one trace, one configuration."""

    def __init__(
        self,
        workload: Workload,
        config: SimulationConfig,
        match_table: Optional[TraceMatchCounts] = None,
        topology: Optional[Topology] = None,
        fault_schedule: Optional[FaultSchedule] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.workload = workload
        self.config = config
        #: Streaming traces are iterated, never indexed; the legacy
        #: agenda path would materialize every record as a heap entry,
        #: defeating the point, so it declines up front.
        self._streaming = bool(getattr(workload, "streaming", False))
        if self._streaming and config.replay == "agenda":
            raise ValueError(
                "the agenda replay engine cannot stream a workload; "
                "use replay='fast' or 'hybrid', or materialize the trace"
            )
        # Observability is strictly read-only: hooks fire *after* each
        # state transition and never touch RNG streams, so an observed
        # run's SimulationResult (minus wall_seconds/profile) stays
        # bit-identical to an unobserved one.
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._obs_on = self.obs.enabled
        #: Sim time of the handler currently running, for hooks (like
        #: the eviction listener) that fire below the handler layer.
        self._obs_now = 0.0
        streams = RandomStreams(config.seed)
        self._streams = streams

        if match_table is None:
            table = build_match_counts(
                workload.request_pairs(),
                config.subscription_quality,
                streams.stream("subscriptions"),
                notified_fraction=config.notified_fraction,
            )
            match_table = TraceMatchCounts(table)
        self.match_table = match_table

        if topology is None:
            topology = build_topology(
                workload.config.server_count,
                streams.stream("topology"),
                model=config.topology_model,
                extra_nodes=config.topology_extra_nodes,
            )
        self.topology = topology

        costs = topology.fetch_costs()
        capacities = workload.capacities(config.capacity_fraction)
        self.publisher = Publisher(workload)
        self.proxies: List[ProxyServer] = []
        for server_id in range(workload.config.server_count):
            policy = make_policy_lenient(
                config.strategy,
                capacity_bytes=capacities[server_id],
                cost=costs[server_id % len(costs)],
                **config.strategy_options,
            )
            self.proxies.append(ProxyServer(server_id, policy))

        # page_id -> (server_id, match_count) pairs sorted by server,
        # fixed per run.  A TraceMatchCounts hands out its precomputed
        # immutable vectors directly (no copy, no sort); adapters
        # without the columnar API fall back to a per-page dict copy.
        self._matches_by_page: Dict[int, List] = {}
        get_vector = getattr(self.match_table, "match_vector", None)
        for page in workload.pages:
            if get_vector is not None:
                pairs = get_vector(page.page_id)
                if pairs:
                    self._matches_by_page[page.page_id] = pairs
            else:
                counts = self.match_table.match_counts_by_id(page.page_id)
                if counts:
                    self._matches_by_page[page.page_id] = sorted(counts.items())

        self._events_processed = 0

        # -- fault layer ---------------------------------------------------
        self.chaos: Optional[ChaosSpec] = config.chaos
        self.fault_schedule = fault_schedule
        if self.fault_schedule is None and config.chaos is not None:
            self.fault_schedule = generate_fault_schedule(
                config.chaos,
                streams,
                horizon=workload.config.horizon,
                server_count=workload.config.server_count,
            )
        if self.fault_schedule is not None and self.chaos is None:
            # Hand-built schedule: use default degradation parameters.
            self.chaos = ChaosSpec()
        self._faults_on = self.fault_schedule is not None
        self._recovery: Optional[RecoveryTracker] = None
        if self._faults_on:
            self._recovery = RecoveryTracker(
                warm_request_window=self.chaos.warm_request_window,
                warm_threshold=self.chaos.warm_threshold,
                bin_seconds=self.chaos.recovery_bin_seconds,
                bin_count=self.chaos.recovery_bin_count,
            )
        self._failed_requests = 0
        self._degraded_requests = 0
        self._failed_by_hour: Dict[int, int] = {}
        self._degraded_by_hour: Dict[int, int] = {}
        #: Requests that never reached a policy (down-proxy failover and
        #: failures) — merged into the request totals at collection.
        self._unserved_by_hour: Dict[int, int] = {}
        self._pushes_suppressed = 0

        # -- overload/backpressure layer -------------------------------------
        # Engaged only when an OverloadSpec arms at least one part; a
        # missing or all-default spec allocates nothing here and never
        # derives the "faults.overload" stream, so the publish/request
        # paths behave — and draw — exactly as before (bit identity).
        overload_spec: Optional[OverloadSpec] = config.overload
        self._overload_on = overload_spec is not None and overload_spec.enabled
        self._overload: Optional[OverloadManager] = None
        self._overload_stale_serves = 0
        if self._overload_on:
            self._overload = OverloadManager(
                overload_spec,
                range(workload.config.server_count),
                rng=derive_overload_rng(overload_spec, streams),
            )
            if self.chaos is None:
                # Origin-gate retries reuse the graceful-degradation
                # backoff parameters (retry_limit/base/cap); without a
                # chaos spec the defaults apply.  _faults_on stays
                # False: no schedule, no injector, no fault metrics.
                self.chaos = ChaosSpec()

        # -- reliable-delivery layer ---------------------------------------
        # Engaged only when the push path itself can fail; with every
        # delivery knob at its default this block allocates nothing and
        # the publish path below takes exactly the synchronous route,
        # preserving bit-identity (the "faults.delivery" stream is
        # never even derived).
        self._delivery_on = self._faults_on and (
            self.chaos.delivery_faulty or self.fault_schedule.has_broker_faults
        )
        self._delivery: Optional[ReliableDelivery] = None
        self._seq_trackers: List[SequenceTracker] = []
        if self._delivery_on:
            self._delivery = ReliableDelivery(
                self.chaos,
                self.fault_schedule,
                streams.stream("faults.delivery"),
                overload=self._overload,
            )
            self._seq_trackers = [SequenceTracker() for _ in self.proxies]
        self._env: Optional[Environment] = None
        self._notifications_sent = 0
        self._notifications_delivered = 0
        self._notifications_lost = 0
        self._notification_loss_events = 0
        self._notifications_retransmitted = 0
        self._retransmit_queue_overflows = 0
        self._stale_hits_served = 0
        self._staleness_validations = 0
        self._stale_served_by_hour: Dict[int, int] = {}
        self._staleness_age_counts = [0] * (len(STALENESS_AGE_BIN_EDGES) + 1)

        # -- subscription-lifecycle layer -----------------------------------
        # Engaged only when the workload carries lifecycle events; a
        # churn-free trace allocates nothing here and never derives the
        # lifecycle stream, so the publish/request paths below behave —
        # and draw — exactly as before (bit identity).
        self._churn_on = bool(workload.lifecycle)
        self._lifecycle: Optional[LifecycleManager] = None
        self._pushes_suppressed_no_lease = 0
        self._churn_stale_serves = 0
        if self._churn_on:
            churn_spec = workload.churn
            if churn_spec is None:
                from repro.workload.churn import ChurnSpec

                churn_spec = ChurnSpec()
            lifecycle_rng = None
            if churn_spec.confirmation_loss_probability > 0.0:
                lifecycle_rng = streams.stream(LIFECYCLE_STREAM)
            self._lifecycle = LifecycleManager(
                churn_spec,
                workload.config.server_count,
                rng=lifecycle_rng,
                observer=self.obs,
                obs_on=self._obs_on,
                overload=self._overload,
            )

    # -- fault hooks (called by the FaultInjector) --------------------------

    def on_proxy_crash(self, server_id: int, now: float) -> None:
        proxy = self.proxies[server_id]
        self._recovery.on_crash(server_id, now, proxy.stats.hit_ratio)
        proxy.crash(now)
        if self._delivery_on:
            # Cold restart: sequence state is in-memory too, so the
            # restarted proxy re-learns versions from scratch (its first
            # post-recovery delivery of a re-published page shows up as
            # a detected gap).
            self._seq_trackers[server_id].reset()
        if self._obs_on:
            self.obs.crash(now, server_id)

    def on_proxy_recover(self, server_id: int, now: float) -> None:
        self.proxies[server_id].recover(now)
        self._recovery.on_recover(server_id, now)
        if self._obs_on:
            self.obs.restart(now, server_id)

    def on_publisher_outage(self, now: float) -> None:
        self.publisher.go_dark(now)
        if self._obs_on:
            self.obs.outage(now)

    def on_publisher_recover(self, now: float) -> None:
        self.publisher.come_back(now)
        if self._obs_on:
            self.obs.outage_end(now)

    # -- event handlers ---------------------------------------------------

    def _handle_lifecycle(
        self, record: LifecycleRecord, _unused, now: float
    ) -> None:
        """One subscription lifecycle record from the trace."""
        if self._obs_on:
            self._obs_now = now
        self._lifecycle.on_event(record, now)
        self._maybe_check_invariants()

    def _handle_publish(self, page_id: int, version: int, now: float) -> None:
        obs_on = self._obs_on
        self.publisher.publish(page_id, version, now)
        size = self.publisher.page_size(page_id)
        if obs_on:
            self._obs_now = now
            self.obs.publish(now, page_id, version, size)
        origin_down = self._faults_on and self.fault_schedule.publisher_down(now)
        delivery_on = self._delivery_on
        churn_on = self._churn_on
        for server_id, match_count in self._matches_by_page.get(page_id, ()):
            proxy = self.proxies[server_id]
            if obs_on:
                self.obs.match(now, page_id, server_id, match_count)
            if churn_on:
                allowed, reason = self._lifecycle.deliverable(
                    server_id, page_id, now
                )
                if not allowed:
                    # The cell holds no confirmed lease right now: the
                    # hub does not notify it.  The proxy keeps serving
                    # its cache and repairs state on the next access.
                    self._pushes_suppressed_no_lease += 1
                    if obs_on:
                        self.obs.push_suppressed(now, page_id, server_id, reason)
                    continue
            if origin_down or (not delivery_on and not proxy.up):
                # No distribution path: the origin cannot send, or the
                # proxy cannot receive.  The page stays authoritative at
                # the origin and is fetched on demand later.  (With the
                # delivery protocol engaged, a down *proxy* is instead
                # the protocol's problem: sends fail while it is down
                # and a retransmission may land after recovery.)
                self._pushes_suppressed += 1
                if obs_on:
                    self.obs.push_suppressed(
                        now,
                        page_id,
                        server_id,
                        "origin-down" if origin_down else "proxy-down",
                    )
                continue
            if delivery_on:
                self._send_notification(
                    server_id, page_id, version, size, match_count, now
                )
                continue
            if self._overload_on and not self._overload.admit(
                server_id, now, push=True
            ):
                # The proxy's service queue is saturated: the push is
                # shed (pushes yield queue room to pulls first).  The
                # cache simply keeps its old copy; the next request for
                # the page takes the ordinary stale-miss path, so no
                # extra repair machinery is needed here.
                if obs_on:
                    self.obs.overload_shed(now, page_id, server_id, "push")
                continue
            if obs_on:
                self.obs.push_offer(now, page_id, server_id)
            outcome = proxy.handle_publish(page_id, version, size, match_count, now)
            if obs_on:
                if outcome.stored:
                    self.obs.push_accept(now, page_id, server_id, outcome.refreshed)
                else:
                    self.obs.push_reject(now, page_id, server_id)
            transferred = outcome.stored or (
                self.config.pushing is PushingScheme.ALWAYS
                and proxy.policy.uses_push
            )
            if transferred:
                self.publisher.record_push_transfer(page_id, now)
        self._maybe_check_invariants()

    # -- reliable delivery ---------------------------------------------------

    def _send_notification(
        self,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        match_count: int,
        now: float,
    ) -> None:
        """Push one notification through the unreliable delivery layer.

        The retransmission protocol is resolved analytically against
        the fault schedule (:meth:`ReliableDelivery.plan`); surviving
        copies are scheduled as DES arrival events at the planned time.
        """
        obs_on = self._obs_on
        plan = self._delivery.plan(server_id, now)
        self._notifications_sent += 1
        self._notification_loss_events += plan.loss_events
        self._notifications_retransmitted += plan.retransmissions
        if obs_on:
            self.obs.notification_sent(now, page_id, server_id)
            self.obs.queue_depth(
                now, "retransmit", self._delivery.pending_retransmits
            )
            for _ in range(plan.loss_events):
                self.obs.delivery_drop(now, page_id, server_id, "push-path")
            if plan.retransmissions:
                self.obs.delivery_retransmit(now, page_id, server_id, plan.attempts)
        if plan.queue_overflow:
            self._retransmit_queue_overflows += 1
        if not plan.delivered:
            self._notifications_lost += 1
            if obs_on:
                reason = (
                    "queue-overflow" if plan.queue_overflow else "retries-exhausted"
                )
                self.obs.delivery_lost(now, page_id, server_id, reason)
            return
        self._schedule_arrival(
            server_id, page_id, version, size, match_count, now, plan.arrival_time
        )
        if plan.duplicate_time is not None:
            self._schedule_arrival(
                server_id,
                page_id,
                version,
                size,
                match_count,
                now,
                plan.duplicate_time,
            )

    def _schedule_arrival(
        self,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        match_count: int,
        now: float,
        at: float,
    ) -> None:
        if at <= now:
            # Undelayed delivery happens inside the publish handler,
            # exactly like the reliable (healthy) push path.
            self._deliver_notification(
                server_id, page_id, version, size, match_count, now
            )
            return
        self._env.schedule(
            at,
            lambda _env, s=server_id, p=page_id, v=version, z=size, m=match_count: (
                self._deliver_notification(s, p, v, z, m, _env.now)
            ),
            priority=URGENT,
        )

    def _deliver_notification(
        self,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        match_count: int,
        t: float,
    ) -> None:
        """One notification copy reaches the proxy at time ``t``."""
        obs_on = self._obs_on
        if obs_on:
            self._obs_now = t
        proxy = self.proxies[server_id]
        if not proxy.up:
            # A reorder-delayed copy arrived while the proxy is down;
            # nothing receives it.
            self._notifications_lost += 1
            if obs_on:
                self.obs.delivery_lost(t, page_id, server_id, "proxy-down")
            return
        if self._overload_on and not self._overload.admit(server_id, t, push=True):
            # Shed before the sequence tracker sees the copy: the proxy
            # never learns this version arrived, so the existing lazy
            # staleness-repair path heals it on the next access.
            if obs_on:
                self.obs.overload_shed(t, page_id, server_id, "push")
            return
        tracker = self._seq_trackers[server_id]
        kind = tracker.observe(page_id, version)
        if kind == "duplicate":
            # A retransmission racing its ack, or a late reordered copy
            # of an old version: suppressed before it touches the cache.
            if obs_on:
                self.obs.delivery_dup(t, page_id, server_id)
            return
        self._notifications_delivered += 1
        if obs_on:
            self.obs.notification_delivered(t, page_id, server_id)
        if kind == "gap" and obs_on:
            self.obs.delivery_gap(t, page_id, server_id, version)
        if obs_on:
            self.obs.push_offer(t, page_id, server_id)
        outcome = proxy.handle_publish(page_id, version, size, match_count, t)
        if obs_on:
            if outcome.stored:
                self.obs.push_accept(t, page_id, server_id, outcome.refreshed)
            else:
                self.obs.push_reject(t, page_id, server_id)
        transferred = outcome.stored or (
            self.config.pushing is PushingScheme.ALWAYS and proxy.policy.uses_push
        )
        if transferred:
            self.publisher.record_push_transfer(page_id, t)
        self._maybe_check_invariants()

    def _handle_request(self, server_id: int, page_id: int, now: float) -> None:
        version = self.publisher.current_version(page_id)
        if version is None:
            raise RuntimeError(
                f"request for page {page_id} before its first publication "
                f"(t={now}); the workload generator guarantees ordering"
            )
        size = self.publisher.page_size(page_id)
        match_count = self.match_table.count_for(page_id, server_id)
        proxy = self.proxies[server_id]
        obs_on = self._obs_on
        if obs_on:
            self._obs_now = now
            self.obs.request(now, page_id, server_id)
        if self._churn_on:
            self._lifecycle_access(server_id, page_id, version, now)
        if self._faults_on:
            self._handle_request_faulty(
                proxy, server_id, page_id, version, size, match_count, now
            )
        elif self._overload_on:
            self._handle_request_overload(
                proxy, server_id, page_id, version, size, match_count, now
            )
        else:
            outcome = proxy.handle_request(page_id, version, size, match_count, now)
            latency = self.config.hit_latency
            if not outcome.hit:
                self.publisher.record_fetch(page_id, now)
                latency += self.config.per_hop_latency * proxy.policy.cost
            proxy.stats.response_time += latency
            if obs_on:
                self.obs.request_outcome(
                    now, page_id, server_id, _outcome_kind(outcome), latency
                )
                if not outcome.hit:
                    self.obs.fetch(now, page_id, server_id)
        self._maybe_check_invariants()

    def _lifecycle_access(
        self, server_id: int, page_id: int, version: int, now: float
    ) -> None:
        """Re-poll repair: the access heals lapsed subscription state.

        Runs *before* the request is served (and before the silently-
        stale path), so a subscriber whose lease silently expired never
        permanently loses notifications: the re-poll restores a
        confirmed lease and — with the delivery protocol engaged —
        teaches the proxy's sequence tracker the current version, which
        routes a lagging cached copy through the ordinary stale-miss
        path instead of the silently-stale one.
        """
        repair = self._lifecycle.on_access(server_id, page_id, now)
        if repair is None:
            return
        proxy = self.proxies[server_id]
        policy = proxy.policy
        cached = (
            policy.cached_version(page_id) if policy.contains(page_id) else None
        )
        if cached is not None and cached < version:
            # The missed notifications had real cost: the proxy's copy
            # is behind the origin at repair time.
            self._churn_stale_serves += 1
        if self._delivery_on:
            self._seq_trackers[server_id].learn(page_id, version)

    # -- degraded request handling -----------------------------------------

    def _handle_request_faulty(
        self,
        proxy: ProxyServer,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        match_count: int,
        now: float,
    ) -> None:
        obs_on = self._obs_on
        if not proxy.up:
            # The proxy is offline; its cache cannot answer.  The client
            # fails over directly to the origin at origin cost.
            self._note_unserved(now)
            if obs_on:
                self.obs.failover(
                    now, server_id, page_id, target="origin", reason="proxy-down"
                )
            resolution = self._origin_resolution(proxy, server_id, page_id, now)
            if resolution is None:
                self._note_failed(now)
                if obs_on:
                    self.obs.failed(now, page_id, server_id)
                return
            extra_latency, _degraded = resolution
            self._note_degraded(now)
            latency = self.config.hit_latency + extra_latency
            proxy.stats.response_time += latency
            if obs_on:
                self.obs.request_outcome(now, page_id, server_id, "miss", latency)
            return

        if self._overload_on and not self._overload.admit(
            server_id, now, push=False
        ):
            self._handle_rejected_pull(proxy, server_id, page_id, now)
            return

        if self._delivery_on and self._silently_stale_path(
            proxy, server_id, page_id, version, size, match_count, now
        ):
            return

        if self._probe_hit(proxy, page_id, version):
            if self._delivery_on and self.chaos.delivery_repair:
                # Access-time validation ran and confirmed freshness.
                self._staleness_validations += 1
            proxy.handle_request(page_id, version, size, match_count, now)
            self._recovery.on_request(server_id, hit=True, now=now)
            proxy.stats.response_time += self.config.hit_latency
            if obs_on:
                self.obs.request_outcome(
                    now, page_id, server_id, "hit", self.config.hit_latency
                )
            return

        # Local miss: content must come from somewhere off-proxy.
        resolution = self._fetch_on_miss(proxy, server_id, page_id, version, size, now)
        if resolution is None:
            if (
                self._overload_on
                and self._overload.bucket is not None
                and self._serve_stale_overload(
                    proxy, server_id, page_id, size, match_count, now, 0.0
                )
            ):
                # Origin admission refused the fetch (breaker open or
                # bucket drained): degraded mode serves the cached
                # stale copy rather than failing the request.
                return
            # Retries exhausted: the request fails; nothing was placed
            # (the bytes never arrived at the proxy).
            self._note_unserved(now)
            self._note_failed(now)
            if obs_on:
                self.obs.failed(now, page_id, server_id)
            return
        extra_latency, degraded = resolution
        outcome = proxy.handle_request(page_id, version, size, match_count, now)
        if self._delivery_on:
            # The fetch taught the proxy the current version.
            self._seq_trackers[server_id].learn(page_id, version)
        self._recovery.on_request(server_id, hit=False, now=now)
        if degraded:
            self._note_degraded(now)
        latency = self.config.hit_latency + extra_latency
        proxy.stats.response_time += latency
        if obs_on:
            self.obs.request_outcome(
                now, page_id, server_id, _outcome_kind(outcome), latency
            )

    def _silently_stale_path(
        self,
        proxy: ProxyServer,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        match_count: int,
        now: float,
    ) -> bool:
        """Handle a request whose proxy *believes* its copy is current.

        Returns True when the request was fully handled here: the cached
        copy is stale but the proxy never learned of the newer version
        (the notification was lost).  With staleness repair enabled the
        access-time validation catches the miss and heals it with an
        origin fetch (repair traffic); without it the proxy serves the
        stale copy as a perfectly ordinary hit — silently wrong.

        Returns False when the oracle view and the proxy's view agree
        (fresh copy, known-stale copy, or page not cached) and the
        ordinary request path should proceed.
        """
        policy = proxy.policy
        if not policy.contains(page_id):
            return False
        cached = policy.cached_version(page_id)
        if cached is None or cached == version:
            return False
        known = self._seq_trackers[server_id].last_seen(page_id)
        if known is not None and known > cached:
            # A delivered notification already told the proxy a newer
            # version exists (the policy just declined to store it):
            # the ordinary stale-miss path applies.
            return False
        obs_on = self._obs_on
        age = self.publisher.staleness_age(page_id, cached, now)
        if not self.chaos.delivery_repair:
            # No-protocol baseline: the stale copy is served as a hit.
            self._serve_stale(
                proxy, server_id, page_id, cached, size, match_count, now, age, 0.0
            )
            return True
        # Validation detected the missed push; repair from the origin.
        self._staleness_validations += 1
        ok, waited = self._origin_wait(now, server_id, page_id)
        if not ok:
            # Origin unreachable and retries exhausted: degrade to
            # serving the stale copy rather than failing the request.
            self._serve_stale(
                proxy, server_id, page_id, cached, size, match_count, now, age, waited
            )
            self._note_degraded(now)
            return True
        self.publisher.record_repair(page_id, now)
        if obs_on:
            self.obs.repair(now, page_id, server_id, age)
        self._sample_staleness_age(age)
        fetch_latency, degraded = self._origin_fetch_latency(proxy, server_id, now)
        proxy.handle_request(page_id, version, size, match_count, now)
        self._seq_trackers[server_id].learn(page_id, version)
        self._recovery.on_request(server_id, hit=False, now=now)
        if degraded or waited > 0.0:
            self._note_degraded(now)
        latency = self.config.hit_latency + waited + fetch_latency
        proxy.stats.response_time += latency
        if obs_on:
            self.obs.request_outcome(now, page_id, server_id, "stale", latency)
        return True

    def _serve_stale(
        self,
        proxy: ProxyServer,
        server_id: int,
        page_id: int,
        cached_version: int,
        size: int,
        match_count: int,
        now: float,
        age: float,
        waited: float,
    ) -> None:
        """Serve the proxy's believed-current (actually stale) copy.

        The policy is asked for the *cached* version, so it records a
        plain hit — from the proxy's point of view nothing is wrong.
        The simulator keeps the oracle's books: one silently stale
        response, with its staleness age.
        """
        proxy.handle_request(page_id, cached_version, size, match_count, now)
        self._recovery.on_request(server_id, hit=True, now=now)
        self._stale_hits_served += 1
        hour = int(now // 3600.0)
        self._stale_served_by_hour[hour] = (
            self._stale_served_by_hour.get(hour, 0) + 1
        )
        self._sample_staleness_age(age)
        latency = self.config.hit_latency + waited
        proxy.stats.response_time += latency
        if self._obs_on:
            self.obs.stale_served(now, page_id, server_id, age)
            self.obs.request_outcome(now, page_id, server_id, "hit", latency)

    # -- overload request handling -------------------------------------------

    def _handle_request_overload(
        self,
        proxy: ProxyServer,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        match_count: int,
        now: float,
    ) -> None:
        """The fault-free request path under finite capacity.

        Mirrors the plain path of :meth:`_handle_request` with two
        admission gates in front: the proxy's service queue (rejected
        pulls fail over off-proxy) and — on a miss — the origin gate
        (refused fetches degrade to serving a cached stale copy, or
        fail when nothing is cached).
        """
        obs_on = self._obs_on
        if not self._overload.admit(server_id, now, push=False):
            self._handle_rejected_pull(proxy, server_id, page_id, now)
            return
        if self._probe_hit(proxy, page_id, version):
            proxy.handle_request(page_id, version, size, match_count, now)
            proxy.stats.response_time += self.config.hit_latency
            if obs_on:
                self.obs.request_outcome(
                    now, page_id, server_id, "hit", self.config.hit_latency
                )
            return
        resolution = self._fetch_on_miss(proxy, server_id, page_id, version, size, now)
        if resolution is None:
            if self._serve_stale_overload(
                proxy, server_id, page_id, size, match_count, now, 0.0
            ):
                return
            self._note_unserved(now)
            self._note_failed(now)
            if obs_on:
                self.obs.failed(now, page_id, server_id)
            return
        extra_latency, degraded = resolution
        outcome = proxy.handle_request(page_id, version, size, match_count, now)
        if degraded:
            self._note_degraded(now)
        latency = self.config.hit_latency + extra_latency
        proxy.stats.response_time += latency
        if obs_on:
            self.obs.request_outcome(
                now, page_id, server_id, _outcome_kind(outcome), latency
            )

    def _handle_rejected_pull(
        self, proxy: ProxyServer, server_id: int, page_id: int, now: float
    ) -> None:
        """A pull the proxy's service queue refused to admit.

        The request never reaches the policy (it is tallied as
        unserved, keeping the shared denominator) and fails over
        off-proxy: the base simulation goes straight to the origin
        through the admission gate, the cooperative subclass walks the
        peer chain first.
        """
        obs_on = self._obs_on
        self._note_unserved(now)
        if obs_on:
            self.obs.overload_reject(now, page_id, server_id)
            self.obs.failover(
                now, server_id, page_id, target="origin", reason="overload"
            )
        resolution = self._rejected_pull_resolution(proxy, server_id, page_id, now)
        if resolution is None:
            self._note_failed(now)
            if obs_on:
                self.obs.failed(now, page_id, server_id)
            return
        extra_latency, _degraded = resolution
        self._note_degraded(now)
        latency = self.config.hit_latency + extra_latency
        proxy.stats.response_time += latency
        if obs_on:
            self.obs.request_outcome(now, page_id, server_id, "miss", latency)

    def _rejected_pull_resolution(
        self, proxy: ProxyServer, server_id: int, page_id: int, now: float
    ) -> Optional[Tuple[float, bool]]:
        """Off-proxy resolution of a queue-rejected pull.

        The base simulation knows only the origin; the cooperative
        subclass overrides this with its peer failover chain.
        """
        return self._origin_resolution(proxy, server_id, page_id, now)

    def _serve_stale_overload(
        self,
        proxy: ProxyServer,
        server_id: int,
        page_id: int,
        size: int,
        match_count: int,
        now: float,
        waited: float,
    ) -> bool:
        """Degraded mode: serve whatever version is cached locally.

        Used when origin admission refused a fetch.  Returns False when
        nothing is cached (the caller then fails the request).  The
        policy records a plain hit for the cached version; the
        simulator's books call it a degraded overload-stale serve.
        """
        policy = proxy.policy
        if not policy.contains(page_id):
            return False
        cached = policy.cached_version(page_id)
        proxy.handle_request(page_id, cached, size, match_count, now)
        if self._recovery is not None:
            self._recovery.on_request(server_id, hit=True, now=now)
        self._overload_stale_serves += 1
        self._note_degraded(now)
        latency = self.config.hit_latency + waited
        proxy.stats.response_time += latency
        if self._obs_on:
            self.obs.overload_stale(now, page_id, server_id)
            self.obs.request_outcome(now, page_id, server_id, "hit", latency)
        return True

    def _sample_staleness_age(self, age: float) -> None:
        self._staleness_age_counts[staleness_age_bin(age)] += 1

    def _probe_hit(self, proxy: ProxyServer, page_id: int, version: int) -> bool:
        """Whether a request would be a fresh hit — without side effects.

        Every policy reports a hit exactly when the current version is
        resident, so this mirrors ``on_request`` hit detection.
        """
        policy = proxy.policy
        return policy.contains(page_id) and policy.cached_version(page_id) == version

    def _fetch_on_miss(
        self,
        proxy: ProxyServer,
        server_id: int,
        page_id: int,
        version: int,
        size: int,
        now: float,
    ) -> Optional[Tuple[float, bool]]:
        """Resolve a local miss off-proxy.

        Returns ``(latency beyond hit_latency, degraded?)`` on success,
        ``None`` when the content could not be obtained.  The base
        simulation knows only the origin; the cooperative subclass
        overrides this with a peer failover chain.
        """
        return self._origin_resolution(proxy, server_id, page_id, now)

    def _origin_resolution(
        self, proxy: ProxyServer, server_id: int, page_id: int, now: float
    ) -> Optional[Tuple[float, bool]]:
        """Fetch from the origin, retrying across an outage if needed."""
        ok, waited = self._origin_wait(now, server_id, page_id)
        if not ok:
            return None
        self.publisher.record_fetch(page_id, now)
        if self._obs_on:
            self.obs.fetch(now, page_id, server_id)
        fetch_latency, degraded = self._origin_fetch_latency(proxy, server_id, now)
        return waited + fetch_latency, degraded or waited > 0.0

    def _origin_wait(
        self, now: float, server_id: int, page_id: int
    ) -> Tuple[bool, float]:
        """Backoff until the origin answers: (reachable?, seconds waited).

        The first attempt happens at ``now``; each retry doubles the
        backoff up to ``retry_cap``, at most ``retry_limit`` retries.
        Whether a retry succeeds is a pure schedule lookup — the outage
        windows are materialised up front.

        With the overload layer armed the origin must also *admit* the
        fetch (token bucket + circuit breaker), each extra attempt must
        fit the global retry budget, and backoff steps carry the seeded
        jitter — so synchronized retries cannot re-overload a
        recovering origin.  With overload off the loop is exactly the
        pre-layer one.
        """
        schedule = self.fault_schedule
        overload = self._overload if self._overload_on else None
        down = schedule is not None and schedule.publisher_down(now)
        if not down and (overload is None or overload.origin_admit(now)):
            return True, 0.0
        spec = self.chaos
        obs_on = self._obs_on
        waited = 0.0
        at = now
        for attempt in range(spec.retry_limit):
            if overload is not None and not overload.allow_retry(at):
                if obs_on:
                    self.obs.retry_denied(now, page_id, server_id, attempt + 1)
                break
            backoff = min(spec.retry_base * (2.0 ** attempt), spec.retry_cap)
            if overload is not None:
                backoff = overload.jitter_backoff(backoff)
            at += backoff
            waited += backoff
            if obs_on:
                self.obs.retry(now, page_id, server_id, attempt + 1, backoff)
            if (schedule is None or not schedule.publisher_down(at)) and (
                overload is None or overload.origin_admit(at)
            ):
                return True, waited
        return False, waited

    def _origin_fetch_latency(
        self, proxy: ProxyServer, server_id: int, now: float
    ) -> Tuple[float, bool]:
        """Latency of one origin transfer, including link degradation."""
        latency = self.config.per_hop_latency * proxy.policy.cost
        return self._degrade_transfer(latency, server_id, now)

    def _degrade_transfer(
        self, latency: float, server_id: int, now: float
    ) -> Tuple[float, bool]:
        """Apply the proxy's link degradation (if any) to one transfer."""
        if self.fault_schedule is None:
            # Overload-only run: no degraded-link windows exist.
            return latency, False
        window = self.fault_schedule.degradation(server_id, now)
        if window is None:
            return latency, False
        degraded = False
        if window.latency_multiplier > 1.0:
            latency *= window.latency_multiplier
            degraded = True
        if window.loss_probability > 0.0:
            rng = self._streams.stream("faults.loss")
            retransmits = 0
            while (
                retransmits < _MAX_RETRANSMITS
                and float(rng.random()) < window.loss_probability
            ):
                retransmits += 1
            if retransmits:
                latency *= 1 + retransmits
                degraded = True
        return latency, degraded

    # -- availability accounting -------------------------------------------

    def _note_unserved(self, now: float) -> None:
        hour = int(now // 3600.0)
        self._unserved_by_hour[hour] = self._unserved_by_hour.get(hour, 0) + 1

    def _note_failed(self, now: float) -> None:
        self._failed_requests += 1
        hour = int(now // 3600.0)
        self._failed_by_hour[hour] = self._failed_by_hour.get(hour, 0) + 1

    def _note_degraded(self, now: float) -> None:
        self._degraded_requests += 1
        hour = int(now // 3600.0)
        self._degraded_by_hour[hour] = self._degraded_by_hour.get(hour, 0) + 1

    def _maybe_check_invariants(self) -> None:
        interval = self.config.invariant_check_interval
        self._events_processed += 1
        if interval and self._events_processed % interval == 0:
            for proxy in self.proxies:
                proxy.check_invariants()

    # -- main entry ----------------------------------------------------------

    def _static_stream(self):
        """Multi-pointer merge of the static trace streams.

        Yields ``(time, priority, handler, a, b)`` records in exactly
        the order the legacy agenda would pop them: nondecreasing
        ``(time, priority)``, URGENT records (lifecycle events, then
        publishes) winning time ties over requests (NORMAL), and each
        stream's own pre-sorted order breaking full ties (which matches
        the legacy path's insertion sequence — lifecycle scheduled
        first, then publishes, then requests).

        On a churn-free trace this degenerates to the original
        two-pointer publish/request merge.  The merge consumes the
        streams through iterators only (never indexing), so it serves
        lists and lazy :class:`~repro.workload.streaming` views alike
        with identical output order.
        """
        requests = iter(self.workload.requests)
        handle_publish = self._handle_publish
        handle_request = self._handle_request
        if self.workload.lifecycle:
            urgent = self._urgent_stream()
            pending = next(urgent, None)
            request = next(requests, None)
            while pending is not None and request is not None:
                # A request precedes an URGENT record only at a strictly
                # earlier time; on a tie URGENT beats NORMAL.
                if request.time < pending[0]:
                    yield (request.time, NORMAL, handle_request,
                           request.server_id, request.page_id)
                    request = next(requests, None)
                else:
                    yield pending
                    pending = next(urgent, None)
            while pending is not None:
                yield pending
                pending = next(urgent, None)
            while request is not None:
                yield (request.time, NORMAL, handle_request,
                       request.server_id, request.page_id)
                request = next(requests, None)
            return
        publishes = iter(self.workload.publishes)
        publish = next(publishes, None)
        request = next(requests, None)
        while publish is not None and request is not None:
            # A request precedes a publish only at a strictly earlier
            # time; on a tie URGENT beats NORMAL.
            if request.time < publish.time:
                yield (request.time, NORMAL, handle_request,
                       request.server_id, request.page_id)
                request = next(requests, None)
            else:
                yield (publish.time, URGENT, handle_publish,
                       publish.page_id, publish.version)
                publish = next(publishes, None)
        while publish is not None:
            yield (publish.time, URGENT, handle_publish,
                   publish.page_id, publish.version)
            publish = next(publishes, None)
        while request is not None:
            yield (request.time, NORMAL, handle_request,
                   request.server_id, request.page_id)
            request = next(requests, None)

    def _urgent_stream(self):
        """Lifecycle events merged with publishes, both URGENT.

        Lifecycle records win time ties against publishes, matching the
        agenda path where they are scheduled first (lower sequence
        numbers at equal ``(time, priority)``).
        """
        handle_lifecycle = self._handle_lifecycle
        handle_publish = self._handle_publish
        lifecycle = iter(self.workload.lifecycle)
        publishes = iter(self.workload.publishes)
        event = next(lifecycle, None)
        publish = next(publishes, None)
        while event is not None and publish is not None:
            if publish.time < event.time:
                yield (publish.time, URGENT, handle_publish,
                       publish.page_id, publish.version)
                publish = next(publishes, None)
            else:
                yield (event.time, URGENT, handle_lifecycle, event, None)
                event = next(lifecycle, None)
        while event is not None:
            yield (event.time, URGENT, handle_lifecycle, event, None)
            event = next(lifecycle, None)
        while publish is not None:
            yield (publish.time, URGENT, handle_publish,
                   publish.page_id, publish.version)
            publish = next(publishes, None)

    def _enriched_stream(self):
        """The batched tuple stream, merged lazily (streaming traces).

        Yields the same ``(time, kind, a, b, size, m)`` tuples as the
        memoized columnar list, in the same order: a two-pointer merge
        where publishes win time ties and each stream keeps its own
        pre-sorted order — exactly what the stable ``(time, kind)``
        sort produces.  Nothing is retained, so a 10M-event trace
        replays in chunk-bounded memory.
        """
        sizes = self.publisher._sizes
        matches = self._matches_by_page
        matches_get = matches.get
        rows_get = {
            page_id: dict(pairs) for page_id, pairs in matches.items()
        }.get
        empty_pairs: Tuple = ()
        empty_row: Dict[int, int] = {}
        publishes = iter(self.workload.publishes)
        requests = iter(self.workload.requests)
        publish = next(publishes, None)
        request = next(requests, None)
        while publish is not None and request is not None:
            if request.time < publish.time:
                page_id = request.page_id
                yield (request.time, 1, request.server_id, page_id,
                       sizes[page_id],
                       rows_get(page_id, empty_row).get(request.server_id, 0))
                request = next(requests, None)
            else:
                page_id = publish.page_id
                yield (publish.time, 0, page_id, publish.version,
                       sizes[page_id], matches_get(page_id, empty_pairs))
                publish = next(publishes, None)
        while publish is not None:
            page_id = publish.page_id
            yield (publish.time, 0, page_id, publish.version,
                   sizes[page_id], matches_get(page_id, empty_pairs))
            publish = next(publishes, None)
        while request is not None:
            page_id = request.page_id
            yield (request.time, 1, request.server_id, page_id,
                   sizes[page_id],
                   rows_get(page_id, empty_row).get(request.server_id, 0))
            request = next(requests, None)

    def _batched_eligible(self) -> bool:
        """Whether the batched driver can replace the hybrid merge.

        The driver is the hybrid fast path with the DES Environment,
        the stream generator and the per-event dispatch records all
        stripped away, so it is only sound when nothing can ever reach
        the agenda or hook into the handlers: no fault schedule (no
        injector processes, no delayed deliveries), no lifecycle
        records, no observer (no obs calls, no instrumented methods),
        no overload layer (admission gates reroute both paths), and no
        subclass overriding the request path (the cooperative
        simulation reroutes misses through peers).
        """
        return (
            not self._faults_on
            and not self._churn_on
            and not self._obs_on
            and not self._overload_on
            and type(self) is Simulation
        )

    def _run_batched(self) -> None:
        """Drain the static trace as one pre-merged columnar stream.

        Replays publishes and requests in exactly the hybrid order
        (nondecreasing time, publishes winning ties) while calling the
        policy entry points directly: the per-event work of
        ``_handle_publish``/``_handle_request`` — publisher bookkeeping,
        match-count lookup, traffic accounting, latency accounting and
        the invariant cadence — is inlined into the loop body, and all
        per-proxy state is prefetched into lists indexed by server id.
        Bit-identity with the other engines is enforced by
        ``tests/system/test_replay_fastpath.py``.
        """
        workload = self.workload
        config = self.config
        proxies = self.proxies
        publisher = self.publisher

        # Publisher state, bypassing its per-call validation helpers
        # (the checks themselves are kept inline below).
        sizes = publisher._sizes
        versions = publisher._versions
        publish_times = publisher._publish_times
        push_pages = publisher.push_pages_by_hour
        push_bytes = publisher.push_bytes_by_hour
        fetch_pages = publisher.fetch_pages_by_hour
        fetch_bytes = publisher.fetch_bytes_by_hour

        # Columnar copy of the trace, merged once and enriched with the
        # per-event static data: ``(time, kind, a, b, size, m)`` tuples
        # where kind 0 is a publish of page ``a`` version ``b`` with
        # match pairs ``m``, and kind 1 a request at server ``a`` for
        # page ``b`` with match count ``m``.  Page size and match data
        # are fixed per (trace, match table), so baking them into the
        # stream replaces three hashed lookups per event with tuple
        # unpacking.  Sorting the concatenation by ``(time, kind)``
        # with a stable sort reproduces the hybrid merge order exactly
        # (publishes win time ties, each stream keeps its own order)
        # and timsort's galloping merge makes it near-linear on the two
        # pre-sorted runs.  The stream is memoized on the workload,
        # keyed by the match table — repeated runs (benchmark repeats,
        # strategy grids over one trace) replay it with no per-run
        # merge work at all.
        if self._streaming:
            # A streaming trace is never memoized: the enriched tuples
            # are produced lazily by a two-pointer merge whose output
            # order equals the stable (time, kind) sort below, keeping
            # replay memory bounded by the workload's read chunk.
            merged = self._enriched_stream()
        else:
            streams = getattr(workload, "_batched_streams", None)
            if streams is None:
                streams = workload._batched_streams = {}
            merged = streams.get(self.match_table)
            if merged is None:
                matches = self._matches_by_page
                matches_get = matches.get
                rows_get = {
                    page_id: dict(pairs) for page_id, pairs in matches.items()
                }.get
                empty_pairs: Tuple = ()
                empty_row: Dict[int, int] = {}
                merged = [
                    (
                        p.time,
                        0,
                        p.page_id,
                        p.version,
                        sizes[p.page_id],
                        matches_get(p.page_id, empty_pairs),
                    )
                    for p in workload.publishes
                ]
                merged.extend(
                    (
                        r.time,
                        1,
                        r.server_id,
                        r.page_id,
                        sizes[r.page_id],
                        rows_get(r.page_id, empty_row).get(r.server_id, 0),
                    )
                    for r in workload.requests
                )
                merged.sort(key=_TIME_KIND)
                streams[self.match_table] = merged
        publish_count = workload.publish_count
        request_count = workload.request_count

        # Per-proxy columns: bound policy entry points, whether a
        # rejected push still transfers (Always-Pushing with a
        # push-capable policy), and the miss latency beyond hit_latency.
        on_publish = [proxy.policy.on_publish for proxy in proxies]
        on_request = [proxy.policy.on_request for proxy in proxies]
        always = config.pushing is PushingScheme.ALWAYS
        transfer_rejected = [
            always and proxy.policy.uses_push for proxy in proxies
        ]
        hit_latency = config.hit_latency
        per_hop = config.per_hop_latency
        miss_latency = [per_hop * proxy.policy.cost for proxy in proxies]
        versions_get = versions.get
        interval = config.invariant_check_interval
        events = self._events_processed
        # Response time accumulates per proxy (each proxy's additions
        # happen in its own event order), so a sharded run merging
        # per-proxy values reproduces the total bit-for-bit.
        response_time = [0.0] * len(proxies)

        # One C-level iteration per trace event; the invariant cadence
        # only pays its counter when enabled.
        for now, kind, a, b, size, m in merged:
            if kind:
                # -- one request at server ``a`` for page ``b`` with
                #    match count ``m`` (see _handle_request, fault-free
                #    path)
                version = versions_get(b)
                if version is None:
                    raise RuntimeError(
                        f"request for page {b} before its first "
                        f"publication (t={now}); the workload generator "
                        f"guarantees ordering"
                    )
                outcome = on_request[a](b, version, size, m, now)
                if outcome.hit:
                    response_time[a] += hit_latency
                else:
                    hour = int(now // 3600.0)
                    fetch_pages[hour] = fetch_pages.get(hour, 0) + 1
                    fetch_bytes[hour] = fetch_bytes.get(hour, 0) + size
                    response_time[a] += hit_latency + miss_latency[a]
            else:
                # -- one publish of page ``a`` version ``b`` to match
                #    pairs ``m`` (see _handle_publish, fault-free path)
                previous = versions_get(a, -1)
                if b != previous + 1:
                    raise ValueError(
                        f"out-of-order publish for page {a}: "
                        f"got version {b} after {previous}"
                    )
                versions[a] = b
                times = publish_times.get(a)
                if times is None:
                    publish_times[a] = times = []
                times.append(now)
                if m:
                    hour = -1
                    for server_id, match_count in m:
                        outcome = on_publish[server_id](
                            a, b, size, match_count, now
                        )
                        if outcome.stored or transfer_rejected[server_id]:
                            if hour < 0:
                                hour = int(now // 3600.0)
                            push_pages[hour] = push_pages.get(hour, 0) + 1
                            push_bytes[hour] = push_bytes.get(hour, 0) + size
            if interval:
                events += 1
                if events % interval == 0:
                    for proxy in proxies:
                        proxy.check_invariants()

        self._events_processed += publish_count + request_count
        for proxy, latency in zip(proxies, response_time):
            proxy.stats.response_time += latency

    def run(self) -> SimulationResult:
        """Replay the whole trace and collect the metrics."""
        started = time.perf_counter()
        obs = self.obs
        if self._obs_on:
            logger.debug(
                "run starts: strategy=%s trace=%s seed=%d",
                self.config.strategy,
                self.workload.label or "custom",
                self.config.seed,
            )
            obs.run_start(
                strategy=self.config.strategy,
                trace=self.workload.label or "custom",
                seed=self.config.seed,
            )
            self._attach_observer()
        env = Environment()
        self._env = env
        if self._obs_on and obs.profiler is not None:
            env.profiler = obs.profiler
        if self._obs_on and obs.monitor is not None:
            obs.monitor.configure(
                horizon=self.workload.config.horizon,
                cache_probe=lambda: sum(
                    proxy.policy.used_bytes for proxy in self.proxies
                ),
            )
            env.monitor = obs.monitor
        fast = self.config.replay in ("fast", "hybrid")
        batched = self.config.replay == "fast" and self._batched_eligible()
        with obs.span("sim.schedule"):
            if not fast:
                # Lifecycle events first: at equal (time, priority)
                # their lower agenda sequence numbers make them win
                # ties against publishes, matching the fast path.
                for record in self.workload.lifecycle:
                    env.schedule(
                        record.time,
                        lambda _env, r=record: (
                            self._handle_lifecycle(r, None, _env.now)
                        ),
                        priority=URGENT,
                    )
                for event in self.workload.publishes:
                    env.schedule(
                        event.time,
                        lambda _env, p=event.page_id, v=event.version: (
                            self._handle_publish(p, v, _env.now)
                        ),
                        priority=URGENT,
                    )
                for record in self.workload.requests:
                    env.schedule(
                        record.time,
                        lambda _env, s=record.server_id, p=record.page_id: (
                            self._handle_request(s, p, _env.now)
                        ),
                        priority=NORMAL,
                    )
            if self._faults_on:
                FaultInjector(self.fault_schedule).install(env, self)
        with obs.span("sim.run"):
            if batched:
                self._run_batched()
            elif fast:
                env.run_hybrid(self._static_stream())
            else:
                env.run()
        if self._obs_on:
            obs.run_end(
                env.now,
                cache_used_bytes=sum(
                    proxy.policy.used_bytes for proxy in self.proxies
                ),
            )
        with obs.span("sim.collect"):
            return self._collect(time.perf_counter() - started)

    def _attach_observer(self) -> None:
        """Install per-proxy eviction/storage hooks and the profiler.

        Called once per observed run; unobserved runs never reach this,
        so policies and storages keep their no-op class-level hooks.
        """
        obs = self.obs
        for proxy in self.proxies:
            server_id = proxy.server_id
            proxy.policy.evict_listener = (
                lambda page_id, size, cause, _sid=server_id: obs.evict(
                    self._obs_now, page_id, _sid, size, cause
                )
            )
            for storage in _storages_of(proxy.policy):
                storage.listener = lambda op, entry: obs.cache_op(
                    op, entry.size, self._obs_now
                )
        profiler = obs.profiler
        if profiler is not None:
            for proxy in self.proxies:
                proxy.instrument(profiler)
                for heap in _heaps_of(proxy.policy):
                    heap.instrument(profiler)

    def _collect(self, wall_seconds: float) -> SimulationResult:
        hour_count = int(self.workload.config.horizon // 3600.0) + 1
        last_hour = hour_count - 1
        hourly_requests = [0] * hour_count
        hourly_hits = [0] * hour_count
        # Hours at or beyond the horizon boundary (events stamped at
        # exactly ``hour_count`` hours) clamp into the final bucket so
        # no event is dropped; see ``metrics.dense_clamped``.
        for proxy in self.proxies:
            stats = proxy.stats
            for hour, count in stats.bucketed_requests.items():
                hourly_requests[min(hour, last_hour)] += count
            for hour, count in stats.bucketed_hits.items():
                hourly_hits[min(hour, last_hour)] += count
        for hour, count in self._unserved_by_hour.items():
            hourly_requests[min(hour, last_hour)] += count

        def dense(sparse: Dict[int, int]) -> List[int]:
            return [int(v) for v in dense_clamped(sparse, hour_count)]

        total_requests = sum(proxy.stats.requests for proxy in self.proxies)
        total_requests += sum(self._unserved_by_hour.values())
        total_hits = sum(proxy.stats.hits for proxy in self.proxies)
        total_stale = sum(proxy.stats.stale_hits for proxy in self.proxies)

        result = SimulationResult(
            strategy=self.config.strategy,
            trace_label=self.workload.label or "custom",
            capacity_fraction=self.config.capacity_fraction,
            subscription_quality=self.config.subscription_quality,
            pushing_scheme=self.config.pushing.value,
            requests=total_requests,
            hits=total_hits,
            stale_hits=total_stale,
            push_transfers=self.publisher.total_push_pages,
            push_bytes=self.publisher.total_push_bytes,
            fetch_pages=self.publisher.total_fetch_pages,
            fetch_bytes=self.publisher.total_fetch_bytes,
            hour_count=hour_count,
            hourly_requests=hourly_requests,
            hourly_hits=hourly_hits,
            hourly_push_pages=dense(self.publisher.push_pages_by_hour),
            hourly_fetch_pages=dense(self.publisher.fetch_pages_by_hour),
            hourly_push_bytes=dense(self.publisher.push_bytes_by_hour),
            hourly_fetch_bytes=dense(self.publisher.fetch_bytes_by_hour),
            per_proxy=[proxy.stats for proxy in self.proxies],
            wall_seconds=wall_seconds,
            # Summed over proxies in server order — the same expression
            # a sharded merge evaluates, so the total is bit-identical
            # across worker counts (float addition is order-sensitive).
            total_response_time=sum(
                proxy.stats.response_time for proxy in self.proxies
            ),
        )
        if self._faults_on or self._overload_on:
            # Both layers route refused/unservable requests through the
            # shared failed/degraded books.
            result.failed_requests = self._failed_requests
            result.degraded_requests = self._degraded_requests
            result.hourly_failed = dense(self._failed_by_hour)
            result.hourly_degraded = dense(self._degraded_by_hour)
        if self._faults_on:
            report = self._recovery.report()
            result.proxy_crashes = sum(p.crash_count for p in self.proxies)
            result.proxy_downtime_seconds = sum(
                p.downtime_seconds for p in self.proxies
            )
            result.publisher_outage_seconds = self.publisher.outage_seconds
            result.pushes_suppressed = self._pushes_suppressed
            result.time_to_warm_seconds = report.time_to_warm
            result.unwarmed_recoveries = report.unwarmed
            result.recovery_curve_requests = report.curve_requests
            result.recovery_curve_hits = report.curve_hits
            result.recovery_bin_seconds = report.bin_seconds
            result.notifications_sent = self._notifications_sent
            result.notifications_delivered = self._notifications_delivered
            result.notifications_lost = self._notifications_lost
            result.notification_loss_events = self._notification_loss_events
            result.notifications_retransmitted = self._notifications_retransmitted
            result.duplicate_notifications = sum(
                tracker.duplicates for tracker in self._seq_trackers
            )
            result.delivery_gaps_detected = sum(
                tracker.gaps for tracker in self._seq_trackers
            )
            result.retransmit_queue_overflows = self._retransmit_queue_overflows
            result.stale_hits_served = self._stale_hits_served
            result.staleness_validations = self._staleness_validations
            result.repair_fetches = self.publisher.total_repair_pages
            result.repair_bytes = self.publisher.total_repair_bytes
            result.hourly_stale_served = dense(self._stale_served_by_hour)
            result.hourly_repair_pages = dense(self.publisher.repair_pages_by_hour)
            result.hourly_repair_bytes = dense(self.publisher.repair_bytes_by_hour)
            result.staleness_age_bin_edges = list(STALENESS_AGE_BIN_EDGES)
            result.staleness_age_counts = list(self._staleness_age_counts)
        if self._overload_on:
            overload = self._overload
            horizon = self.workload.config.horizon
            overload.finalize(horizon)
            result.overload_arrivals = overload.queue_arrivals
            result.overload_pushes_shed = overload.queue_rejected_pushes
            result.overload_pulls_rejected = overload.queue_rejected_pulls
            result.average_queue_size = overload.average_queue_size
            queues = overload.queues
            if queues:
                result.overload_queue_peak = max(
                    queue.peak for queue in queues.values()
                )
                result.overload_queue_avg_by_proxy = [
                    queues[server_id].average_queue_size
                    for server_id in range(len(self.proxies))
                ]
                result.overload_queue_rejection_by_proxy = [
                    100.0 * queues[server_id].rejection_fraction
                    for server_id in range(len(self.proxies))
                ]
            result.origin_rejections = overload.origin_rejections
            breaker = overload.breaker
            if breaker is not None:
                result.breaker_opens = breaker.open_count
                result.breaker_open_seconds = breaker.open_seconds
                result.breaker_open_fraction = (
                    breaker.open_seconds / horizon if horizon > 0 else 0.0
                )
                result.breaker_fast_failures = breaker.fast_failures
            budget = overload.budget
            if budget is not None:
                result.retry_budget_spent = budget.spent
                result.retries_denied = budget.denied
            result.overload_stale_serves = self._overload_stale_serves
        if self._churn_on:
            manager = self._lifecycle
            census = manager.finalize(self.workload.config.horizon)
            result.lifecycle_events = manager.events
            result.leases_granted = manager.granted
            result.leases_renewed = manager.renewed
            result.leases_expired = manager.expired
            result.leases_unsubscribed = manager.unsubscribed
            result.handshake_losses = manager.handshake_losses
            result.handshakes_abandoned = manager.handshakes_abandoned
            result.lease_repolls = manager.lease_repolls
            result.handshake_repairs = manager.handshake_repairs
            result.churn_stale_serves = self._churn_stale_serves
            result.pushes_suppressed_no_lease = self._pushes_suppressed_no_lease
            result.active_leases_end = census["active"]
            result.pending_leases_end = census["pending"]
            result.expired_leases_end = census["expired"]
            result.lifecycle_queue_overflows = manager.queue_overflows
            result.lifecycle_queue_peak = manager.queue_peak
            result.renewal_latency_bin_edges = list(RENEWAL_LATENCY_BIN_EDGES)
            result.renewal_latency_counts = list(manager.renewal_latency_counts)
        if self._obs_on and self.obs.profiler is not None:
            result.profile = self.obs.profiler.summary()
        if self._obs_on:
            logger.debug("run done: %s", result.summary())
        return result


def run_simulation(
    workload: Workload,
    config: SimulationConfig,
    match_table: Optional[TraceMatchCounts] = None,
    topology: Optional[Topology] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    observer: Optional[Observer] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulation` and run it."""
    return Simulation(
        workload,
        config,
        match_table,
        topology,
        fault_schedule=fault_schedule,
        observer=observer,
    ).run()
