"""Simulation results: the paper's metrics (§5.1).

* **Global hit ratio H** (eq. 8): total hits over total requests across
  all proxies.
* **Hourly hit ratio** (Fig. 6): H restricted to each hour's requests.
* **Traffic** (Fig. 7): pages (and bytes) transferred from the
  publisher to proxies per hour, split into push transfers and
  demand fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cache.stats import CacheStats


@dataclass
class HourlySeries:
    """A per-hour series stored sparsely and rendered densely."""

    values_by_hour: Dict[int, float] = field(default_factory=dict)

    def add(self, hour: int, amount: float) -> None:
        self.values_by_hour[hour] = self.values_by_hour.get(hour, 0.0) + amount

    def dense(self, hour_count: int) -> List[float]:
        """Values for hours 0..hour_count-1, zero-filled."""
        return [self.values_by_hour.get(hour, 0.0) for hour in range(hour_count)]


@dataclass
class SimulationResult:
    """Everything one run produces."""

    strategy: str
    trace_label: str
    capacity_fraction: float
    subscription_quality: float
    pushing_scheme: str
    requests: int
    hits: int
    stale_hits: int
    push_transfers: int
    push_bytes: int
    fetch_pages: int
    fetch_bytes: int
    hour_count: int
    hourly_requests: List[int]
    hourly_hits: List[int]
    hourly_push_pages: List[int]
    hourly_fetch_pages: List[int]
    hourly_push_bytes: List[int]
    hourly_fetch_bytes: List[int]
    per_proxy: List[CacheStats] = field(default_factory=list, repr=False)
    wall_seconds: float = 0.0
    #: Sum of modelled per-request response times (seconds).
    total_response_time: float = 0.0
    #: Misses served by a peer proxy (cooperative extension only).
    peer_fetch_pages: int = 0
    peer_fetch_bytes: int = 0

    @property
    def hit_ratio(self) -> float:
        """Global H (eq. 8), in [0, 1]."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    @property
    def mean_response_time(self) -> float:
        """Modelled mean user-perceived response time (seconds).

        Hits cost ``hit_latency``; misses add ``per_hop_latency`` per
        network hop to the publisher — the translation of hit ratio
        into user-perceived latency that motivates the paper.
        """
        if self.requests == 0:
            return 0.0
        return self.total_response_time / self.requests

    @property
    def traffic_pages(self) -> int:
        """Total publisher->proxy page transfers (push + fetch)."""
        return self.push_transfers + self.fetch_pages

    @property
    def traffic_bytes(self) -> int:
        """Total publisher->proxy bytes (push + fetch)."""
        return self.push_bytes + self.fetch_bytes

    def hourly_hit_ratio(self) -> List[float]:
        """H per hour (Fig. 6); hours without requests yield 0.0."""
        ratios = []
        for requested, hit in zip(self.hourly_requests, self.hourly_hits):
            ratios.append(hit / requested if requested else 0.0)
        return ratios

    def hourly_traffic_pages(self) -> List[int]:
        """Pages moved publisher->proxies per hour (Fig. 7)."""
        return [
            push + fetch
            for push, fetch in zip(self.hourly_push_pages, self.hourly_fetch_pages)
        ]

    def hourly_traffic_bytes(self) -> List[int]:
        return [
            push + fetch
            for push, fetch in zip(self.hourly_push_bytes, self.hourly_fetch_bytes)
        ]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.strategy:>7s} | {self.trace_label:<11s} "
            f"cap={self.capacity_fraction:.0%} SQ={self.subscription_quality:.2f} "
            f"{self.pushing_scheme:<14s} | H={self.hit_ratio:6.2%} "
            f"rt={1000 * self.mean_response_time:6.1f}ms "
            f"traffic={self.traffic_pages} pages "
            f"({self.push_transfers} pushed, {self.fetch_pages} fetched)"
        )
