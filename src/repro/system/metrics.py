"""Simulation results: the paper's metrics (§5.1).

* **Global hit ratio H** (eq. 8): total hits over total requests across
  all proxies.
* **Hourly hit ratio** (Fig. 6): H restricted to each hour's requests.
* **Traffic** (Fig. 7): pages (and bytes) transferred from the
  publisher to proxies per hour, split into push transfers and
  demand fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.stats import CacheStats


def dense_clamped(values_by_hour: Dict[int, float], hour_count: int) -> List[float]:
    """Render a sparse per-hour dict as a dense ``hour_count``-long list.

    Out-of-range hours are *clamped* into the boundary buckets instead
    of being silently dropped: an event stamped at exactly the horizon
    (hour index == ``hour_count``, e.g. a request whose backed-off
    retry resolves right at the end of the run) lands in the final
    bucket, so every dense series accounts for every event and all the
    hourly lists share one length.
    """
    if hour_count <= 0:
        return []
    out = [0.0] * hour_count
    last = hour_count - 1
    for hour, amount in values_by_hour.items():
        out[min(max(hour, 0), last)] += amount
    return out


@dataclass
class HourlySeries:
    """A per-hour series stored sparsely and rendered densely."""

    values_by_hour: Dict[int, float] = field(default_factory=dict)

    def add(self, hour: int, amount: float) -> None:
        self.values_by_hour[hour] = self.values_by_hour.get(hour, 0.0) + amount

    def dense(self, hour_count: int) -> List[float]:
        """Values for hours 0..hour_count-1, zero-filled.

        Events recorded at or beyond ``hour_count`` (the horizon
        boundary) are clamped into the final bucket rather than lost;
        see :func:`dense_clamped`.
        """
        return dense_clamped(self.values_by_hour, hour_count)


@dataclass
class SimulationResult:
    """Everything one run produces."""

    strategy: str
    trace_label: str
    capacity_fraction: float
    subscription_quality: float
    pushing_scheme: str
    requests: int
    hits: int
    stale_hits: int
    push_transfers: int
    push_bytes: int
    fetch_pages: int
    fetch_bytes: int
    hour_count: int
    hourly_requests: List[int]
    hourly_hits: List[int]
    hourly_push_pages: List[int]
    hourly_fetch_pages: List[int]
    hourly_push_bytes: List[int]
    hourly_fetch_bytes: List[int]
    per_proxy: List[CacheStats] = field(default_factory=list, repr=False)
    wall_seconds: float = 0.0
    #: Per-phase wall-time/call-count summary
    #: (``{phase: {"calls": n, "seconds": s}}``) when the run was
    #: observed with a profiler; ``None`` otherwise.  Excluded — like
    #: ``wall_seconds`` — from bit-identity comparisons.
    profile: Optional[Dict[str, Dict[str, float]]] = None
    #: Sum of modelled per-request response times (seconds).
    total_response_time: float = 0.0
    #: Misses served by a peer proxy (cooperative extension only).
    peer_fetch_pages: int = 0
    peer_fetch_bytes: int = 0

    # -- fault-injection metrics (all zero on a healthy run) ---------------

    #: Requests that could not be served at all (origin retries
    #: exhausted during a publisher outage).
    failed_requests: int = 0
    #: Requests served, but not at full service level: proxy-down
    #: failover to the origin, backed-off retries, dead-peer timeouts,
    #: or a degraded link.
    degraded_requests: int = 0
    hourly_failed: List[int] = field(default_factory=list)
    hourly_degraded: List[int] = field(default_factory=list)
    #: Proxy crash events and their cumulative downtime.
    proxy_crashes: int = 0
    proxy_downtime_seconds: float = 0.0
    #: Cumulative origin unreachability.
    publisher_outage_seconds: float = 0.0
    #: Push placements skipped because the target proxy or the origin
    #: was down at publish time.
    pushes_suppressed: int = 0
    #: Per-crash seconds from recovery until the cache re-warmed; one
    #: sample per recovery that reached the warm threshold.
    time_to_warm_seconds: List[float] = field(default_factory=list)
    #: Recoveries that never reached the warm threshold again.
    unwarmed_recoveries: int = 0
    #: Post-recovery served-request/hit counts bucketed by time since
    #: recovery (the hit-ratio recovery curve), aggregated over crashes.
    recovery_curve_requests: List[int] = field(default_factory=list)
    recovery_curve_hits: List[int] = field(default_factory=list)
    recovery_bin_seconds: float = 0.0

    # -- reliable-delivery metrics (all zero on a healthy run) -------------

    #: Notifications the publisher attempted to push (one per matched
    #: proxy per publication, origin-up only).
    notifications_sent: int = 0
    #: Notifications that reached their proxy (possibly retransmitted).
    notifications_delivered: int = 0
    #: Notifications abandoned: retries exhausted, queue overflow, or
    #: the copy arrived at a crashed proxy.
    notifications_lost: int = 0
    #: Individual sends that were lost (a retransmitted-then-delivered
    #: notification contributes its per-attempt losses here).
    notification_loss_events: int = 0
    #: Retransmission sends performed beyond first transmissions.
    notifications_retransmitted: int = 0
    #: Duplicate arrivals suppressed by proxy sequence tracking.
    duplicate_notifications: int = 0
    #: Sequence gaps detected at proxies (a missed earlier version).
    delivery_gaps_detected: int = 0
    #: Losses abandoned because the retransmit queue was full.
    retransmit_queue_overflows: int = 0
    #: Requests answered with a silently stale copy the proxy believed
    #: current (no-repair baseline, or repair with the origin down).
    stale_hits_served: int = 0
    #: Access-time sequence validations performed (repair enabled).
    staleness_validations: int = 0
    #: Missed pushes healed by an access-time origin fetch.
    repair_fetches: int = 0
    repair_bytes: int = 0
    hourly_stale_served: List[int] = field(default_factory=list)
    hourly_repair_pages: List[int] = field(default_factory=list)
    hourly_repair_bytes: List[int] = field(default_factory=list)
    #: Staleness-age histogram over served/repaired stale copies:
    #: ``counts[i]`` samples with age <= ``edges[i]`` (last bin is the
    #: overflow beyond the final edge, so len(counts) == len(edges)+1).
    staleness_age_bin_edges: List[float] = field(default_factory=list)
    staleness_age_counts: List[int] = field(default_factory=list)

    # -- subscription-lifecycle metrics (all zero without churn) -----------

    #: Lifecycle trace records processed (subscribe + renew + unsubscribe).
    lifecycle_events: int = 0
    #: Fresh leases granted (initial and comeback subscribes).
    leases_granted: int = 0
    #: In-time lease renewals.
    leases_renewed: int = 0
    #: Leases that lapsed (noticed lazily at publish/access/run end).
    leases_expired: int = 0
    #: Explicit unsubscribes.
    leases_unsubscribed: int = 0
    #: Individual confirmation-handshake messages lost.
    handshake_losses: int = 0
    #: Handshakes abandoned (retries exhausted or queue shed): the lease
    #: stayed PENDING until an access-time re-poll.
    handshakes_abandoned: int = 0
    #: Lapsed leases repaired by an access-time re-poll.
    lease_repolls: int = 0
    #: Stuck-PENDING handshakes resolved by an access-time re-poll.
    handshake_repairs: int = 0
    #: Re-polls that found the proxy's cached copy behind the origin —
    #: the notifications it missed while unleased had real cost.
    churn_stale_serves: int = 0
    #: Publish-side pushes suppressed for lease reasons (no lease,
    #: pending, expired, unsubscribed).
    pushes_suppressed_no_lease: int = 0
    #: Lease-state census at the end of the run.
    active_leases_end: int = 0
    pending_leases_end: int = 0
    expired_leases_end: int = 0
    #: Handshake work-queue statistics across proxies.
    lifecycle_queue_overflows: int = 0
    lifecycle_queue_peak: int = 0
    #: Confirmation-latency histogram over renewals (same edge/overflow
    #: convention as the staleness-age histogram).
    renewal_latency_bin_edges: List[float] = field(default_factory=list)
    renewal_latency_counts: List[int] = field(default_factory=list)

    # -- overload metrics (all zero with the layer off) --------------------

    #: Jobs (pushes + pulls) offered to the per-proxy service queues.
    overload_arrivals: int = 0
    #: Pushes shed because the target queue crossed the push threshold
    #: (pushes yield queue room to subscriber pulls first).
    overload_pushes_shed: int = 0
    #: Pull requests rejected at a full service queue (failed over to
    #: the cooperation chain or the origin).
    overload_pulls_rejected: int = 0
    #: Fleet-wide mean queue occupancy seen by an arrival
    #: (icarus ``AVERAGE_QUEUE_SIZE`` semantics).
    average_queue_size: float = 0.0
    #: Highest occupancy any service queue reached.
    overload_queue_peak: int = 0
    #: Per-proxy mean occupancy / rejection percentage, indexed by
    #: server id (icarus ``PERCENTAGE_OF_REJECTION`` per node).
    overload_queue_avg_by_proxy: List[float] = field(default_factory=list)
    overload_queue_rejection_by_proxy: List[float] = field(default_factory=list)
    #: Origin fetches refused by the admission gate (token bucket
    #: drained) or fast-failed by the open circuit breaker.
    origin_rejections: int = 0
    #: Circuit-breaker open transitions, cumulative open time, and the
    #: open fraction of the whole horizon.
    breaker_opens: int = 0
    breaker_open_seconds: float = 0.0
    breaker_open_fraction: float = 0.0
    #: Requests fast-failed while the breaker was open.
    breaker_fast_failures: int = 0
    #: Extra attempts granted by / refused by the global retry budget.
    retry_budget_spent: int = 0
    retries_denied: int = 0
    #: Requests answered with a cached stale copy because origin
    #: admission refused the fetch (serve-stale degraded mode).
    overload_stale_serves: int = 0

    @property
    def hit_ratio(self) -> float:
        """Global H (eq. 8), in [0, 1]."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    @property
    def mean_response_time(self) -> float:
        """Modelled mean user-perceived response time (seconds).

        Hits cost ``hit_latency``; misses add ``per_hop_latency`` per
        network hop to the publisher — the translation of hit ratio
        into user-perceived latency that motivates the paper.
        """
        if self.requests == 0:
            return 0.0
        return self.total_response_time / self.requests

    @property
    def traffic_pages(self) -> int:
        """Total publisher->proxy page transfers (push + fetch)."""
        return self.push_transfers + self.fetch_pages

    @property
    def traffic_bytes(self) -> int:
        """Total publisher->proxy bytes (push + fetch)."""
        return self.push_bytes + self.fetch_bytes

    @property
    def availability(self) -> float:
        """Fraction of requests that were served at all, in [0, 1]."""
        if self.requests == 0:
            return 1.0
        return 1.0 - self.failed_requests / self.requests

    @property
    def mean_time_to_warm(self) -> Optional[float]:
        """Mean seconds from proxy recovery to a re-warmed cache.

        ``None`` when no recovery reached the warm threshold (healthy
        runs, or runs whose caches never warmed back up).
        """
        if not self.time_to_warm_seconds:
            return None
        return sum(self.time_to_warm_seconds) / len(self.time_to_warm_seconds)

    def hourly_availability(self) -> List[float]:
        """Per-hour availability; hours without requests count as 1.0."""
        if not self.hourly_failed:
            return [1.0] * len(self.hourly_requests)
        out = []
        for requested, failed in zip(self.hourly_requests, self.hourly_failed):
            out.append(1.0 - failed / requested if requested else 1.0)
        return out

    def recovery_hit_ratio_curve(self) -> List[float]:
        """Hit ratio per post-recovery bin (the time-to-warm curve).

        Bins that saw no served request yield 0.0; bin width is
        ``recovery_bin_seconds``.
        """
        return [
            hit / requested if requested else 0.0
            for requested, hit in zip(
                self.recovery_curve_requests, self.recovery_curve_hits
            )
        ]

    @property
    def notification_delivery_ratio(self) -> float:
        """Delivered over sent notifications; 1.0 with no delivery faults."""
        if self.notifications_sent == 0:
            return 1.0
        return self.notifications_delivered / self.notifications_sent

    @property
    def stale_served_ratio(self) -> float:
        """Fraction of requests answered with a silently stale copy."""
        if self.requests == 0:
            return 0.0
        return self.stale_hits_served / self.requests

    @property
    def lease_repair_ratio(self) -> float:
        """Fraction of lapsed/stuck leases healed by re-poll, in [0, 1].

        1.0 also when nothing ever lapsed (a healthy churn-free run).
        """
        broken = self.leases_expired + self.handshakes_abandoned
        if broken == 0:
            return 1.0
        return min(1.0, (self.lease_repolls + self.handshake_repairs) / broken)

    @property
    def rejection_percentage(self) -> float:
        """Percentage of queue arrivals rejected (pushes + pulls)."""
        if self.overload_arrivals == 0:
            return 0.0
        rejected = self.overload_pushes_shed + self.overload_pulls_rejected
        return 100.0 * rejected / self.overload_arrivals

    def hourly_hit_ratio(self) -> List[float]:
        """H per hour (Fig. 6); hours without requests yield 0.0."""
        ratios = []
        for requested, hit in zip(self.hourly_requests, self.hourly_hits):
            ratios.append(hit / requested if requested else 0.0)
        return ratios

    def hourly_traffic_pages(self) -> List[int]:
        """Pages moved publisher->proxies per hour (Fig. 7)."""
        return [
            push + fetch
            for push, fetch in zip(self.hourly_push_pages, self.hourly_fetch_pages)
        ]

    def hourly_traffic_bytes(self) -> List[int]:
        return [
            push + fetch
            for push, fetch in zip(self.hourly_push_bytes, self.hourly_fetch_bytes)
        ]

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.strategy:>7s} | {self.trace_label:<11s} "
            f"cap={self.capacity_fraction:.0%} SQ={self.subscription_quality:.2f} "
            f"{self.pushing_scheme:<14s} | H={self.hit_ratio:6.2%} "
            f"rt={1000 * self.mean_response_time:6.1f}ms "
            f"traffic={self.traffic_pages} pages "
            f"({self.push_transfers} pushed, {self.fetch_pages} fetched)"
        )
        if self.proxy_crashes or self.failed_requests or self.degraded_requests:
            warm = self.mean_time_to_warm
            warm_text = f"{warm:.0f}s" if warm is not None else "-"
            text += (
                f" | avail={self.availability:.2%} "
                f"failed={self.failed_requests} degraded={self.degraded_requests} "
                f"crashes={self.proxy_crashes} warm={warm_text}"
            )
        if self.notification_loss_events or self.notifications_lost:
            text += (
                f" | delivery={self.notification_delivery_ratio:.2%} "
                f"lost={self.notifications_lost} "
                f"retrans={self.notifications_retransmitted} "
                f"stale_served={self.stale_hits_served} "
                f"repairs={self.repair_fetches}"
            )
        if self.lifecycle_events:
            text += (
                f" | leases={self.leases_granted}+{self.leases_renewed}r"
                f"/{self.leases_expired}x "
                f"repolls={self.lease_repolls + self.handshake_repairs} "
                f"suppressed={self.pushes_suppressed_no_lease}"
            )
        if self.overload_arrivals or self.origin_rejections or self.retries_denied:
            text += (
                f" | queue~{self.average_queue_size:.2f} "
                f"rej={self.rejection_percentage:.1f}% "
                f"origin_rej={self.origin_rejections} "
                f"breaker={self.breaker_opens}x/{self.breaker_open_seconds:.0f}s "
                f"retry_denied={self.retries_denied}"
            )
        return text
