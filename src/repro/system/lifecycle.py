"""Subscription lifecycle: leases, confirmation handshakes, re-polls.

The paper's subscription base is frozen for a run; this layer makes it
a moving part.  Each (page, proxy) subscription cell follows the leased
lifecycle of hub protocols (PubSubHubbub-style)::

    subscribe ──► PENDING ──confirm──► CONFIRMED ──renew──► CONFIRMED
                     │                     │
                     │ (handshake lost,    │ (no renewal arrives)
                     │  retries exhausted) ▼
                     │                  EXPIRED ──re-poll──► CONFIRMED
                     ▼
               (repaired on next access)         unsubscribe ──► UNSUBSCRIBED

* **Handshake**: a ``subscribe``/``renew`` message is only effective
  once the hub's confirmation arrives.  Each confirmation attempt can
  be lost (:attr:`~repro.workload.churn.ChurnSpec.confirmation_loss_probability`,
  drawn from the dedicated ``"faults.lifecycle"`` stream) and is
  retried with capped exponential backoff — the same
  :func:`~repro.system.delivery.capped_backoff` rule the reliable-
  delivery retransmit protocol uses.  Like
  :meth:`~repro.system.delivery.ReliableDelivery.plan`, the whole
  attempt timeline is resolved *analytically* at event time; the lease
  stays PENDING until the resolved confirmation instant passes.
* **Per-subscriber work queues**: retried handshakes occupy a slot in
  the proxy's bounded :class:`SubscriberQueue` until they resolve; a
  handshake arriving at a full queue is abandoned (overload shedding)
  and the lease is stuck PENDING.
* **Lazy expiry**: nobody fires an event at lease expiry.  A lapsed
  lease is noticed when something touches it — a publication (the push
  is suppressed), an access, or end-of-run accounting.
* **Re-poll repair**: an access to a lapsed or stuck-PENDING cell
  re-polls the hub and restores a confirmed lease on the spot, so no
  subscriber permanently loses notifications — the lifecycle analogue
  of the delivery layer's access-time staleness repair.

Observability hooks are emitted directly by the manager (they never
touch RNG); all randomness stays in the one dedicated stream, which is
never even derived when the loss probability is zero — the bit-identity
discipline shared with the other fault layers.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.recorder import NULL_OBSERVER, Observer
from repro.system.delivery import capped_backoff
from repro.workload.churn import ChurnSpec, LifecycleRecord

#: Renewal-latency histogram bin edges (seconds from renew/subscribe to
#: confirmation); a lossless handshake confirms at latency 0.  The last
#: bin is the overflow beyond the final edge.
RENEWAL_LATENCY_BIN_EDGES: List[float] = [0.5, 1.0, 2.0, 5.0, 15.0, 60.0]

#: Lease states.  EXPIRED is assigned lazily; a lease whose deadline
#: passed but that nothing touched yet still carries its old status.
PENDING = "pending"
CONFIRMED = "confirmed"
EXPIRED = "expired"
UNSUBSCRIBED = "unsubscribed"

#: Sentinel confirmation instant for an abandoned handshake.
NEVER = float("inf")


def renewal_latency_bin(latency: float) -> int:
    """Histogram bin index for one confirmation-latency sample."""
    for index, edge in enumerate(RENEWAL_LATENCY_BIN_EDGES):
        if latency <= edge:
            return index
    return len(RENEWAL_LATENCY_BIN_EDGES)


class _Lease:
    """Mutable lifecycle state of one (page, proxy) subscription cell."""

    __slots__ = ("status", "expires_at", "confirmed_at")

    def __init__(self, status: str, expires_at: float, confirmed_at: float) -> None:
        self.status = status
        self.expires_at = expires_at
        self.confirmed_at = confirmed_at


class SubscriberQueue:
    """Bounded per-proxy queue of in-flight handshake retries.

    Mirrors the reliable-delivery retransmit queue: a min-heap of
    resolution times, drained lazily (the simulator processes lifecycle
    events in nondecreasing time order), with overload shedding when
    full.  Tracks its own failure/peak/overflow statistics.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._pending: List[float] = []
        #: Handshake attempts lost at this proxy.
        self.failures = 0
        #: Largest concurrent in-flight handshake count observed.
        self.peak = 0
        #: Handshakes abandoned because the queue was full.
        self.overflows = 0

    def __len__(self) -> int:
        return len(self._pending)

    def drain(self, now: float) -> None:
        """Free slots whose handshakes have resolved by ``now``."""
        while self._pending and self._pending[0] <= now:
            heapq.heappop(self._pending)

    @property
    def full(self) -> bool:
        return len(self._pending) >= self.limit

    def admit(self, resolve_at: float) -> None:
        heapq.heappush(self._pending, resolve_at)
        if len(self._pending) > self.peak:
            self.peak = len(self._pending)


class LifecycleManager:
    """Per-run lease state for every subscription cell.

    The simulator consults it on every publish (``deliverable``: may a
    notification go to this proxy?) and every request (``on_access``:
    re-poll repair of lapsed state), and feeds it the trace's lifecycle
    records (``on_event``).
    """

    def __init__(
        self,
        spec: ChurnSpec,
        server_count: int,
        rng: Optional[np.random.Generator] = None,
        observer: Optional[Observer] = None,
        obs_on: bool = False,
        overload=None,
    ) -> None:
        self.spec = spec
        self._rng = rng
        #: Optional OverloadManager: confirmation retries then consume
        #: the global retry budget and backoff steps carry seeded
        #: jitter.  ``None`` keeps the handshake timeline byte-identical
        #: to the pre-overload behaviour.
        self._overload = overload
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._obs_on = obs_on and self.obs.enabled
        self._leases: Dict[Tuple[int, int], _Lease] = {}
        self._queues: List[SubscriberQueue] = [
            SubscriberQueue(spec.queue_limit) for _ in range(server_count)
        ]
        # -- counters -----------------------------------------------------
        self.events = 0
        self.granted = 0
        self.renewed = 0
        self.unsubscribed = 0
        self.expired = 0
        self.handshake_losses = 0
        self.handshakes_abandoned = 0
        self.lease_repolls = 0
        self.handshake_repairs = 0
        self.renewal_latency_counts: List[int] = [0] * (
            len(RENEWAL_LATENCY_BIN_EDGES) + 1
        )

    # -- queue statistics ----------------------------------------------------

    @property
    def queue_overflows(self) -> int:
        return sum(queue.overflows for queue in self._queues)

    @property
    def queue_peak(self) -> int:
        return max((queue.peak for queue in self._queues), default=0)

    # -- handshake resolution --------------------------------------------------

    def _resolve_handshake(self, server_id: int, now: float) -> float:
        """When the confirmation for a message sent at ``now`` lands.

        Walks the attempt timeline analytically: each attempt's loss is
        one draw from the lifecycle stream, retries back off with the
        shared capped-doubling rule.  Returns :data:`NEVER` when every
        attempt is lost or the proxy's handshake queue sheds the retry.
        """
        spec = self.spec
        loss = spec.confirmation_loss_probability
        if loss <= 0.0 or self._rng is None:
            return now
        queue = self._queues[server_id]
        queue.drain(now)
        overload = self._overload
        at = now
        losses = 0
        confirmed = False
        for attempt in range(spec.confirm_retry_limit + 1):
            if float(self._rng.random()) >= loss:
                confirmed = True
                break
            losses += 1
            if attempt == 0 and spec.confirm_retry_limit > 0 and queue.full:
                # No slot to retry from: the handshake is shed.
                queue.failures += losses
                queue.overflows += 1
                self.handshake_losses += losses
                self.handshakes_abandoned += 1
                return NEVER
            if (
                overload is not None
                and attempt < spec.confirm_retry_limit
                and not overload.allow_retry(at)
            ):
                # Retry-storm protection: the global budget refused the
                # next confirmation attempt; the lease stays PENDING
                # until an access-time re-poll repairs it.
                queue.failures += losses
                self.handshake_losses += losses
                self.handshakes_abandoned += 1
                return NEVER
            backoff = capped_backoff(
                spec.confirm_timeout, spec.confirm_backoff_cap, attempt
            )
            if overload is not None:
                backoff = overload.jitter_backoff(backoff)
            at += backoff
        queue.failures += losses
        self.handshake_losses += losses
        if losses and spec.confirm_retry_limit > 0:
            queue.admit(at)
        if not confirmed:
            self.handshakes_abandoned += 1
            return NEVER
        return at

    # -- event intake ----------------------------------------------------------

    def on_event(self, record: LifecycleRecord, now: float) -> None:
        """Apply one trace lifecycle record at simulation time ``now``."""
        self.events += 1
        key = (record.server_id, record.page_id)
        obs_on = self._obs_on
        if record.kind == "unsubscribe":
            self.unsubscribed += 1
            lease = self._leases.get(key)
            if lease is None:
                lease = _Lease(UNSUBSCRIBED, now, now)
                self._leases[key] = lease
            else:
                self._touch(key, lease, now, "event")
                lease.status = UNSUBSCRIBED
            if obs_on:
                self.obs.lease_unsubscribe(now, record.page_id, record.server_id)
            return

        # subscribe / renew: start a fresh lease behind a handshake.
        confirmed_at = self._resolve_handshake(record.server_id, now)
        if record.kind == "renew":
            self.renewed += 1
            if obs_on:
                self.obs.lease_renewed(
                    now, record.page_id, record.server_id, record.lease
                )
            if confirmed_at != NEVER:
                self._sample_renewal_latency(confirmed_at - now)
        else:
            self.granted += 1
            if obs_on:
                self.obs.lease_subscribe(
                    now, record.page_id, record.server_id, record.lease
                )
        lease = self._leases.get(key)
        if lease is not None:
            self._touch(key, lease, now, "event")
            lease.status = PENDING
            lease.expires_at = now + record.lease
            lease.confirmed_at = confirmed_at
        else:
            self._leases[key] = _Lease(PENDING, now + record.lease, confirmed_at)
        if obs_on:
            if confirmed_at == NEVER:
                self.obs.handshake_lost(
                    now, record.page_id, record.server_id,
                    self.spec.confirm_retry_limit + 1,
                )
            else:
                self.obs.lease_confirmed(
                    now, record.page_id, record.server_id, confirmed_at - now
                )
            self.obs.queue_depth(
                now, "handshake", len(self._queues[record.server_id])
            )

    def _sample_renewal_latency(self, latency: float) -> None:
        self.renewal_latency_counts[renewal_latency_bin(latency)] += 1

    # -- lazy state maintenance -------------------------------------------------

    def _touch(
        self, key: Tuple[int, int], lease: _Lease, now: float, where: str
    ) -> None:
        """Advance one lease's lazy transitions up to ``now``.

        Promotes a PENDING lease whose confirmation instant has passed,
        then retires it if its deadline has too.  Each expiry is counted
        exactly once (the status transition is the latch).
        """
        if lease.status == PENDING and lease.confirmed_at <= now:
            lease.status = CONFIRMED
        if lease.status in (PENDING, CONFIRMED) and lease.expires_at <= now:
            lease.status = EXPIRED
            self.expired += 1
            if self._obs_on:
                self.obs.lease_expired(now, key[1], key[0], where)

    # -- publish-path gate --------------------------------------------------------

    def deliverable(
        self, server_id: int, page_id: int, now: float
    ) -> Tuple[bool, str]:
        """Whether a notification may be pushed to this cell at ``now``.

        Returns ``(allowed, reason)``; ``reason`` names the suppression
        cause when not allowed (fed to the ``push_suppressed`` trace
        event).  Touching the lease performs the lazy expiry.
        """
        key = (server_id, page_id)
        lease = self._leases.get(key)
        if lease is None:
            return False, "no-lease"
        self._touch(key, lease, now, "publish")
        if lease.status == CONFIRMED:
            return True, ""
        if lease.status == UNSUBSCRIBED:
            return False, "unsubscribed"
        if lease.status == EXPIRED:
            return False, "lease-expired"
        return False, "lease-pending"

    # -- access-path repair --------------------------------------------------------

    def on_access(
        self, server_id: int, page_id: int, now: float
    ) -> Optional[str]:
        """Re-poll repair hook, called on every user request.

        A request against a lapsed or stuck-PENDING cell re-polls the
        hub: the subscriber learns its lease silently died and comes
        back with a fresh confirmed lease of the nominal duration (no
        RNG draw — re-poll is deterministic repair, not workload).

        Returns the repair kind (``"expired"`` or ``"handshake"``) when
        a repair happened, ``None`` on an untouched/healthy/unsubscribed
        cell.
        """
        key = (server_id, page_id)
        lease = self._leases.get(key)
        if lease is None:
            return None
        self._touch(key, lease, now, "access")
        if lease.status == CONFIRMED or lease.status == UNSUBSCRIBED:
            return None
        if lease.status == EXPIRED:
            kind = "expired"
            self.lease_repolls += 1
        else:
            # PENDING with an unresolved (future or abandoned)
            # confirmation: the access doubles as the confirmation.
            kind = "handshake"
            self.handshake_repairs += 1
        lease.status = CONFIRMED
        lease.confirmed_at = now
        lease.expires_at = now + self.spec.lease_duration
        if self._obs_on:
            self.obs.repoll(now, page_id, server_id, kind)
        return kind

    # -- end-of-run accounting -------------------------------------------------------

    def finalize(self, horizon: float) -> Dict[str, int]:
        """Settle every lease at ``horizon`` and count the end states.

        Touches every cell (so leases that lapsed unobserved still get
        their expiry counted) and returns the end-state census.
        """
        counts = {"active": 0, "pending": 0, "expired": 0, "unsubscribed": 0}
        for key, lease in self._leases.items():
            self._touch(key, lease, horizon, "end")
            if lease.status == CONFIRMED:
                counts["active"] += 1
            elif lease.status == PENDING:
                counts["pending"] += 1
            elif lease.status == EXPIRED:
                counts["expired"] += 1
            else:
                counts["unsubscribed"] += 1
        return counts
