"""Simulation configuration.

Bundles every §5.1 experiment knob: the strategy under test, the cache
capacity fraction, the subscription quality, the pushing scheme and the
topology parameters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.faults.spec import ChaosSpec, OverloadSpec


class PushingScheme(enum.Enum):
    """How content moves at push time (§5.6).

    ALWAYS: the publisher transfers every matched page to the proxy;
    bandwidth is wasted when the proxy declines to store it.

    WHEN_NECESSARY: the publisher first sends only meta-information;
    the proxy evaluates placement and content is transferred only when
    the answer is "will store it in cache".
    """

    ALWAYS = "always"
    WHEN_NECESSARY = "when-necessary"


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulation run."""

    #: Strategy registry name ("gdstar", "sub", "sg2", "dc-lap", ...).
    strategy: str = "gdstar"
    #: Extra strategy kwargs (beta, push_fraction, bounds, ...).
    strategy_options: Dict[str, Any] = field(default_factory=dict)
    #: Cache capacity as a fraction of each server's unique requested
    #: bytes (the paper tests 0.01, 0.05 and 0.10).
    capacity_fraction: float = 0.05
    #: Target subscription quality SQ in (0, 1]; 1.0 is the ideal case.
    subscription_quality: float = 1.0
    #: Pushing scheme (§5.6); irrelevant for hit ratio, only traffic.
    pushing: PushingScheme = PushingScheme.WHEN_NECESSARY
    #: Root seed for subscription-table noise and the topology.
    seed: int = 7
    #: Topology model for fetch costs ("waxman" or "barabasi").
    topology_model: str = "waxman"
    #: Extra transit-only router nodes in the topology.
    topology_extra_nodes: int = 20
    #: Fraction of requests assumed notification-driven (§7 extension).
    notified_fraction: float = 1.0
    #: Run the simulator's internal consistency checks every N events
    #: (0 disables; tests enable it).
    invariant_check_interval: int = 0
    #: Response-time model: latency of a local cache hit (seconds).
    #: The paper argues hit-ratio gains translate to response-time
    #: gains; this simple model makes that translation measurable.
    hit_latency: float = 0.01
    #: Additional latency per network hop on a miss (seconds); a miss
    #: costs ``hit_latency + per_hop_latency * fetch_cost(proxy)``.
    per_hop_latency: float = 0.04
    #: Fault-injection parameters.  ``None`` (the default) disables the
    #: faults layer entirely; a :class:`~repro.faults.spec.ChaosSpec`
    #: whose rates are all zero yields an empty schedule, whose metrics
    #: are bit-identical to a run without the layer.
    chaos: Optional[ChaosSpec] = None
    #: Overload/backpressure parameters.  ``None`` (the default) keeps
    #: proxy and origin capacity infinite, as the paper assumes; a
    #: :class:`~repro.faults.spec.OverloadSpec` with every knob at its
    #: default is equally inert (``enabled`` is false) and bit-identical
    #: to a run without the layer.
    overload: Optional[OverloadSpec] = None
    #: Trace replay engine: ``"fast"`` merges the static publish and
    #: request streams straight into the handlers, consulting the DES
    #: agenda only for dynamic events — and, when nothing in the
    #: configuration can ever touch the agenda (no faults, churn or
    #: observer), drops to a batched driver that bypasses the DES
    #: entirely; ``"hybrid"`` forces the generic agenda-merging fast
    #: path even when the batched driver would be eligible (used by the
    #: perf benchmark to time the stages separately); ``"agenda"`` is
    #: the legacy path that heap-schedules every trace record.  All
    #: engines are bit-identical in every
    #: :class:`~repro.system.metrics.SimulationResult` field except
    #: ``wall_seconds``/``profile``.
    replay: str = "fast"
    #: Shard the proxies across this many ``multiprocessing`` workers
    #: (see :mod:`repro.system.sharding`).  1 (the default) runs the
    #: classic single-process simulation; higher values partition the
    #: proxy fleet, replay the shards in parallel and merge the
    #: per-proxy metrics — bit-identical to ``workers=1`` in every
    #: result field except ``wall_seconds``/``profile``.  Configurations
    #: whose state crosses shards (faults, overload, churn, observers,
    #: cooperation chains spanning shards) decline to a single process.
    workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ValueError(
                f"capacity_fraction must be in (0, 1], got {self.capacity_fraction}"
            )
        if not 0.0 < self.subscription_quality <= 1.0:
            raise ValueError(
                f"subscription_quality must be in (0, 1], got "
                f"{self.subscription_quality}"
            )
        if not 0.0 <= self.notified_fraction <= 1.0:
            raise ValueError(
                f"notified_fraction must be in [0, 1], got {self.notified_fraction}"
            )
        if self.invariant_check_interval < 0:
            raise ValueError("invariant_check_interval must be >= 0")
        if self.hit_latency < 0 or self.per_hop_latency < 0:
            raise ValueError("latencies must be >= 0")
        if self.replay not in ("fast", "hybrid", "agenda"):
            raise ValueError(
                f"replay must be 'fast', 'hybrid' or 'agenda', got {self.replay!r}"
            )
