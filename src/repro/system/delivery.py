"""Reliable notification delivery over an unreliable push path.

The paper's push path (flow 3 of Figure 1) is assumed perfectly
reliable: every matched proxy receives every notification.  The
delivery layer drops that assumption.  With delivery faults configured
in the :class:`~repro.faults.spec.ChaosSpec`, each broker->proxy
notification can be lost (per-send probability, a crashed broker shard
or a crashed proxy), duplicated, or delayed out of order — and the
publisher side runs a small reliability protocol on top:

* every notification carries a publisher-stamped per-page **sequence
  number** (see :class:`~repro.pubsub.pages.Notification`);
* an unacknowledged send is **retransmitted** after an ack timeout
  that doubles per attempt up to a cap, at most
  ``delivery_retry_limit`` times;
* the number of concurrently pending retransmissions is bounded by
  ``delivery_queue_limit`` — a loss arriving at a full queue is
  *abandoned* (overload shedding) and becomes a permanent loss;
* a permanently lost notification is eventually healed lazily by
  access-time **staleness repair** at the proxy (see the simulator's
  request path).

Like the origin-retry model, the protocol is resolved *analytically*
against the materialised :class:`~repro.faults.schedule.FaultSchedule`:
:meth:`ReliableDelivery.plan` walks the attempt timeline of one
notification — whether each send at time ``t`` survives is a pure
window lookup plus at most one draw from the dedicated
``"faults.delivery"`` stream — and returns a :class:`DeliveryPlan`
stating when (and whether) the notification arrives.  The simulator
then schedules the arrival as a DES event.  Keeping all randomness in
one named stream preserves the bit-identity discipline: with every
delivery knob at its default the stream is never created and no other
stream's draw order moves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.faults.schedule import FaultSchedule
from repro.faults.spec import ChaosSpec

#: Staleness-age histogram bin edges (seconds): a sample falls in the
#: first bin whose edge it does not exceed; ages beyond the last edge
#: land in a final overflow bin.
STALENESS_AGE_BIN_EDGES: List[float] = [
    60.0,
    300.0,
    900.0,
    3600.0,
    4 * 3600.0,
    24 * 3600.0,
]


def staleness_age_bin(age: float) -> int:
    """Histogram bin index for one staleness-age sample (seconds)."""
    for index, edge in enumerate(STALENESS_AGE_BIN_EDGES):
        if age <= edge:
            return index
    return len(STALENESS_AGE_BIN_EDGES)


def capped_backoff(base: float, cap: float, attempt: int) -> float:
    """Exponential backoff for retry ``attempt`` (0-based), capped.

    The retry timing rule shared by the delivery retransmit protocol
    and the subscription confirmation handshake: ``base`` doubles per
    attempt up to ``cap``.
    """
    return min(base * (2.0 ** attempt), cap)


@dataclass(frozen=True)
class DeliveryPlan:
    """The resolved fate of one notification send.

    Attributes:
        delivered: whether any send attempt got through.
        arrival_time: simulation time the surviving copy reaches the
            proxy (send time plus reorder delay); meaningless when
            ``delivered`` is False.
        attempts: sends performed (first transmission + retransmissions).
        loss_events: sends that were lost (each cost one attempt).
        queued: whether the notification entered the retransmit queue.
        queue_overflow: the first send was lost but the retransmit
            queue was full — the notification was abandoned unsent.
        duplicate_time: arrival time of a second, duplicate copy (an
            ack lost on the way back), or None.
    """

    delivered: bool
    arrival_time: float
    attempts: int
    loss_events: int
    queued: bool
    queue_overflow: bool
    duplicate_time: Optional[float]

    @property
    def retransmissions(self) -> int:
        """Retransmission sends beyond the first transmission."""
        return max(0, self.attempts - 1)


class ReliableDelivery:
    """Publisher-side delivery protocol state for one run.

    Holds the bounded retransmit queue (a min-heap of resolution
    times — entries are drained lazily because the simulator plans
    notifications in nondecreasing time order) and the dedicated
    delivery RNG stream.
    """

    def __init__(
        self,
        spec: ChaosSpec,
        schedule: FaultSchedule,
        rng: np.random.Generator,
        overload=None,
    ) -> None:
        self.spec = spec
        self.schedule = schedule
        self._rng = rng
        #: Optional OverloadManager: retransmissions then consume the
        #: global retry budget and backoff steps carry seeded jitter.
        #: ``None`` (the default) keeps the protocol byte-identical to
        #: the pre-overload behaviour.
        self._overload = overload
        #: Resolution times of notifications still occupying a
        #: retransmit-queue slot.
        self._pending: List[float] = []

    @property
    def pending_retransmits(self) -> int:
        """Retransmit-queue slots currently occupied."""
        return len(self._pending)

    def _send_lost(self, server_id: int, broker_id: int, at: float) -> bool:
        """Whether one send at time ``at`` fails to reach the proxy.

        Down-windows are checked first and short-circuit, so they never
        consume a random draw; the loss draw only happens when a loss
        probability is configured.
        """
        if self.schedule.broker_down(broker_id, at):
            return True
        if self.schedule.proxy_down(server_id, at):
            return True
        loss = self.spec.delivery_loss_probability
        return loss > 0.0 and float(self._rng.random()) < loss

    def plan(self, server_id: int, now: float) -> DeliveryPlan:
        """Resolve the delivery of one notification sent at ``now``."""
        spec = self.spec
        # Lazily free queue slots whose retransmissions have resolved;
        # the simulator calls plan() in nondecreasing time order.
        while self._pending and self._pending[0] <= now:
            heapq.heappop(self._pending)

        broker_id = server_id % spec.broker_count
        overload = self._overload
        at = now
        loss_events = 0
        attempts = 0
        delivered = False
        for attempt in range(spec.delivery_retry_limit + 1):
            attempts += 1
            if not self._send_lost(server_id, broker_id, at):
                delivered = True
                break
            loss_events += 1
            if attempt == 0 and spec.delivery_retry_limit > 0:
                # The first loss is what admits the notification to the
                # retransmit queue; a full queue sheds it instead.
                if len(self._pending) >= spec.delivery_queue_limit:
                    return DeliveryPlan(
                        delivered=False,
                        arrival_time=at,
                        attempts=1,
                        loss_events=1,
                        queued=False,
                        queue_overflow=True,
                        duplicate_time=None,
                    )
            if (
                overload is not None
                and attempt < spec.delivery_retry_limit
                and not overload.allow_retry(at)
            ):
                # Retry-storm protection: the global budget refused the
                # next retransmission, so the loss becomes permanent
                # (healed later by access-time staleness repair).
                break
            backoff = capped_backoff(
                spec.delivery_ack_timeout, spec.delivery_backoff_cap, attempt
            )
            if overload is not None:
                backoff = overload.jitter_backoff(backoff)
            at += backoff

        queued = loss_events > 0 and spec.delivery_retry_limit > 0
        if not delivered:
            if queued:
                heapq.heappush(self._pending, at)
            return DeliveryPlan(
                delivered=False,
                arrival_time=at,
                attempts=attempts,
                loss_events=loss_events,
                queued=queued,
                queue_overflow=False,
                duplicate_time=None,
            )

        if queued:
            heapq.heappush(self._pending, at)
        arrival = at
        if spec.delivery_reorder_delay > 0.0:
            arrival += float(self._rng.random()) * spec.delivery_reorder_delay
        duplicate_time: Optional[float] = None
        if spec.delivery_duplicate_probability > 0.0:
            if float(self._rng.random()) < spec.delivery_duplicate_probability:
                duplicate_time = arrival
                if spec.delivery_reorder_delay > 0.0:
                    duplicate_time += (
                        float(self._rng.random()) * spec.delivery_reorder_delay
                    )
        return DeliveryPlan(
            delivered=True,
            arrival_time=arrival,
            attempts=attempts,
            loss_events=loss_events,
            queued=queued,
            queue_overflow=False,
            duplicate_time=duplicate_time,
        )
