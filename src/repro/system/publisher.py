"""The publisher / origin server.

Holds the authoritative copy of every page: its size and its *current*
version number.  Proxies fetch from here on misses; the content
distribution engine pushes from here at publish time.  The publisher
also tallies its outbound traffic, split into push transfers and
demand fetches, per hour — the data behind Fig. 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.log import get_logger
from repro.workload.trace import Workload

logger = get_logger(__name__)


class Publisher:
    """Origin server state and outbound traffic accounting."""

    def __init__(self, workload: Workload) -> None:
        self._sizes: Dict[int, int] = {
            page.page_id: page.size for page in workload.pages
        }
        self._versions: Dict[int, int] = {}
        #: Whether the origin is currently reachable.  Toggled by the
        #: fault injector; an outage means proxies can neither fetch
        #: from nor be pushed to by the publisher (the authoritative
        #: copy itself survives — new versions accumulate and flow once
        #: the origin is reachable again).
        self.up = True
        #: Accumulated unreachable time (seconds) over completed outages.
        self.outage_seconds = 0.0
        self._down_since: Optional[float] = None
        # Outbound traffic, bucketed by hour.
        self.push_pages_by_hour: Dict[int, int] = {}
        self.push_bytes_by_hour: Dict[int, int] = {}
        self.fetch_pages_by_hour: Dict[int, int] = {}
        self.fetch_bytes_by_hour: Dict[int, int] = {}
        #: Staleness-repair traffic (access-time validation caught a
        #: missed push) — kept apart from demand fetches so the repair
        #: cost of an unreliable push path is visible on its own.
        self.repair_pages_by_hour: Dict[int, int] = {}
        self.repair_bytes_by_hour: Dict[int, int] = {}
        #: Per-page publication instants, indexed by version — the data
        #: behind staleness-age measurements ("how old was the copy a
        #: proxy served or repaired?").
        self._publish_times: Dict[int, List[float]] = {}

    def page_size(self, page_id: int) -> int:
        return self._sizes[page_id]

    def publish(self, page_id: int, version: int, at: float = 0.0) -> None:
        """Record that ``version`` of ``page_id`` is now current."""
        previous = self._versions.get(page_id, -1)
        if version != previous + 1:
            raise ValueError(
                f"out-of-order publish for page {page_id}: "
                f"got version {version} after {previous}"
            )
        self._versions[page_id] = version
        self._publish_times.setdefault(page_id, []).append(at)

    def staleness_age(self, page_id: int, cached_version: int, now: float) -> float:
        """Seconds since a copy at ``cached_version`` first went stale.

        The copy went stale the instant version ``cached_version + 1``
        was published; returns 0.0 when the copy is in fact current.
        """
        times = self._publish_times.get(page_id, [])
        next_version = cached_version + 1
        if next_version >= len(times):
            return 0.0
        return max(0.0, now - times[next_version])

    def current_version(self, page_id: int) -> Optional[int]:
        """Latest version of ``page_id``, or None if never published."""
        return self._versions.get(page_id)

    # -- fault model -------------------------------------------------------

    def go_dark(self, now: float) -> None:
        """The origin becomes unreachable."""
        if not self.up:
            raise RuntimeError("publisher is already down")
        self.up = False
        self._down_since = now
        logger.debug("publisher outage begins at t=%.1f", now)

    def come_back(self, now: float) -> None:
        """The origin is reachable again."""
        if self.up:
            raise RuntimeError("publisher is already up")
        self.up = True
        if self._down_since is not None:
            self.outage_seconds += now - self._down_since
            self._down_since = None
        logger.debug("publisher reachable again at t=%.1f", now)

    # -- traffic accounting ------------------------------------------------

    def record_push_transfer(self, page_id: int, at: float) -> None:
        """One page pushed (content actually transferred) at time ``at``."""
        hour = int(at // 3600.0)
        size = self._sizes[page_id]
        self.push_pages_by_hour[hour] = self.push_pages_by_hour.get(hour, 0) + 1
        self.push_bytes_by_hour[hour] = self.push_bytes_by_hour.get(hour, 0) + size

    def record_fetch(self, page_id: int, at: float) -> None:
        """One demand fetch served (cache miss at some proxy)."""
        hour = int(at // 3600.0)
        size = self._sizes[page_id]
        self.fetch_pages_by_hour[hour] = self.fetch_pages_by_hour.get(hour, 0) + 1
        self.fetch_bytes_by_hour[hour] = self.fetch_bytes_by_hour.get(hour, 0) + size

    def record_repair(self, page_id: int, at: float) -> None:
        """One staleness-repair fetch served (missed push healed)."""
        hour = int(at // 3600.0)
        size = self._sizes[page_id]
        self.repair_pages_by_hour[hour] = self.repair_pages_by_hour.get(hour, 0) + 1
        self.repair_bytes_by_hour[hour] = (
            self.repair_bytes_by_hour.get(hour, 0) + size
        )

    @property
    def total_push_pages(self) -> int:
        return sum(self.push_pages_by_hour.values())

    @property
    def total_fetch_pages(self) -> int:
        return sum(self.fetch_pages_by_hour.values())

    @property
    def total_push_bytes(self) -> int:
        return sum(self.push_bytes_by_hour.values())

    @property
    def total_fetch_bytes(self) -> int:
        return sum(self.fetch_bytes_by_hour.values())

    @property
    def total_repair_pages(self) -> int:
        return sum(self.repair_pages_by_hour.values())

    @property
    def total_repair_bytes(self) -> int:
        return sum(self.repair_bytes_by_hour.values())
