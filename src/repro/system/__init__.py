"""The content distribution simulator (Fig. 2 of the paper).

One publisher feeds a publishing stream into the matching engine; each
of the proxy servers runs a placing module and a caching module over
its limited storage; end users issue the request stream against their
local proxy.  The simulator replays a generated
:class:`~repro.workload.trace.Workload` through the
:mod:`repro.sim` discrete-event engine and collects the paper's
metrics: the global hit ratio H (eq. 8), hourly hit ratios (Fig. 6)
and publisher-proxy traffic under both pushing schemes (Fig. 7).
"""

from repro.system.config import SimulationConfig, PushingScheme
from repro.system.publisher import Publisher
from repro.system.proxy import ProxyServer
from repro.system.metrics import SimulationResult, HourlySeries
from repro.system.simulator import Simulation, run_simulation
from repro.system.cooperation import (
    CooperativeSimulation,
    run_cooperative_simulation,
)

__all__ = [
    "SimulationConfig",
    "PushingScheme",
    "Publisher",
    "ProxyServer",
    "SimulationResult",
    "HourlySeries",
    "Simulation",
    "run_simulation",
    "CooperativeSimulation",
    "run_cooperative_simulation",
]
