"""End-to-end integration tests across all subsystems.

These tests exercise the whole pipeline — workload generation,
subscription tables, topology, simulation — and check the paper's
headline qualitative claims at a reduced scale.
"""

import pytest

from repro.experiments.runner import run_cell
from repro.experiments.spec import CellKey
from repro.pubsub.broker import Broker
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import Subscription, topic_is
from repro.sim.rng import RandomStreams
from repro.system.config import PushingScheme, SimulationConfig
from repro.system.simulator import run_simulation
from repro.workload import generate_workload, news_config
from repro.workload.presets import make_trace

SCALE = 0.1
SEED = 7


@pytest.fixture(scope="module")
def news():
    return make_trace("news", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def results(news):
    out = {}
    for strategy in ["gdstar", "sub", "sg1", "sg2", "sr", "dm", "dc-fp", "dc-lap"]:
        out[strategy] = run_simulation(
            news, SimulationConfig(strategy=strategy, capacity_fraction=0.05)
        )
    return out


def test_all_strategies_complete(results, news):
    for result in results.values():
        assert result.requests == news.request_count


def test_claim_combined_schemes_beat_baseline(results):
    """Headline claim: push+access schemes beat access-only GD*."""
    baseline = results["gdstar"].hit_ratio
    for strategy in ["sg1", "sg2", "sr", "dm"]:
        assert results[strategy].hit_ratio > baseline, strategy


def test_claim_sg2_and_sr_are_top_performers(results):
    """§5.3: SG2 and SR provide the highest hit ratios."""
    ranked = sorted(results, key=lambda s: -results[s].hit_ratio)
    assert set(ranked[:3]) >= {"sg2", "sr"}


def test_claim_sg1_below_sg2(results):
    """§5.3: the s+a blend is worse than the s−a remaining-demand."""
    assert results["sg1"].hit_ratio < results["sg2"].hit_ratio


def test_claim_sub_decays_over_time(results):
    """§5.5 / Fig. 6: SUB's hit ratio drops with time."""
    hourly = results["sub"].hourly_hit_ratio()
    first_day = sum(hourly[0:24]) / 24
    last_day = sum(hourly[144:168]) / 24
    assert last_day < first_day


def test_claim_gdstar_traffic_is_lowest(results):
    """Pushing adds traffic; GD* pays only for misses."""
    for strategy, result in results.items():
        if strategy == "gdstar":
            continue
        assert result.traffic_pages >= results["gdstar"].traffic_pages * 0.9


def test_claim_alternative_gains_exceed_news():
    """Table 2: α = 1.0 benefits more from pushing than α = 1.5."""
    gains = {}
    for trace in ["news", "alternative"]:
        gd = run_cell(CellKey(trace, "gdstar", 0.05), scale=SCALE, seed=SEED)
        sg2 = run_cell(CellKey(trace, "sg2", 0.05), scale=SCALE, seed=SEED)
        gains[trace] = sg2.hit_ratio / gd.hit_ratio - 1.0
    assert gains["alternative"] > gains["news"]


def test_claim_hit_ratio_grows_with_capacity(news):
    ratios = []
    for capacity in [0.01, 0.05, 0.10]:
        result = run_simulation(
            news, SimulationConfig(strategy="sg2", capacity_fraction=capacity)
        )
        ratios.append(result.hit_ratio)
    assert ratios[0] < ratios[1] <= ratios[2] + 0.02


def test_claim_sq_degrades_subscription_schemes(news):
    """Fig. 5: lower subscription quality hurts SR the most; GD* not at all."""
    def run(strategy, sq):
        return run_simulation(
            news,
            SimulationConfig(
                strategy=strategy, capacity_fraction=0.05, subscription_quality=sq
            ),
        ).hit_ratio

    assert run("gdstar", 0.25) == pytest.approx(run("gdstar", 1.0))
    assert run("sr", 0.25) < run("sr", 1.0)


def test_pushing_when_necessary_reduces_always_traffic(news):
    always = run_simulation(
        news,
        SimulationConfig(
            strategy="sub", capacity_fraction=0.05, pushing=PushingScheme.ALWAYS
        ),
    )
    necessary = run_simulation(
        news,
        SimulationConfig(
            strategy="sub",
            capacity_fraction=0.05,
            pushing=PushingScheme.WHEN_NECESSARY,
        ),
    )
    assert necessary.push_transfers < always.push_transfers
    assert necessary.hit_ratio == always.hit_ratio


def test_traffic_ledger_consistency(results):
    """Publisher-side and proxy-side accounting must agree."""
    for result in results.values():
        proxy_fetches = sum(stats.pages_fetched for stats in result.per_proxy)
        assert proxy_fetches == result.fetch_pages


def test_full_stack_with_real_matching_engine():
    """Drive the simulator's policies from a real Broker population
    instead of the eq. 7 table."""
    from repro.core import make_policy

    broker = Broker()
    # 3 proxies, users subscribing to two topics
    for proxy_id in range(3):
        for user in range(proxy_id + 1):
            broker.subscribe(
                Subscription(
                    subscriber_id=user,
                    proxy_id=proxy_id,
                    predicates=(topic_is("sports"),),
                )
            )
    policies = [make_policy("sg2", 10_000, cost=2.0) for _ in range(3)]
    page = Page(page_id=1, size=500, topic="sports")
    version = broker.publish(page, at=0.0)
    for proxy_id, count in broker.matching.match_counts(page).items():
        outcome = policies[proxy_id].on_publish(
            page.page_id, version.version, page.size, count, 0.0
        )
        assert outcome.stored
    # Every proxy with a subscription now serves the page locally.
    for proxy_id in range(3):
        outcome = policies[proxy_id].on_request(1, 0, 500, proxy_id + 1, 1.0)
        assert outcome.hit


def test_workload_reuse_across_sq_levels(news):
    """One trace, several subscription tables — the Fig. 5 pattern."""
    from repro.pubsub.matching import TraceMatchCounts
    from repro.workload.subscriptions import build_match_counts

    for sq in (0.25, 1.0):
        table = TraceMatchCounts(
            build_match_counts(
                news.request_pairs(), sq, RandomStreams(1).stream("subs")
            )
        )
        result = run_simulation(
            news,
            SimulationConfig(strategy="sg2", capacity_fraction=0.05),
            match_table=table,
        )
        assert result.requests == news.request_count
