"""Tests for fault-schedule generation from named RNG streams."""

from repro.faults.generator import generate_fault_schedule
from repro.faults.spec import ChaosSpec
from repro.sim.rng import RandomStreams

HORIZON = 7 * 24 * 3600.0


def _schedule(spec, seed=7, servers=20):
    return generate_fault_schedule(
        spec, RandomStreams(seed), horizon=HORIZON, server_count=servers
    )


def test_zero_rates_yield_empty_schedule():
    assert _schedule(ChaosSpec()).empty


def test_same_seed_same_schedule():
    spec = ChaosSpec(
        proxy_mtbf=86_400.0,
        publisher_mtbf=172_800.0,
        degraded_mtbf=86_400.0,
    )
    first = _schedule(spec, seed=11)
    second = _schedule(spec, seed=11)
    assert first.crash_windows() == second.crash_windows()
    assert first.outage_windows() == second.outage_windows()


def test_different_seeds_differ():
    spec = ChaosSpec(proxy_mtbf=86_400.0)
    assert _schedule(spec, seed=1).crash_windows() != _schedule(
        spec, seed=2
    ).crash_windows()


def test_windows_clipped_to_horizon():
    spec = ChaosSpec(
        proxy_mtbf=20_000.0,
        proxy_mttr=10_000.0,
        publisher_mtbf=40_000.0,
        publisher_mttr=10_000.0,
    )
    schedule = _schedule(spec)
    for _server, window in schedule.crash_windows():
        assert 0.0 <= window.start < window.end <= HORIZON
    for window in schedule.outage_windows():
        assert 0.0 <= window.start < window.end <= HORIZON


def test_crash_fraction_zero_means_no_crashes():
    spec = ChaosSpec(proxy_mtbf=10_000.0, crash_fraction=0.0)
    assert _schedule(spec).crash_count == 0


def test_fault_kinds_draw_from_independent_streams():
    """Enabling publisher outages must not move the proxy crashes."""
    crashes_only = _schedule(ChaosSpec(proxy_mtbf=86_400.0))
    both = _schedule(
        ChaosSpec(proxy_mtbf=86_400.0, publisher_mtbf=172_800.0)
    )
    assert crashes_only.crash_windows() == both.crash_windows()


def test_degraded_windows_carry_spec_parameters():
    spec = ChaosSpec(
        degraded_mtbf=43_200.0,
        degraded_latency_multiplier=5.0,
        degraded_loss_probability=0.25,
    )
    schedule = _schedule(spec)
    found = 0
    for server in range(20):
        for hour in range(0, int(HORIZON), 3600):
            window = schedule.degradation(server, float(hour))
            if window is not None:
                assert window.latency_multiplier == 5.0
                assert window.loss_probability == 0.25
                found += 1
    assert found > 0


def test_broker_windows_generated_per_shard():
    spec = ChaosSpec(broker_mtbf=43_200.0, broker_mttr=1_800.0, broker_count=3)
    schedule = _schedule(spec)
    assert schedule.has_broker_faults
    assert schedule.broker_crash_count > 0
    shards = {broker for broker, _ in schedule.broker_crash_windows()}
    assert shards <= set(range(3))
    for _, window in schedule.broker_crash_windows():
        assert 0.0 <= window.start < window.end <= HORIZON


def test_broker_stream_is_independent():
    """Enabling broker crashes must not move any other fault kind."""
    others = ChaosSpec(
        proxy_mtbf=86_400.0,
        publisher_mtbf=172_800.0,
        degraded_mtbf=86_400.0,
    )
    without = _schedule(others)
    with_brokers = _schedule(
        ChaosSpec(
            proxy_mtbf=86_400.0,
            publisher_mtbf=172_800.0,
            degraded_mtbf=86_400.0,
            broker_mtbf=43_200.0,
        )
    )
    assert without.crash_windows() == with_brokers.crash_windows()
    assert without.outage_windows() == with_brokers.outage_windows()
    assert not without.has_broker_faults
    assert with_brokers.has_broker_faults


def test_broker_mtbf_zero_means_no_broker_windows():
    spec = ChaosSpec(proxy_mtbf=86_400.0, broker_count=4)
    assert not _schedule(spec).has_broker_faults
