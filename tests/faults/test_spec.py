"""ChaosSpec validation and fault-activation predicates."""

import dataclasses

import pytest

from repro.faults.spec import ChaosSpec


def test_defaults_inject_nothing():
    spec = ChaosSpec()
    assert not spec.injects_faults
    assert not spec.delivery_faulty


@pytest.mark.parametrize(
    "knobs",
    [
        {"delivery_loss_probability": 0.1},
        {"delivery_duplicate_probability": 0.1},
        {"delivery_reorder_delay": 5.0},
        {"broker_mtbf": 86_400.0},
    ],
)
def test_any_delivery_fault_knob_activates_the_layer(knobs):
    spec = ChaosSpec(**knobs)
    assert spec.delivery_faulty
    assert spec.injects_faults


def test_protocol_knobs_alone_do_not_activate():
    """Retry budget, timeouts and repair are protocol tuning, not
    faults: without a fault rate they must keep the spec inert."""
    spec = ChaosSpec(
        delivery_retry_limit=9,
        delivery_ack_timeout=0.25,
        delivery_backoff_cap=5.0,
        delivery_queue_limit=2,
        delivery_repair=False,
        broker_count=4,
    )
    assert not spec.delivery_faulty
    assert not spec.injects_faults


@pytest.mark.parametrize(
    "knobs, match",
    [
        ({"delivery_loss_probability": 1.0}, "delivery_loss_probability"),
        ({"delivery_loss_probability": -0.1}, "delivery_loss_probability"),
        ({"delivery_duplicate_probability": 1.5}, "delivery_duplicate_probability"),
        ({"delivery_reorder_delay": -1.0}, "delivery_reorder_delay"),
        ({"broker_mtbf": -10.0}, "broker_mtbf"),
        ({"broker_mttr": -1.0}, "broker_mttr"),
        ({"broker_count": 0}, "broker_count"),
        ({"delivery_retry_limit": -1}, "delivery_retry_limit"),
        ({"delivery_queue_limit": -1}, "delivery_queue_limit"),
        ({"delivery_ack_timeout": -0.5}, "delivery_ack_timeout"),
        ({"delivery_backoff_cap": -1.0}, "delivery_backoff_cap"),
    ],
)
def test_delivery_knob_validation(knobs, match):
    with pytest.raises(ValueError, match=match):
        ChaosSpec(**knobs)


def test_spec_replace_keeps_validation():
    spec = ChaosSpec(delivery_loss_probability=0.2)
    with pytest.raises(ValueError):
        dataclasses.replace(spec, delivery_retry_limit=-2)
