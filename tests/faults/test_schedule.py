"""Tests for fault windows, timelines and schedule queries."""

import pytest

from repro.faults.schedule import (
    EMPTY_SCHEDULE,
    DegradedWindow,
    FaultSchedule,
    Window,
)


def test_window_is_half_open():
    window = Window(start=10.0, end=20.0)
    assert not window.covers(9.999)
    assert window.covers(10.0)
    assert window.covers(19.999)
    assert not window.covers(20.0)
    assert window.duration == 10.0


def test_window_rejects_empty_and_negative():
    with pytest.raises(ValueError):
        Window(start=5.0, end=5.0)
    with pytest.raises(ValueError):
        Window(start=5.0, end=4.0)
    with pytest.raises(ValueError):
        Window(start=-1.0, end=4.0)


def test_degraded_window_validation():
    with pytest.raises(ValueError):
        DegradedWindow(start=0.0, end=1.0, latency_multiplier=0.5)
    with pytest.raises(ValueError):
        DegradedWindow(start=0.0, end=1.0, loss_probability=1.0)


def test_overlapping_windows_rejected():
    with pytest.raises(ValueError, match="overlapping"):
        FaultSchedule(
            proxy_crashes={0: [Window(0.0, 10.0), Window(5.0, 15.0)]}
        )


def test_proxy_down_lookup():
    schedule = FaultSchedule(
        proxy_crashes={3: [Window(100.0, 200.0), Window(500.0, 600.0)]}
    )
    assert not schedule.proxy_down(3, 99.0)
    assert schedule.proxy_down(3, 100.0)
    assert schedule.proxy_down(3, 199.0)
    assert not schedule.proxy_down(3, 200.0)
    assert schedule.proxy_down(3, 550.0)
    # Other proxies are never down.
    assert not schedule.proxy_down(0, 150.0)


def test_publisher_queries():
    schedule = FaultSchedule(publisher_outages=[Window(50.0, 80.0)])
    assert not schedule.publisher_down(49.0)
    assert schedule.publisher_down(60.0)
    assert schedule.publisher_back_at(60.0) == 80.0
    assert schedule.publisher_back_at(10.0) == 10.0
    assert schedule.publisher_outage_seconds == 30.0


def test_degradation_lookup():
    window = DegradedWindow(
        start=0.0, end=100.0, latency_multiplier=3.0, loss_probability=0.1
    )
    schedule = FaultSchedule(degraded_links={2: [window]})
    found = schedule.degradation(2, 50.0)
    assert found is window
    assert schedule.degradation(2, 100.0) is None
    assert schedule.degradation(1, 50.0) is None


def test_crash_windows_ordered_by_server_then_time():
    schedule = FaultSchedule(
        proxy_crashes={
            4: [Window(300.0, 310.0), Window(10.0, 20.0)],
            1: [Window(50.0, 60.0)],
        }
    )
    pairs = schedule.crash_windows()
    assert [(server, window.start) for server, window in pairs] == [
        (1, 50.0),
        (4, 10.0),
        (4, 300.0),
    ]
    assert schedule.crash_count == 3
    assert schedule.proxy_downtime_seconds == pytest.approx(30.0)


def test_empty_schedule():
    assert EMPTY_SCHEDULE.empty
    assert not EMPTY_SCHEDULE.proxy_down(0, 0.0)
    assert not EMPTY_SCHEDULE.publisher_down(0.0)
    assert EMPTY_SCHEDULE.degradation(0, 0.0) is None
    assert not FaultSchedule(proxy_crashes={0: [Window(0.0, 1.0)]}).empty


def test_broker_queries():
    schedule = FaultSchedule(
        broker_crashes={
            1: [Window(start=10.0, end=20.0)],
            0: [Window(start=50.0, end=60.0), Window(start=5.0, end=8.0)],
        }
    )
    assert schedule.has_broker_faults
    assert not schedule.empty
    assert schedule.broker_down(0, 6.0)
    assert not schedule.broker_down(0, 8.0)  # half-open
    assert schedule.broker_down(1, 10.0)
    assert not schedule.broker_down(2, 10.0)  # unknown shard: healthy
    assert schedule.broker_crash_count == 3
    assert schedule.broker_downtime_seconds == pytest.approx(23.0)
    # Pairs ordered by broker then time, regardless of insertion order.
    assert schedule.broker_crash_windows() == [
        (0, Window(start=5.0, end=8.0)),
        (0, Window(start=50.0, end=60.0)),
        (1, Window(start=10.0, end=20.0)),
    ]


def test_broker_only_schedule_is_not_empty():
    schedule = FaultSchedule(broker_crashes={0: [Window(start=1.0, end=2.0)]})
    assert not schedule.empty
    assert EMPTY_SCHEDULE.broker_crash_count == 0
    assert not EMPTY_SCHEDULE.has_broker_faults
