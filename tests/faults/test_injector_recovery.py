"""Tests for the injector's DES scripts and the recovery tracker."""

from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryTracker
from repro.faults.schedule import FaultSchedule, Window
from repro.sim.engine import Environment


class _RecordingTarget:
    """Captures every hook call with its virtual timestamp."""

    def __init__(self):
        self.events = []

    def on_proxy_crash(self, server_id, now):
        self.events.append(("crash", server_id, now))

    def on_proxy_recover(self, server_id, now):
        self.events.append(("recover", server_id, now))

    def on_publisher_outage(self, now):
        self.events.append(("outage", None, now))

    def on_publisher_recover(self, now):
        self.events.append(("back", None, now))


def test_injector_fires_hooks_at_window_edges():
    schedule = FaultSchedule(
        proxy_crashes={
            0: [Window(10.0, 20.0)],
            2: [Window(15.0, 25.0), Window(40.0, 45.0)],
        },
        publisher_outages=[Window(12.0, 18.0)],
    )
    env = Environment()
    target = _RecordingTarget()
    processes = FaultInjector(schedule).install(env, target)
    assert len(processes) == 3  # two faulty proxies + the publisher
    env.run()
    assert sorted(target.events, key=lambda event: (event[2], str(event[0]))) == [
        ("crash", 0, 10.0),
        ("outage", None, 12.0),
        ("crash", 2, 15.0),
        ("back", None, 18.0),
        ("recover", 0, 20.0),
        ("recover", 2, 25.0),
        ("crash", 2, 40.0),
        ("recover", 2, 45.0),
    ]


def test_injector_with_empty_schedule_installs_nothing():
    env = Environment()
    assert FaultInjector(FaultSchedule()).install(env, _RecordingTarget()) == []


def test_tracker_records_time_to_warm():
    tracker = RecoveryTracker(
        warm_request_window=4, warm_threshold=0.5, bin_seconds=10.0, bin_count=3
    )
    tracker.on_crash(0, now=100.0, pre_hit_ratio=0.8)
    tracker.on_recover(0, now=110.0)
    # Rolling window of 4: hits [F, F, T, T] -> ratio 0.5 >= 0.5*0.8.
    tracker.on_request(0, hit=False, now=112.0)
    tracker.on_request(0, hit=False, now=115.0)
    tracker.on_request(0, hit=True, now=123.0)
    tracker.on_request(0, hit=True, now=128.0)
    report = tracker.report()
    assert report.time_to_warm == [18.0]
    assert report.unwarmed == 0
    # First bin [0,10): two requests, zero hits; second bin: two hits.
    assert report.curve_requests == [2, 2, 0]
    assert report.curve_hits == [0, 2, 0]


def test_tracker_counts_unwarmed_recoveries():
    tracker = RecoveryTracker(warm_request_window=10, warm_threshold=0.9)
    tracker.on_crash(1, now=0.0, pre_hit_ratio=0.9)
    tracker.on_recover(1, now=50.0)
    tracker.on_request(1, hit=False, now=60.0)
    # Crashes again before ever re-warming, then never recovers.
    tracker.on_crash(1, now=70.0, pre_hit_ratio=0.1)
    assert tracker.report().unwarmed == 1


def test_tracker_still_warming_at_end_counts_as_unwarmed():
    tracker = RecoveryTracker(warm_request_window=5)
    tracker.on_crash(0, now=0.0, pre_hit_ratio=0.5)
    tracker.on_recover(0, now=10.0)
    tracker.on_request(0, hit=True, now=11.0)
    assert tracker.report().unwarmed == 1


def test_tracker_ignores_requests_at_healthy_proxies():
    tracker = RecoveryTracker()
    tracker.on_request(7, hit=True, now=5.0)
    report = tracker.report()
    assert sum(report.curve_requests) == 0
    assert report.unwarmed == 0
