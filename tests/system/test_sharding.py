"""Tests for the sharded multi-process simulation.

The invariant: a sharded run is bit-identical to ``workers=1`` in
every :class:`SimulationResult` field except ``wall_seconds`` and
``profile`` — for every strategy, both pushing schemes, streaming and
materialized traces, and the cooperative extension when its peer graph
partitions.
"""

import dataclasses

import pytest

from repro.faults.spec import ChaosSpec, OverloadSpec
from repro.obs.recorder import Observer
from repro.system.config import PushingScheme, SimulationConfig
from repro.system.cooperation import CooperativeSimulation
from repro.system.sharding import (
    ShardingError,
    _pack_units,
    merge_shard_results,
    plan_shards,
    run_sharded,
    shard_eligibility,
)
from repro.system.simulator import Simulation
from repro.workload.presets import make_trace
from repro.workload.streaming import make_streaming_trace


def _strip(result) -> dict:
    payload = dataclasses.asdict(result)
    payload.pop("wall_seconds")
    payload.pop("profile")
    return payload


@pytest.fixture(scope="module")
def trace():
    return make_trace("news", scale=0.04, seed=9)


@pytest.mark.parametrize("strategy", ["gdstar", "sub", "sg2"])
@pytest.mark.parametrize(
    "pushing", [PushingScheme.ALWAYS, PushingScheme.WHEN_NECESSARY]
)
def test_sharded_equals_single(trace, strategy, pushing):
    config = SimulationConfig(strategy=strategy, pushing=pushing, seed=9)
    single = _strip(Simulation(trace, config).run())
    for workers in (2, 4):
        sharded = run_sharded(
            trace, dataclasses.replace(config, workers=workers)
        )
        assert _strip(sharded) == single


def test_sharded_streaming_equals_single(trace):
    config = SimulationConfig(seed=9)
    single = _strip(Simulation(trace, config).run())
    streaming = make_streaming_trace("news", scale=0.04, seed=9)
    try:
        sharded = run_sharded(
            streaming, dataclasses.replace(config, workers=2)
        )
        assert _strip(sharded) == single
    finally:
        streaming.close()


def test_cooperative_sharded_equals_single(trace):
    config = SimulationConfig(seed=9)
    single = _strip(
        CooperativeSimulation(trace, config, neighbor_count=3).run()
    )
    sharded = run_sharded(
        trace,
        dataclasses.replace(config, workers=2),
        neighbor_count=3,
        strict=True,
    )
    assert _strip(sharded) == single


def test_workers_one_is_the_plain_simulation(trace):
    config = SimulationConfig(seed=9)
    assert _strip(run_sharded(trace, config)) == _strip(
        Simulation(trace, config).run()
    )


# -- decline rules -----------------------------------------------------------


def test_eligibility_declines_cross_shard_state(trace):
    assert shard_eligibility(trace, SimulationConfig(seed=9)) is None
    assert "fault" in shard_eligibility(
        trace, SimulationConfig(seed=9, chaos=ChaosSpec())
    )
    assert "overload" in shard_eligibility(
        trace, SimulationConfig(seed=9, overload=OverloadSpec(service_rate=5.0))
    )
    assert "observer" in shard_eligibility(
        trace, SimulationConfig(seed=9), Observer()
    )


def test_chaos_config_falls_back_to_single_process(trace):
    config = SimulationConfig(
        seed=9, workers=2, chaos=ChaosSpec(proxy_mtbf=4 * 3600.0)
    )
    single = Simulation(trace, dataclasses.replace(config, workers=1)).run()
    sharded = run_sharded(trace, config)
    assert _strip(sharded) == _strip(single)


def _clique_topology(server_count):
    """All proxies one hop apart and two hops from the publisher.

    Every proxy is then a usable peer of every other (peer distance 1
    beats origin cost 2), chaining the fleet into one component that
    cannot split across shards.
    """
    from repro.network.graph import Graph
    from repro.network.topology import Topology

    graph = Graph()
    hub = 1
    graph.add_edge(0, hub)
    proxies = list(range(2, 2 + server_count))
    for node in proxies:
        graph.add_edge(hub, node)
        for other in proxies:
            if other > node:
                graph.add_edge(node, other)
    return Topology(graph, publisher_node=0, proxy_nodes=proxies)


def test_unpartitionable_cooperation_declines(trace):
    # One peer component: strict mode raises, lax mode falls back and
    # still matches the single-process cooperative run.
    config = SimulationConfig(seed=9, workers=2)
    topology = _clique_topology(trace.config.server_count)
    with pytest.raises(ShardingError):
        run_sharded(
            trace, config, topology=topology, neighbor_count=3, strict=True
        )
    single = CooperativeSimulation(
        trace,
        dataclasses.replace(config, workers=1),
        topology=topology,
        neighbor_count=3,
    ).run()
    sharded = run_sharded(trace, config, topology=topology, neighbor_count=3)
    assert _strip(sharded) == _strip(single)


# -- planning and merging units ----------------------------------------------


def test_pack_units_balances_and_is_deterministic():
    units = [[0], [1], [2], [3]]
    weights = [10, 1, 9, 2]
    shards = _pack_units(units, weights, 2)
    # LPT: 0(10)->bin0, 2(9)->bin1, 3(2)->bin1, 1(1)->bin0 - loads 11/11.
    assert shards == [[0, 1], [2, 3]]
    assert _pack_units(units, weights, 2) == shards


def test_plan_shards_never_exceeds_servers(trace):
    shards = plan_shards(trace, SimulationConfig(seed=9), workers=1000)
    assert len(shards) <= trace.config.server_count
    flat = sorted(server for shard in shards for server in shard)
    assert flat == list(range(trace.config.server_count))


def test_merge_rejects_mismatched_metadata(trace):
    config = SimulationConfig(seed=9)
    result = Simulation(trace, config).run()
    other = dataclasses.replace(result, strategy="sub")
    with pytest.raises(ValueError, match="disagree"):
        merge_shard_results(
            [result, other], [[0], [1]], trace.config.server_count, 0.0
        )
