"""Tests for Publisher and ProxyServer."""

import pytest

from repro.core.gdstar import GDStarPolicy
from repro.sim.rng import RandomStreams
from repro.system.proxy import ProxyServer
from repro.system.publisher import Publisher
from repro.workload import generate_workload, news_config


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.02), RandomStreams(1), label="news")


def test_publisher_tracks_versions(workload):
    publisher = Publisher(workload)
    page_id = workload.pages[0].page_id
    assert publisher.current_version(page_id) is None
    publisher.publish(page_id, 0)
    assert publisher.current_version(page_id) == 0
    publisher.publish(page_id, 1)
    assert publisher.current_version(page_id) == 1


def test_publisher_rejects_out_of_order_versions(workload):
    publisher = Publisher(workload)
    page_id = workload.pages[0].page_id
    with pytest.raises(ValueError):
        publisher.publish(page_id, 1)  # version 0 never published
    publisher.publish(page_id, 0)
    with pytest.raises(ValueError):
        publisher.publish(page_id, 0)  # replay


def test_publisher_page_size(workload):
    publisher = Publisher(workload)
    page = workload.pages[3]
    assert publisher.page_size(page.page_id) == page.size


def test_publisher_traffic_bucketing(workload):
    publisher = Publisher(workload)
    page = workload.pages[0]
    publisher.record_push_transfer(page.page_id, at=10.0)
    publisher.record_push_transfer(page.page_id, at=3_700.0)
    publisher.record_fetch(page.page_id, at=3_800.0)
    assert publisher.push_pages_by_hour == {0: 1, 1: 1}
    assert publisher.fetch_pages_by_hour == {1: 1}
    assert publisher.total_push_pages == 2
    assert publisher.total_fetch_pages == 1
    assert publisher.total_push_bytes == 2 * page.size
    assert publisher.total_fetch_bytes == page.size


def test_proxy_delegates_to_policy():
    proxy = ProxyServer(3, GDStarPolicy(1000, cost=2.0))
    push = proxy.handle_publish(1, 0, 100, 5, now=0.0)
    assert not push.stored  # GD* ignores pushes
    miss = proxy.handle_request(1, 0, 100, 5, now=1.0)
    assert not miss.hit
    hit = proxy.handle_request(1, 0, 100, 5, now=2.0)
    assert hit.hit
    assert proxy.stats.requests == 2
    proxy.check_invariants()
    assert proxy.server_id == 3
