"""Tests for the overload & backpressure layer.

Covers the acceptance criteria of the overload PR: the disabled layer
is bit-identical (across every replay engine, with chaos + delivery +
churn active), the primitives behave deterministically (service queue,
token bucket, circuit breaker, retry budget), queue rejections and
lifecycle shedding never double-count a request, rejection percentage
is monotone in offered load, and a forced-open breaker keeps total
origin retries within the configured retry budget.
"""

import dataclasses

import pytest

from repro.faults import OVERLOAD_STREAM
from repro.faults.generator import derive_overload_rng
from repro.faults.schedule import FaultSchedule, Window
from repro.faults.spec import ChaosSpec, OverloadSpec
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.cooperation import run_cooperative_simulation
from repro.system.overload import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    OverloadManager,
    RetryBudget,
    ServiceQueue,
    TokenBucket,
)
from repro.system.simulator import Simulation, run_simulation
from repro.workload import generate_workload, news_config
from repro.workload.churn import ChurnSpec

#: Chaos weather used by the bit-identity runs (crashes, outages and
#: delivery loss all active so every optional layer is exercised).
CHAOS = ChaosSpec(
    proxy_mtbf=86_400.0,
    proxy_mttr=3_600.0,
    crash_fraction=0.5,
    publisher_mtbf=172_800.0,
    publisher_mttr=1_800.0,
    delivery_loss_probability=0.05,
)

#: A spec that makes every overload mechanism bite on the test trace.
HARSH = OverloadSpec(
    service_rate=0.005,
    queue_capacity=3,
    origin_capacity=0.002,
    origin_burst=2,
    breaker_threshold=4,
    breaker_cooldown=600.0,
    retry_budget=40,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.03), RandomStreams(2), label="news")


@pytest.fixture(scope="module")
def churny(workload):
    spec = ChurnSpec(
        churn_rate=2.0,
        lease_duration=4 * 3600.0,
        renew_probability=0.6,
        confirmation_loss_probability=0.2,
        queue_limit=2,
    )
    return workload.with_churn(spec, RandomStreams(7).stream("workload.churn"))


def _comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("wall_seconds")
    payload.pop("profile", None)
    return payload


# -- spec validation ---------------------------------------------------------


def test_spec_rejects_bad_values():
    with pytest.raises(ValueError, match="service_rate"):
        OverloadSpec(service_rate=-1.0)
    with pytest.raises(ValueError, match="queue_capacity"):
        OverloadSpec(queue_capacity=0)
    with pytest.raises(ValueError, match="push_shed_fraction"):
        OverloadSpec(push_shed_fraction=1.5)
    with pytest.raises(ValueError, match="origin_capacity"):
        OverloadSpec(origin_capacity=-0.1)
    with pytest.raises(ValueError, match="breaker_threshold"):
        OverloadSpec(breaker_threshold=0)
    with pytest.raises(ValueError, match="breaker_jitter"):
        OverloadSpec(breaker_jitter=1.0)
    with pytest.raises(ValueError, match="retry_budget"):
        OverloadSpec(retry_budget=-1)
    with pytest.raises(ValueError, match="retry_jitter"):
        OverloadSpec(retry_jitter=-0.5)


def test_spec_enabled_and_rng_flags():
    assert not OverloadSpec().enabled
    assert OverloadSpec(service_rate=1.0).enabled
    assert OverloadSpec(origin_capacity=1.0).enabled
    assert OverloadSpec(retry_budget=5).enabled
    # Deterministic knobs never derive the RNG stream.
    assert not OverloadSpec(service_rate=1.0, retry_budget=5).uses_rng
    assert OverloadSpec(retry_jitter=0.2).uses_rng
    assert OverloadSpec(origin_capacity=1.0, breaker_jitter=0.2).uses_rng
    # Breaker jitter without an origin gate never runs a breaker.
    assert not OverloadSpec(breaker_jitter=0.2).uses_rng
    streams = RandomStreams(3)
    assert derive_overload_rng(None, streams) is None
    assert derive_overload_rng(OverloadSpec(service_rate=1.0), streams) is None
    assert derive_overload_rng(OverloadSpec(retry_jitter=0.2), streams) is not None


# -- primitives --------------------------------------------------------------


def test_service_queue_deterministic_and_bounded():
    queue = ServiceQueue(rate=1.0, capacity=2, push_shed_fraction=1.0)
    assert queue.offer(0.0, push=False)   # finishes at 1.0
    assert queue.offer(0.0, push=False)   # queued, finishes at 2.0
    assert not queue.offer(0.0, push=False)  # occupancy 2 == capacity
    assert queue.rejected_pulls == 1
    # By t=1.0 one job finished; a slot is free again.
    assert queue.offer(1.0, push=False)
    assert queue.arrivals == 4
    assert queue.peak == 2
    # Occupancies sampled at arrivals: 0, 1, 2, 1.
    assert queue.average_queue_size == pytest.approx(1.0)
    assert queue.rejection_fraction == pytest.approx(0.25)


def test_service_queue_sheds_pushes_before_pulls():
    queue = ServiceQueue(rate=1.0, capacity=4, push_shed_fraction=0.5)
    assert queue.push_capacity == 2
    assert queue.offer(0.0, push=True)
    assert queue.offer(0.0, push=True)
    # Occupancy 2: pushes are shed, pulls still fit.
    assert not queue.offer(0.0, push=True)
    assert queue.offer(0.0, push=False)
    assert queue.rejected_pushes == 1
    assert queue.rejected_pulls == 0


def test_token_bucket_refill_and_future_clamp():
    bucket = TokenBucket(rate=1.0, burst=2)
    assert bucket.admit(0.0)
    assert bucket.admit(0.0)
    assert not bucket.admit(0.0)  # burst exhausted
    assert bucket.admit(1.5)      # 1.5 tokens refilled
    # Forward-committed admission: a later call at an *earlier* time
    # must not un-refill (elapsed clamps at zero).
    assert bucket.admit(5.0)
    tokens = bucket.tokens
    bucket.admit(4.0)
    assert bucket.tokens >= tokens - 1.0


def test_circuit_breaker_transitions():
    breaker = CircuitBreaker(threshold=2, cooldown=10.0, probe_successes=2)
    assert breaker.state == CLOSED
    assert breaker.allow(0.0)
    breaker.record_failure(0.0)
    assert breaker.state == CLOSED
    breaker.record_failure(1.0)
    assert breaker.state == OPEN
    assert breaker.open_count == 1
    # Fast-fail while open.
    assert not breaker.allow(5.0)
    assert breaker.fast_failures == 1
    # Cooldown elapsed: half-open, probes admitted.
    assert breaker.allow(11.0)
    assert breaker.state == HALF_OPEN
    assert breaker.open_seconds == pytest.approx(10.0)
    # A probe failure re-opens immediately.
    breaker.record_failure(11.0)
    assert breaker.state == OPEN
    assert breaker.allow(25.0)
    breaker.record_success(25.0)
    assert breaker.state == HALF_OPEN
    breaker.record_success(26.0)
    assert breaker.state == CLOSED
    # Books closed at the horizon: a still-open interval is charged.
    breaker.record_failure(30.0)
    breaker.record_failure(31.0)
    assert breaker.state == OPEN
    breaker.finalize(36.0)
    assert breaker.state == CLOSED
    assert breaker.open_seconds == pytest.approx(10.0 + 10.0 + 5.0)


def test_retry_budget_spend_deny_refill():
    budget = RetryBudget(budget=2)
    assert budget.allow(0.0)
    assert budget.allow(0.0)
    assert not budget.allow(0.0)
    assert budget.spent == 2
    assert budget.denied == 1
    # Fixed budget never refills.
    assert not budget.allow(1e9)
    refilling = RetryBudget(budget=1, rate=0.5)
    assert refilling.allow(0.0)
    assert not refilling.allow(1.0)  # only 0.5 tokens back
    assert refilling.allow(4.0)


def test_manager_unarmed_parts_are_noops():
    manager = OverloadManager(OverloadSpec(service_rate=1.0), range(2))
    assert manager.origin_admit(0.0)
    assert manager.allow_retry(0.0)
    assert manager.jitter_backoff(3.0) == 3.0
    assert not manager.breaker_open()
    gate_only = OverloadManager(
        OverloadSpec(origin_capacity=1.0, origin_burst=1, breaker_threshold=1),
        range(2),
    )
    assert gate_only.admit(0, 0.0, push=False)
    assert gate_only.origin_admit(0.0)
    assert not gate_only.origin_admit(0.0)
    assert gate_only.breaker_open()
    assert gate_only.origin_rejections == 1


# -- bit-identity of the disabled layer --------------------------------------


def test_inert_spec_bit_identical_all_engines(churny):
    """Chaos + delivery + churn with every overload knob off must be
    byte-identical to the pre-layer behaviour, on every replay engine."""
    reference = run_simulation(
        churny, SimulationConfig(strategy="gdstar", chaos=CHAOS)
    )
    baseline = _comparable(reference)
    for engine in ("fast", "hybrid", "agenda"):
        result = run_simulation(
            churny,
            SimulationConfig(
                strategy="gdstar",
                chaos=CHAOS,
                overload=OverloadSpec(),
                replay=engine,
            ),
        )
        assert _comparable(result) == baseline, engine


def test_overload_result_fields_zero_when_disabled(workload):
    result = run_simulation(workload, SimulationConfig(strategy="gdstar"))
    assert result.overload_arrivals == 0
    assert result.overload_pulls_rejected == 0
    assert result.average_queue_size == 0.0
    assert result.rejection_percentage == 0.0
    assert result.breaker_opens == 0
    assert result.retries_denied == 0
    assert result.overload_stale_serves == 0


def test_rng_stream_discipline():
    """The overload stream is derived lazily and independently: pulling
    it never perturbs the draws of any pre-existing named stream."""
    plain = RandomStreams(11)
    baseline = {
        name: plain.stream(name).random(8).tolist()
        for name in ("faults.proxy", "faults.delivery", "workload.churn")
    }
    tapped = RandomStreams(11)
    tapped.stream(OVERLOAD_STREAM).random(64)
    for name, draws in baseline.items():
        assert tapped.stream(name).random(8).tolist() == draws, name


def test_fault_schedule_unchanged_by_overload(workload):
    """Arming overload must not move the materialised fault plan."""
    with_overload = Simulation(
        workload,
        SimulationConfig(strategy="gdstar", chaos=CHAOS, overload=HARSH),
    )
    without = Simulation(
        workload, SimulationConfig(strategy="gdstar", chaos=CHAOS)
    )
    assert with_overload.fault_schedule.crash_windows() == (
        without.fault_schedule.crash_windows()
    )
    assert with_overload.fault_schedule.outage_windows() == (
        without.fault_schedule.outage_windows()
    )


# -- engaged layer behaviour --------------------------------------------------


def test_engines_agree_with_overload_armed(workload):
    """Batched replay falls back to hybrid; results stay identical."""
    config = SimulationConfig(strategy="gdstar", overload=HARSH)
    reference = _comparable(run_simulation(workload, config))
    for engine in ("hybrid", "agenda"):
        result = run_simulation(
            workload, dataclasses.replace(config, replay=engine)
        )
        assert _comparable(result) == reference, engine


def test_armed_run_is_deterministic(workload):
    config = SimulationConfig(strategy="gdstar", overload=HARSH)
    first = run_simulation(workload, config)
    second = run_simulation(workload, config)
    assert first.overload_pulls_rejected > 0
    assert first.breaker_opens > 0
    assert _comparable(first) == _comparable(second)


def test_queue_rejections_never_double_count(workload):
    """Every rejected pull is unserved exactly once: with only the
    service queues armed (no origin gate) the unserved remainder of the
    request denominator equals the rejected-pull count exactly."""
    spec = OverloadSpec(service_rate=0.005, queue_capacity=3)
    result = run_simulation(
        workload, SimulationConfig(strategy="gdstar", overload=spec)
    )
    assert result.requests == workload.request_count
    served_by_proxies = sum(p.requests for p in result.per_proxy)
    unserved = result.requests - served_by_proxies
    assert result.overload_pulls_rejected > 0
    assert unserved == result.overload_pulls_rejected
    # No origin gate: a rejected pull is resolved at the origin, so
    # nothing fails — it is merely degraded.
    assert result.failed_requests == 0
    assert result.degraded_requests == result.overload_pulls_rejected


def test_subscriber_queue_shedding_composes_with_rejection(churny):
    """Lifecycle handshake shedding (SubscriberQueue overflow) and
    proxy-level pull rejection keep separate books: engaging both never
    perturbs the shared request denominator."""
    spec = OverloadSpec(service_rate=0.005, queue_capacity=3)
    result = run_simulation(
        churny, SimulationConfig(strategy="gdstar", overload=spec)
    )
    assert result.requests == churny.request_count
    unserved = result.requests - sum(p.requests for p in result.per_proxy)
    assert unserved == result.overload_pulls_rejected
    # The lifecycle layer's own shedding stayed on its own counters.
    assert result.handshake_losses > 0
    assert result.lifecycle_queue_overflows > 0
    assert result.failed_requests == 0


def test_rejection_percentage_monotone_in_offered_load(workload):
    """Lower service rate = higher offered load; rejection percentage
    must be monotone non-decreasing along the sweep."""
    percentages = []
    for rate in (0.05, 0.01, 0.005, 0.002):
        spec = OverloadSpec(service_rate=rate, queue_capacity=3)
        result = run_simulation(
            workload, SimulationConfig(strategy="gdstar", overload=spec)
        )
        percentages.append(result.rejection_percentage)
    assert percentages == sorted(percentages)
    assert percentages[-1] > 0.0


def test_breaker_open_serves_stale_and_caps_retries(workload):
    """With the origin gate starved the breaker opens, cached copies
    are served stale (degraded), and total origin retries stay within
    the configured retry budget."""
    spec = OverloadSpec(
        origin_capacity=0.0005,
        origin_burst=1,
        breaker_threshold=1,
        breaker_cooldown=50_000.0,
        retry_budget=25,
    )
    result = run_simulation(
        workload, SimulationConfig(strategy="gdstar", overload=spec)
    )
    assert result.breaker_opens > 0
    assert result.breaker_open_seconds > 0.0
    assert 0.0 < result.breaker_open_fraction <= 1.0
    assert result.overload_stale_serves > 0
    assert result.retries_denied > 0
    # The retry-storm guarantee: every extra origin attempt spent a
    # budget token, so total retries can never exceed the budget.
    assert result.retry_budget_spent <= spec.retry_budget
    assert result.origin_rejections > 0
    # Requests that found neither origin nor cache failed.
    assert result.failed_requests > 0
    assert result.requests == workload.request_count


def test_jitter_changes_only_with_rng_armed(workload):
    """Retry jitter draws from the dedicated stream: it stretches the
    waits of outage-crossing retries (so response time moves), and the
    jittered run is itself reproducible."""
    # Straddle the first request (a guaranteed cold miss) with a short
    # outage: the first fetch attempt finds the origin down and a
    # backed-off retry succeeds just after the window, so the retry
    # wait — jittered or not — lands in total_response_time.
    first = workload.requests[0].time
    schedule = FaultSchedule(
        publisher_outages=[Window(start=first - 1.0, end=first + 2.0)]
    )
    chaos = ChaosSpec(publisher_mtbf=1.0)  # arms the layer; schedule given
    jittered_spec = OverloadSpec(retry_jitter=0.9)

    def run(overload):
        return Simulation(
            workload,
            SimulationConfig(strategy="gdstar", chaos=chaos, overload=overload),
            fault_schedule=schedule,
        ).run()

    plain = run(None)
    once = run(jittered_spec)
    twice = run(jittered_spec)
    assert _comparable(once) == _comparable(twice)
    assert plain.total_response_time != once.total_response_time


def test_cooperative_rejected_pulls_walk_peer_chain(workload):
    """Cooperation under overload: rejected pulls and misses resolve
    off-proxy without failing when no origin gate is armed, and the
    inert spec stays bit-identical."""
    spec = OverloadSpec(service_rate=0.005, queue_capacity=3)
    result = run_cooperative_simulation(
        workload, SimulationConfig(strategy="sub", overload=spec)
    )
    assert result.overload_pulls_rejected > 0
    assert result.failed_requests == 0
    assert result.requests == workload.request_count
    inert = run_cooperative_simulation(
        workload, SimulationConfig(strategy="sub", overload=OverloadSpec())
    )
    plain = run_cooperative_simulation(
        workload, SimulationConfig(strategy="sub")
    )
    assert _comparable(inert) == _comparable(plain)


def test_push_shedding_heals_via_staleness_repair(workload):
    """Shed pushes leave the cache behind; under the delivery protocol
    the next access notices and repairs, so requests never fail."""
    chaos = ChaosSpec(delivery_loss_probability=0.01)
    spec = OverloadSpec(
        service_rate=0.005, queue_capacity=3, push_shed_fraction=0.34
    )
    result = run_simulation(
        workload,
        SimulationConfig(strategy="sub", chaos=chaos, overload=spec),
    )
    assert result.overload_pushes_shed > 0
    assert result.requests == workload.request_count


def test_per_proxy_queue_metrics(workload):
    spec = OverloadSpec(service_rate=0.005, queue_capacity=3)
    result = run_simulation(
        workload, SimulationConfig(strategy="gdstar", overload=spec)
    )
    server_count = workload.config.server_count
    assert len(result.overload_queue_avg_by_proxy) == server_count
    assert len(result.overload_queue_rejection_by_proxy) == server_count
    assert all(v >= 0.0 for v in result.overload_queue_avg_by_proxy)
    assert all(0.0 <= v <= 100.0 for v in result.overload_queue_rejection_by_proxy)
    assert 0 < result.overload_queue_peak <= spec.queue_capacity
    # The scalar aggregate is the arrival-weighted mean of the per-proxy
    # averages, all of which the manager also reports per proxy.
    assert result.average_queue_size == pytest.approx(
        sum(
            avg * arr
            for avg, arr in zip(
                result.overload_queue_avg_by_proxy,
                _per_proxy_arrivals(workload, spec),
            )
        )
        / result.overload_arrivals
    )


def _per_proxy_arrivals(workload, spec):
    sim = Simulation(workload, SimulationConfig(strategy="gdstar", overload=spec))
    sim.run()
    metrics = sim._overload.queue_metrics_by_proxy()
    return [
        metrics[server_id]["arrivals"]
        for server_id in range(workload.config.server_count)
    ]
