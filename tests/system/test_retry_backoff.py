"""Boundary tests for the origin-retry backoff model.

``Simulation._origin_wait`` resolves "does a backed-off retry land
after the publisher recovers?" analytically against the materialised
outage windows.  These tests pin its edge behaviour: a zero retry
budget, a backoff step that hits ``retry_cap`` exactly, and an outage
that ends in the middle of a backoff period.
"""

import pytest

from repro.faults.schedule import FaultSchedule, Window
from repro.faults.spec import ChaosSpec
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.simulator import Simulation
from repro.workload import generate_workload, news_config


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.02), RandomStreams(3), label="news")


def simulation_with(workload, chaos, outages):
    return Simulation(
        workload,
        SimulationConfig(strategy="gdstar", chaos=chaos),
        fault_schedule=FaultSchedule(publisher_outages=outages),
    )


def test_origin_up_needs_no_wait(workload):
    sim = simulation_with(workload, ChaosSpec(), [Window(start=50.0, end=60.0)])
    assert sim._origin_wait(10.0, 0, 1) == (True, 0.0)


def test_retry_limit_zero_fails_immediately(workload):
    """With no retry budget the first unreachable attempt is final."""
    sim = simulation_with(
        workload,
        ChaosSpec(retry_limit=0),
        [Window(start=100.0, end=101.0)],
    )
    ok, waited = sim._origin_wait(100.0, 0, 1)
    assert ok is False
    assert waited == 0.0  # no backoff was even attempted


def test_backoff_hitting_retry_cap_exactly(workload):
    """retry_base=2, cap=8: backoffs 2, 4, 8 (== cap, uncapped value
    exactly at the boundary), then 8 again (16 capped).  Retries land
    at +2, +6, +14, +22 seconds."""
    chaos = ChaosSpec(retry_limit=4, retry_base=2.0, retry_cap=8.0)
    start = 1000.0

    # Outage ends between the 3rd and 4th retry: only the capped 4th
    # attempt (cumulative wait 22 s) gets through.
    sim = simulation_with(
        workload, chaos, [Window(start=start, end=start + 15.0)]
    )
    ok, waited = sim._origin_wait(start, 0, 1)
    assert ok is True
    assert waited == pytest.approx(22.0)

    # Outage outlasting every retry (last attempt at +22 < end): the
    # request fails having waited the full backoff budget.
    sim = simulation_with(
        workload, chaos, [Window(start=start, end=start + 23.0)]
    )
    ok, waited = sim._origin_wait(start, 0, 1)
    assert ok is False
    assert waited == pytest.approx(22.0)

    # Outage ending exactly at the last retry instant: half-open
    # windows make the publisher reachable again at its recovery
    # instant, so the attempt at +22 succeeds.
    sim = simulation_with(
        workload, chaos, [Window(start=start, end=start + 22.0)]
    )
    ok, waited = sim._origin_wait(start, 0, 1)
    assert ok is True
    assert waited == pytest.approx(22.0)


def test_outage_ending_mid_backoff(workload):
    """Recovery during a backoff period: the retry that fires after the
    outage ends succeeds, with the full elapsed backoff as the wait.

    Default spec backoffs are 0.5, 1, 2, 4 -> retries at +0.5, +1.5,
    +3.5, +7.5.  An outage ending at +3.0 straddles the second backoff
    period; the +3.5 retry lands on a healthy origin.
    """
    start = 2000.0
    sim = simulation_with(
        workload, ChaosSpec(), [Window(start=start, end=start + 3.0)]
    )
    ok, waited = sim._origin_wait(start, 0, 1)
    assert ok is True
    assert waited == pytest.approx(3.5)


def test_retry_limit_zero_fails_requests_end_to_end(workload):
    """Through the full request path: with retry_limit=0 every request
    that needs the origin during the outage fails outright."""
    horizon = workload.config.horizon
    window = Window(start=horizon * 0.4, end=horizon * 0.6)
    no_budget = simulation_with(
        workload, ChaosSpec(retry_limit=0), [window]
    ).run()
    with_budget = simulation_with(workload, ChaosSpec(), [window]).run()
    assert no_budget.failed_requests > 0
    # A retry budget can only help: strictly fewer (or equal) failures.
    assert with_budget.failed_requests <= no_budget.failed_requests
    assert no_budget.availability < 1.0
