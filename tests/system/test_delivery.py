"""The reliable-delivery layer: loss, retransmission, repair.

Covers the acceptance criteria of the reliable-delivery PR: delivery
knobs at their defaults leave every run bit-identical (NULL-object
discipline), configured loss produces retransmissions and permanent
losses, staleness repair drives stale serves below the no-protocol
baseline, duplicates are suppressed by sequence numbers, gaps are
detected, broker-shard crash windows black out the push path, and the
retransmit queue bound sheds load.  Plus unit tests for the analytic
:class:`ReliableDelivery` planner and the proxy-side
:class:`SequenceTracker`.
"""

import dataclasses

import pytest

from repro.faults.generator import generate_fault_schedule
from repro.faults.schedule import FaultSchedule, Window
from repro.faults.spec import ChaosSpec
from repro.pubsub.routing import SequenceTracker
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.delivery import (
    STALENESS_AGE_BIN_EDGES,
    ReliableDelivery,
    staleness_age_bin,
)
from repro.system.simulator import Simulation, run_simulation

from tests.system.test_chaos import FAULT_FIELDS  # single source of truth
from repro.workload import generate_workload, news_config

#: Push-heavy fair weather except for notification loss.
LOSSY = ChaosSpec(delivery_loss_probability=0.25, delivery_retry_limit=1)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.03), RandomStreams(2), label="news")


def _comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("wall_seconds")
    return payload


# ---------------------------------------------------------------------------
# bit-identity: defaults change nothing
# ---------------------------------------------------------------------------


def test_delivery_defaults_are_bit_identical(workload):
    """With every delivery fault rate at zero the protocol is inert:
    flipping protocol-only knobs (repair off, different retry budget)
    must not move a single byte of the result — the layer is never
    engaged, so the ``faults.delivery`` stream is never drawn from."""
    base = ChaosSpec(proxy_mtbf=86_400.0, proxy_mttr=3_600.0, crash_fraction=0.5)
    config = SimulationConfig(strategy="sub", chaos=base)
    plain = run_simulation(workload, config)
    for variant in (
        dataclasses.replace(base, delivery_repair=False),
        dataclasses.replace(base, delivery_retry_limit=0),
        dataclasses.replace(base, delivery_ack_timeout=9.0, delivery_queue_limit=1),
    ):
        tweaked = run_simulation(
            workload, dataclasses.replace(config, chaos=variant)
        )
        assert _comparable(plain) == _comparable(tweaked)
    assert plain.notifications_sent == 0
    assert plain.notification_delivery_ratio == 1.0


def test_delivery_fields_zero_on_healthy_run(workload):
    """Golden-seed regression: a healthy run (no faults layer at all)
    reports zeroed delivery fields, and an engaged-but-fault-free spec
    only adds the dense zero lists FAULT_FIELDS allows for."""
    plain = run_simulation(workload, SimulationConfig(strategy="sub"))
    assert plain.notifications_sent == 0
    assert plain.notifications_lost == 0
    assert plain.stale_hits_served == 0
    assert plain.repair_fetches == 0
    assert plain.staleness_age_counts == []
    chaotic = run_simulation(
        workload, SimulationConfig(strategy="sub", chaos=ChaosSpec())
    )
    a, b = _comparable(plain), _comparable(chaotic)
    for key in a:
        if key in FAULT_FIELDS:
            continue
        assert a[key] == b[key], f"metric {key} changed by inert delivery layer"


# ---------------------------------------------------------------------------
# loss, retransmission, repair
# ---------------------------------------------------------------------------


def test_loss_produces_retransmissions_and_losses(workload):
    result = run_simulation(
        workload, SimulationConfig(strategy="sub", chaos=LOSSY)
    )
    assert result.notifications_sent > 0
    assert result.notification_loss_events > 0
    assert result.notifications_retransmitted > 0
    # With one retry and 25% loss some notifications are permanently
    # lost, but most still land.
    assert 0 < result.notifications_lost < result.notifications_sent
    assert result.notifications_delivered + result.notifications_lost <= (
        result.notifications_sent
    )
    assert result.notification_delivery_ratio < 1.0
    # No request is ever dropped by a delivery fault.
    assert result.requests == workload.request_count
    assert result.availability == 1.0


def test_repair_beats_no_protocol_baseline(workload):
    """Lazy staleness repair converts silent stale hits into repair
    fetches: strictly fewer stale serves than with repair disabled."""
    repaired = run_simulation(
        workload, SimulationConfig(strategy="sub", chaos=LOSSY)
    )
    unrepaired = run_simulation(
        workload,
        SimulationConfig(
            strategy="sub",
            chaos=dataclasses.replace(LOSSY, delivery_repair=False),
        ),
    )
    # The send-side fault plan is identical (requests never touch it).
    assert repaired.notifications_lost == unrepaired.notifications_lost > 0
    assert unrepaired.stale_hits_served > 0
    assert repaired.stale_hits_served < unrepaired.stale_hits_served
    assert repaired.repair_fetches > 0
    assert repaired.repair_bytes > 0
    assert unrepaired.repair_fetches == 0
    assert repaired.staleness_validations > 0
    # Stale serves feed the staleness-age histogram.
    assert sum(unrepaired.staleness_age_counts) >= unrepaired.stale_hits_served
    assert unrepaired.staleness_age_bin_edges == STALENESS_AGE_BIN_EDGES


def test_lossy_run_is_deterministic(workload):
    config = SimulationConfig(
        strategy="dm",
        chaos=dataclasses.replace(
            LOSSY,
            delivery_duplicate_probability=0.05,
            delivery_reorder_delay=5.0,
        ),
    )
    first = run_simulation(workload, config)
    second = run_simulation(workload, config)
    assert first.notifications_lost > 0
    assert _comparable(first) == _comparable(second)


# ---------------------------------------------------------------------------
# duplicates, reorder, gaps
# ---------------------------------------------------------------------------


def test_duplicates_are_suppressed(workload):
    """Pure duplication (no loss): every notification arrives, extra
    copies are recognised by their sequence numbers and dropped without
    touching the cache policy."""
    spec = ChaosSpec(delivery_duplicate_probability=0.5)
    result = run_simulation(workload, SimulationConfig(strategy="sub", chaos=spec))
    assert result.notifications_sent > 0
    assert result.notifications_lost == 0
    assert result.notifications_delivered == result.notifications_sent
    assert result.duplicate_notifications > 0
    # Without loss nothing goes stale: no repairs, no stale serves.
    assert result.stale_hits_served == 0
    assert result.repair_fetches == 0


def test_reorder_alone_loses_nothing(workload):
    """Delay alone never *loses* a notification.  It can still shave
    the delivered count: a copy still in flight when the proxy learns
    the version another way (a demand fetch or a staleness repair
    during the delay window) arrives late and is suppressed as a
    duplicate rather than delivered — latest-version-wins."""
    spec = ChaosSpec(delivery_reorder_delay=30.0)
    result = run_simulation(workload, SimulationConfig(strategy="sub", chaos=spec))
    assert result.notifications_sent > 0
    assert result.notifications_lost == 0
    suppressed = result.notifications_sent - result.notifications_delivered
    assert suppressed <= result.duplicate_notifications
    assert result.notification_delivery_ratio > 0.9


def test_gaps_detected_under_unrecovered_loss(workload):
    """With no retry budget every loss is permanent; the next delivery
    for the same page skips a sequence number and the proxy logs a gap."""
    spec = ChaosSpec(delivery_loss_probability=0.3, delivery_retry_limit=0)
    result = run_simulation(workload, SimulationConfig(strategy="sub", chaos=spec))
    assert result.notifications_lost > 0
    assert result.notifications_retransmitted == 0
    assert result.delivery_gaps_detected > 0


# ---------------------------------------------------------------------------
# broker crash windows
# ---------------------------------------------------------------------------


def test_broker_blackout_loses_all_pushes(workload):
    """One broker shard down for the whole run with no retry budget:
    every notification dies on the push path (but requests still work —
    staleness repair and origin fetches do not ride the broker)."""
    horizon = workload.config.horizon
    schedule = FaultSchedule(
        broker_crashes={0: [Window(start=0.0, end=horizon + 1.0)]}
    )
    result = Simulation(
        workload,
        SimulationConfig(
            strategy="sub", chaos=ChaosSpec(delivery_retry_limit=0)
        ),
        fault_schedule=schedule,
    ).run()
    assert result.notifications_sent > 0
    assert result.notifications_lost == result.notifications_sent
    assert result.notifications_delivered == 0
    assert result.availability == 1.0
    assert result.requests == workload.request_count


def test_broker_retransmits_bridge_short_crash(workload):
    """A crash window shorter than the backoff ladder: the retransmit
    that fires after recovery lands, so nothing is permanently lost."""
    # Backoffs 1, 2, 4, 8 reach 15 s past each send; anchor a 5 s
    # window on a real publish event so it cannot outlast the ladder.
    publish = workload.publishes[len(workload.publishes) // 2]
    schedule = FaultSchedule(
        broker_crashes={0: [Window(start=publish.time - 1e-3, end=publish.time + 5.0)]}
    )
    result = Simulation(
        workload,
        SimulationConfig(strategy="sub", chaos=ChaosSpec()),
        fault_schedule=schedule,
    ).run()
    assert result.notifications_lost == 0
    assert result.notifications_retransmitted > 0


def test_generated_broker_windows_are_deterministic(workload):
    spec = ChaosSpec(broker_mtbf=43_200.0, broker_mttr=1_800.0, broker_count=2)
    first = generate_fault_schedule(
        spec, RandomStreams(11), workload.config.horizon, workload.config.server_count
    )
    second = generate_fault_schedule(
        spec, RandomStreams(11), workload.config.horizon, workload.config.server_count
    )
    assert first.has_broker_faults
    assert first.broker_crash_count > 0
    assert first.broker_crash_windows() == second.broker_crash_windows()
    assert {broker for broker, _ in first.broker_crash_windows()} <= {0, 1}


# ---------------------------------------------------------------------------
# retransmit queue bound
# ---------------------------------------------------------------------------


def test_tiny_queue_sheds_retransmissions(workload):
    spec = dataclasses.replace(LOSSY, delivery_queue_limit=0)
    result = run_simulation(workload, SimulationConfig(strategy="sub", chaos=spec))
    # Every first loss found the queue full: abandoned, never retried.
    assert result.retransmit_queue_overflows > 0
    assert result.notifications_retransmitted == 0
    assert result.notifications_lost >= result.retransmit_queue_overflows


# ---------------------------------------------------------------------------
# ReliableDelivery planner units
# ---------------------------------------------------------------------------


def _delivery(spec, schedule=None, seed=0):
    return ReliableDelivery(
        spec,
        schedule if schedule is not None else FaultSchedule(),
        RandomStreams(seed).stream("faults.delivery"),
    )


def test_plan_clean_send():
    plan = _delivery(ChaosSpec(delivery_loss_probability=0.0)).plan(0, 100.0)
    assert plan.delivered
    assert plan.attempts == 1
    assert plan.retransmissions == 0
    assert plan.arrival_time == 100.0
    assert not plan.queued and not plan.queue_overflow
    assert plan.duplicate_time is None


def test_plan_backoff_ladder_against_broker_window():
    """ack_timeout=1, cap=30, limit=3: retransmits at +1, +3, +7.  A
    broker window ending at +5 makes exactly the third retransmit land."""
    spec = ChaosSpec(
        delivery_retry_limit=3, delivery_ack_timeout=1.0, delivery_backoff_cap=30.0
    )
    schedule = FaultSchedule(broker_crashes={0: [Window(start=100.0, end=105.0)]})
    plan = _delivery(spec, schedule).plan(0, 100.0)
    assert plan.delivered
    assert plan.attempts == 4
    assert plan.loss_events == 3
    assert plan.queued
    assert plan.arrival_time == pytest.approx(107.0)


def test_plan_backoff_cap_clamps_ladder():
    """ack_timeout=4, cap=8: backoffs 4, 8, 8 (16 clamped) — attempts
    at +0, +4, +12, +20."""
    spec = ChaosSpec(
        delivery_retry_limit=3, delivery_ack_timeout=4.0, delivery_backoff_cap=8.0
    )
    schedule = FaultSchedule(broker_crashes={0: [Window(start=0.0, end=19.0)]})
    plan = _delivery(spec, schedule).plan(0, 0.0)
    assert plan.delivered
    assert plan.attempts == 4
    assert plan.arrival_time == pytest.approx(20.0)
    # A window outlasting the whole ladder exhausts the retries.
    exhausted = _delivery(
        spec, FaultSchedule(broker_crashes={0: [Window(start=0.0, end=21.0)]})
    ).plan(0, 0.0)
    assert not exhausted.delivered
    assert exhausted.attempts == 4
    assert exhausted.loss_events == 4


def test_plan_retry_limit_zero_never_queues():
    schedule = FaultSchedule(broker_crashes={0: [Window(start=0.0, end=10.0)]})
    plan = _delivery(ChaosSpec(delivery_retry_limit=0), schedule).plan(0, 1.0)
    assert not plan.delivered
    assert plan.attempts == 1
    assert not plan.queued and not plan.queue_overflow


def test_plan_queue_overflow_and_lazy_drain():
    """With one queue slot, a second concurrent loss is shed; once the
    first resolution time passes, the slot frees and queuing resumes."""
    spec = ChaosSpec(
        delivery_retry_limit=2,
        delivery_ack_timeout=1.0,
        delivery_queue_limit=1,
    )
    schedule = FaultSchedule(broker_crashes={0: [Window(start=0.0, end=50.0)]})
    delivery = _delivery(spec, schedule)
    # Attempts at 10, 11, 13 all die; the slot is held until the
    # final ack timeout lapses at 13 + 4 = 17.
    first = delivery.plan(0, 10.0)
    assert first.queued and not first.delivered
    assert delivery.pending_retransmits == 1
    shed = delivery.plan(0, 10.5)
    assert shed.queue_overflow
    assert shed.attempts == 1 and shed.loss_events == 1
    assert delivery.pending_retransmits == 1
    later = delivery.plan(0, 17.5)  # first slot has drained by now
    assert later.queued and not later.queue_overflow
    assert delivery.pending_retransmits == 1


def test_plan_broker_sharding():
    """broker_count=2: even proxies ride shard 0, odd ride shard 1."""
    spec = ChaosSpec(delivery_retry_limit=0, broker_count=2)
    schedule = FaultSchedule(broker_crashes={1: [Window(start=0.0, end=100.0)]})
    delivery = _delivery(spec, schedule)
    assert delivery.plan(2, 5.0).delivered  # shard 0: healthy
    assert not delivery.plan(3, 5.0).delivered  # shard 1: down


def test_plan_duplicate_and_reorder_bounds():
    spec = ChaosSpec(
        delivery_duplicate_probability=0.9, delivery_reorder_delay=5.0
    )
    delivery = _delivery(spec, seed=3)
    duplicated = 0
    for _ in range(50):
        plan = delivery.plan(0, 1000.0)
        assert plan.delivered
        assert 1000.0 <= plan.arrival_time < 1005.0
        if plan.duplicate_time is not None:
            duplicated += 1
            assert plan.arrival_time <= plan.duplicate_time < plan.arrival_time + 5.0
    assert duplicated > 25


# ---------------------------------------------------------------------------
# SequenceTracker units
# ---------------------------------------------------------------------------


def test_tracker_orders_duplicates_and_gaps():
    tracker = SequenceTracker()
    assert tracker.observe(7, 0) == "new"
    assert tracker.observe(7, 1) == "new"
    assert tracker.observe(7, 1) == "duplicate"  # redelivery
    assert tracker.observe(7, 0) == "duplicate"  # stale reordered copy
    assert tracker.observe(7, 3) == "gap"  # version 2 never arrived
    assert tracker.observe(7, 2) == "duplicate"  # late copy of the hole
    assert tracker.duplicates == 3
    assert tracker.gaps == 1
    assert tracker.last_seen(7) == 3
    assert tracker.last_seen(8) is None


def test_tracker_first_delivery_past_zero_is_a_gap():
    tracker = SequenceTracker()
    assert tracker.observe(4, 2) == "gap"
    assert tracker.gaps == 1


def test_tracker_learn_raises_watermark_silently():
    tracker = SequenceTracker()
    tracker.observe(4, 0)
    tracker.learn(4, 5)  # demand fetch saw version 5
    assert tracker.last_seen(4) == 5
    assert tracker.observe(4, 5) == "duplicate"  # late push, already known
    assert tracker.observe(4, 6) == "new"
    assert tracker.gaps == 0
    tracker.learn(4, 2)  # learning something older never regresses
    assert tracker.last_seen(4) == 6


def test_tracker_reset_clears_state_not_counters():
    tracker = SequenceTracker()
    tracker.observe(1, 0)
    tracker.observe(1, 0)
    assert tracker.duplicates == 1
    tracker.reset()
    assert tracker.last_seen(1) is None
    assert tracker.duplicates == 1  # counters are cumulative across crashes
    assert tracker.observe(1, 0) == "new"


# ---------------------------------------------------------------------------
# staleness-age histogram helpers
# ---------------------------------------------------------------------------


def test_staleness_age_bins():
    assert staleness_age_bin(0.0) == 0
    assert staleness_age_bin(60.0) == 0
    assert staleness_age_bin(60.1) == 1
    assert staleness_age_bin(3600.0) == 3
    assert staleness_age_bin(7 * 24 * 3600.0) == len(STALENESS_AGE_BIN_EDGES)
