"""Eviction-cause trace equivalence across engines and heap layouts.

The bit-identity guard (test_replay_fastpath) compares final
:class:`SimulationResult` fields; this module guards a finer-grained
invariant: the *sequence of eviction events* the observability layer
records — (time, page, proxy, size, cause), in order — must not depend
on which replay engine ran the trace, nor on how aggressively the
:class:`~repro.cache.heap.AddressableHeap` compacts its backing list.
Compaction and the columnar record layout are pure representation
changes; if either ever reorders or renames an eviction, these tests
catch it even when the aggregate counters happen to agree.
"""

import pytest

import repro.cache.heap as heap_module
import repro.core.gdstar as gdstar_module
import repro.core.single_cache as single_cache_module
from repro.obs.recorder import Observer
from repro.obs.tracer import EventTracer
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.simulator import run_simulation
from repro.workload import generate_workload, news_config


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.03), RandomStreams(5), label="news")


def evict_trace(workload, strategy, replay):
    """The ordered eviction events of one run, as comparable tuples."""
    tracer = EventTracer(types=("evict",))
    observer = Observer(tracer=tracer)
    config = SimulationConfig(
        strategy=strategy, capacity_fraction=0.05, replay=replay
    )
    run_simulation(workload, config, observer=observer)
    return [
        (e["t"], e["page"], e["proxy"], e["size"], e["cause"])
        for e in tracer.events()
        if e["type"] == "evict"
    ]


@pytest.mark.parametrize("strategy", ["gdstar", "sg2", "sub"])
def test_engines_agree_on_eviction_events(workload, strategy):
    agenda = evict_trace(workload, strategy, "agenda")
    hybrid = evict_trace(workload, strategy, "hybrid")
    fast = evict_trace(workload, strategy, "fast")
    assert agenda, "capacity_fraction=0.05 should force evictions"
    assert hybrid == agenda
    assert fast == agenda


@pytest.mark.parametrize("strategy", ["gdstar", "sg2"])
def test_compaction_cadence_never_changes_evictions(
    workload, strategy, monkeypatch
):
    """Forcing a compaction on (nearly) every push must leave the
    eviction event stream untouched: live records keep their
    (priority, sequence) keys, so heapify yields exactly the order
    lazy skimming would have."""
    baseline = evict_trace(workload, strategy, "agenda")
    assert baseline

    # The floor is imported by value into the policy hot paths, so
    # patch every binding.
    for module in (heap_module, single_cache_module, gdstar_module):
        monkeypatch.setattr(module, "_COMPACT_FLOOR", 1)
    compacting = evict_trace(workload, strategy, "agenda")
    assert compacting == baseline
