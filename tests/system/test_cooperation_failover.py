"""Failover-ordering tests for cooperative proxies under faults.

The chain is: nearest live peer holding the current version, then the
next-nearest, ..., then the origin.  Crashed peers cost ``peer_timeout``
and are skipped; the origin is the terminal fallback and only its
exhausted retries make a request fail.
"""

import dataclasses

import pytest

from repro.faults.schedule import FaultSchedule, Window
from repro.faults.spec import ChaosSpec
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.cooperation import CooperativeSimulation
from repro.workload import generate_workload, news_config


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.05), RandomStreams(5), label="news")


def make_sim(workload, schedule=None, **config_kwargs):
    return CooperativeSimulation(
        workload,
        SimulationConfig(strategy="gdstar", **config_kwargs),
        neighbor_count=8,
        fault_schedule=schedule if schedule is not None else FaultSchedule(),
    )


def close_peers(sim, minimum=2):
    """A (server_id, [(peer, hops), ...]) with >= ``minimum`` peers
    strictly closer than the origin (the only peers the chain probes)."""
    for server_id, peers in enumerate(sim._neighbors):
        origin_cost = sim.proxies[server_id].policy.cost
        close = [(p, h) for p, h in peers if max(1.0, h) < origin_cost]
        if len(close) >= minimum:
            return server_id, close
    pytest.skip("topology yielded no server with enough close peers")


def seed_peer_cache(sim, peer_index, page_id, version, size):
    policy = sim.proxies[peer_index].policy
    policy.on_request(page_id, version, size, 5, 0.0)  # miss caches it
    assert policy.contains(page_id) and policy.cached_version(page_id) == version


def test_nearest_live_holder_serves(workload):
    sim = make_sim(workload)
    server_id, close = close_peers(sim)
    requester = sim.proxies[server_id]
    page = workload.pages[0]
    sim.publisher.publish(page.page_id, 0)
    for peer_index, _hops in close[:2]:  # both near peers hold it
        seed_peer_cache(sim, peer_index, page.page_id, 0, page.size)

    before = sim.publisher.total_fetch_pages
    resolution = sim._fetch_on_miss(
        requester, server_id, page.page_id, 0, page.size, now=10.0
    )
    assert resolution is not None
    extra_latency, degraded = resolution
    nearest_hops = max(1.0, close[0][1])
    assert extra_latency == pytest.approx(
        sim.config.per_hop_latency * nearest_hops
    )
    assert not degraded
    assert sim.peer_fetch_pages == 1
    assert sim.publisher.total_fetch_pages == before  # origin untouched


def test_crashed_nearest_peer_is_skipped_with_timeout(workload):
    sim = make_sim(workload)
    server_id, close = close_peers(sim)
    requester = sim.proxies[server_id]
    page = workload.pages[0]
    sim.publisher.publish(page.page_id, 0)
    (first_peer, _h1), (second_peer, h2) = close[0], close[1]
    seed_peer_cache(sim, first_peer, page.page_id, 0, page.size)
    seed_peer_cache(sim, second_peer, page.page_id, 0, page.size)
    sim.proxies[first_peer].crash(now=5.0)

    resolution = sim._fetch_on_miss(
        requester, server_id, page.page_id, 0, page.size, now=10.0
    )
    assert resolution is not None
    extra_latency, degraded = resolution
    assert degraded  # the dead probe downgraded the service level
    assert extra_latency == pytest.approx(
        sim.chaos.peer_timeout + sim.config.per_hop_latency * max(1.0, h2)
    )
    assert sim.peer_fetch_pages == 1


def test_origin_is_terminal_when_no_peer_holds_the_page(workload):
    sim = make_sim(workload)
    server_id, _close = close_peers(sim)
    requester = sim.proxies[server_id]
    page = workload.pages[0]
    sim.publisher.publish(page.page_id, 0)

    before = sim.publisher.total_fetch_pages
    resolution = sim._fetch_on_miss(
        requester, server_id, page.page_id, 0, page.size, now=10.0
    )
    assert resolution is not None
    extra_latency, degraded = resolution
    assert extra_latency == pytest.approx(
        sim.config.per_hop_latency * requester.policy.cost
    )
    assert not degraded
    assert sim.peer_fetch_pages == 0
    assert sim.publisher.total_fetch_pages == before + 1


def test_stale_peer_copies_do_not_serve(workload):
    """A peer holding an old version is not a holder for the chain."""
    sim = make_sim(workload)
    server_id, close = close_peers(sim)
    requester = sim.proxies[server_id]
    page = workload.pages[0]
    sim.publisher.publish(page.page_id, 0)
    seed_peer_cache(sim, close[0][0], page.page_id, 0, page.size)
    sim.publisher.publish(page.page_id, 1)  # peer copy now stale

    before = sim.publisher.total_fetch_pages
    resolution = sim._fetch_on_miss(
        requester, server_id, page.page_id, 1, page.size, now=10.0
    )
    assert resolution is not None
    assert sim.peer_fetch_pages == 0
    assert sim.publisher.total_fetch_pages == before + 1


def test_request_fails_only_when_origin_retries_exhausted(workload):
    """Dead peers + long origin outage -> the whole chain fails."""
    outage = Window(start=0.0, end=3_600.0)
    sim = make_sim(workload, schedule=FaultSchedule(publisher_outages=[outage]))
    server_id, close = close_peers(sim)
    requester = sim.proxies[server_id]
    page = workload.pages[0]
    sim.publisher.publish(page.page_id, 0)
    for peer_index, _hops in close:
        seed_peer_cache(sim, peer_index, page.page_id, 0, page.size)
        sim.proxies[peer_index].crash(now=5.0)

    resolution = sim._fetch_on_miss(
        requester, server_id, page.page_id, 0, page.size, now=10.0
    )
    assert resolution is None  # every hop of the chain was exhausted


def test_cooperative_chaos_run_is_deterministic(workload):
    spec = ChaosSpec(
        proxy_mtbf=86_400.0,
        proxy_mttr=3_600.0,
        crash_fraction=0.5,
        publisher_mtbf=172_800.0,
    )
    config = SimulationConfig(strategy="gdstar", chaos=spec)

    def run():
        sim = CooperativeSimulation(workload, config, neighbor_count=3)
        payload = dataclasses.asdict(sim.run())
        payload.pop("wall_seconds")
        return payload

    first, second = run(), run()
    assert first["proxy_crashes"] > 0
    assert first == second
