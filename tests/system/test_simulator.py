"""End-to-end tests of the trace-driven simulator."""

import pytest

from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.system.config import PushingScheme, SimulationConfig
from repro.system.simulator import Simulation, run_simulation
from repro.workload import generate_workload, news_config


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.03), RandomStreams(2), label="news")


def run(workload, **kwargs):
    defaults = dict(strategy="sg2", capacity_fraction=0.05)
    defaults.update(kwargs)
    return run_simulation(workload, SimulationConfig(**defaults))


def test_every_request_is_served(workload):
    result = run(workload)
    assert result.requests == workload.request_count
    assert 0.0 <= result.hit_ratio <= 1.0


def test_fetches_equal_misses(workload):
    """Every miss fetches from the publisher exactly once."""
    result = run(workload)
    assert result.fetch_pages == result.requests - result.hits


def test_hourly_series_sum_to_totals(workload):
    result = run(workload)
    assert sum(result.hourly_requests) == result.requests
    assert sum(result.hourly_hits) == result.hits
    assert sum(result.hourly_push_pages) == result.push_transfers
    assert sum(result.hourly_fetch_pages) == result.fetch_pages


def test_per_proxy_stats_aggregate(workload):
    result = run(workload)
    assert sum(stats.requests for stats in result.per_proxy) == result.requests
    assert sum(stats.hits for stats in result.per_proxy) == result.hits


def test_gdstar_never_pushes(workload):
    result = run(workload, strategy="gdstar")
    assert result.push_transfers == 0
    assert result.push_bytes == 0


def test_pushing_scheme_changes_traffic_not_hits(workload):
    always = run(workload, pushing=PushingScheme.ALWAYS)
    necessary = run(workload, pushing=PushingScheme.WHEN_NECESSARY)
    assert always.hit_ratio == necessary.hit_ratio
    assert always.push_transfers >= necessary.push_transfers


def test_deterministic_runs(workload):
    a = run(workload)
    b = run(workload)
    assert a.hit_ratio == b.hit_ratio
    assert a.traffic_pages == b.traffic_pages
    assert a.hourly_hits == b.hourly_hits


def test_capacity_fraction_monotone(workload):
    small = run(workload, capacity_fraction=0.01)
    large = run(workload, capacity_fraction=0.20)
    assert large.hit_ratio >= small.hit_ratio


def test_strategy_options_forwarded(workload):
    result = run(workload, strategy="gdstar", strategy_options={"beta": 0.5})
    assert result.requests == workload.request_count


def test_custom_match_table(workload):
    empty = TraceMatchCounts({})
    result = run_simulation(
        workload,
        SimulationConfig(strategy="sub", capacity_fraction=0.05),
        match_table=empty,
    )
    # No subscriptions: SUB can never store anything.
    assert result.hits == 0
    assert result.push_transfers == 0


def test_invariant_checking_mode(workload):
    config = SimulationConfig(
        strategy="dc-lap", capacity_fraction=0.05, invariant_check_interval=500
    )
    result = run_simulation(workload, config)
    assert result.requests == workload.request_count


def test_simulation_exposes_proxies(workload):
    simulation = Simulation(
        workload, SimulationConfig(strategy="sg2", capacity_fraction=0.05)
    )
    assert len(simulation.proxies) == workload.config.server_count
    simulation.run()
    for proxy in simulation.proxies:
        proxy.check_invariants()


def test_config_validation():
    with pytest.raises(ValueError):
        SimulationConfig(capacity_fraction=0.0)
    with pytest.raises(ValueError):
        SimulationConfig(subscription_quality=1.5)
    with pytest.raises(ValueError):
        SimulationConfig(notified_fraction=-0.1)
    with pytest.raises(ValueError):
        SimulationConfig(invariant_check_interval=-1)


def test_subscription_quality_affects_sub(workload):
    perfect = run(workload, strategy="sub", subscription_quality=1.0)
    noisy = run(workload, strategy="sub", subscription_quality=0.25)
    assert perfect.hit_ratio != noisy.hit_ratio


def test_notified_fraction_extension(workload):
    partial = run_simulation(
        workload,
        SimulationConfig(
            strategy="sg2", capacity_fraction=0.05, notified_fraction=0.5
        ),
    )
    assert partial.requests == workload.request_count


def test_response_time_model(workload):
    """Higher hit ratio must mean lower modelled response time, and the
    bounds follow from the latency parameters."""
    fast = run(workload, strategy="sg2")
    slow = run(workload, strategy="gdstar")
    assert fast.hit_ratio > slow.hit_ratio
    assert fast.mean_response_time < slow.mean_response_time
    config = SimulationConfig(strategy="sg2", capacity_fraction=0.05)
    assert fast.mean_response_time >= config.hit_latency
    # every request pays at least hit_latency; misses add hop latency
    expected_min = config.hit_latency + (
        (1 - fast.hit_ratio) * config.per_hop_latency * 1.0
    )
    assert fast.mean_response_time >= expected_min - 1e-9


def test_latency_validation():
    with pytest.raises(ValueError):
        SimulationConfig(hit_latency=-1.0)
    with pytest.raises(ValueError):
        SimulationConfig(per_hop_latency=-0.1)
