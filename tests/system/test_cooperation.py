"""Tests for the cooperative-proxy extension."""

import pytest

from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.cooperation import (
    CooperativeSimulation,
    run_cooperative_simulation,
)
from repro.system.simulator import run_simulation
from repro.workload import generate_workload, news_config


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.05), RandomStreams(5), label="news")


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(strategy="gdstar", capacity_fraction=0.05)


def test_local_hit_ratio_unchanged(workload, config):
    """Peering changes where misses are served, not whether they hit."""
    solo = run_simulation(workload, config)
    coop = run_cooperative_simulation(workload, config, neighbor_count=3)
    assert coop.hit_ratio == solo.hit_ratio


def test_peer_fetches_offload_the_origin(workload, config):
    solo = run_simulation(workload, config)
    coop = run_cooperative_simulation(workload, config, neighbor_count=3)
    assert coop.peer_fetch_pages > 0
    assert coop.fetch_pages + coop.peer_fetch_pages == solo.fetch_pages
    assert coop.fetch_pages < solo.fetch_pages


def test_more_neighbors_more_offload(workload, config):
    few = run_cooperative_simulation(workload, config, neighbor_count=1)
    many = run_cooperative_simulation(workload, config, neighbor_count=8)
    assert many.peer_fetch_pages >= few.peer_fetch_pages


def test_zero_neighbors_degenerates_to_solo(workload, config):
    solo = run_simulation(workload, config)
    coop = run_cooperative_simulation(workload, config, neighbor_count=0)
    assert coop.peer_fetch_pages == 0
    assert coop.fetch_pages == solo.fetch_pages
    assert coop.total_response_time == pytest.approx(solo.total_response_time)


def test_response_time_improves_with_peering(workload, config):
    """Peers are closer than the publisher, so misses get cheaper."""
    solo = run_simulation(workload, config)
    coop = run_cooperative_simulation(workload, config, neighbor_count=5)
    assert coop.mean_response_time <= solo.mean_response_time


def test_neighbor_lists_exclude_self(workload, config):
    simulation = CooperativeSimulation(workload, config, neighbor_count=3)
    for index, peers in enumerate(simulation._neighbors):
        assert all(peer != index for peer, _hops in peers)
        assert len(peers) <= 3


def test_neighbor_count_validation(workload, config):
    with pytest.raises(ValueError):
        CooperativeSimulation(workload, config, neighbor_count=-1)


def test_peer_bytes_accounting(workload, config):
    coop = run_cooperative_simulation(workload, config, neighbor_count=3)
    assert (coop.peer_fetch_bytes > 0) == (coop.peer_fetch_pages > 0)
