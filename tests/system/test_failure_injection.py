"""Failure-injection tests: malformed inputs must fail loudly, and
degenerate-but-legal configurations must still behave."""

import dataclasses

import pytest

from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.publisher import Publisher
from repro.system.simulator import Simulation, run_simulation
from repro.workload import generate_workload, news_config
from repro.workload.trace import PublishRecord, RequestRecord, Workload


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.02), RandomStreams(4), label="news")


def test_request_before_publication_raises(workload):
    broken = Workload(
        config=workload.config,
        pages=workload.pages,
        publishes=list(workload.publishes),
        requests=[
            RequestRecord(time=0.0, server_id=0, page_id=workload.pages[0].page_id)
        ],
        label="broken",
    )
    # Force the single request before the page's first publication.
    broken.publishes = [
        event for event in broken.publishes if event.time > 0.0
    ]
    simulation = Simulation(
        broken, SimulationConfig(strategy="gdstar", capacity_fraction=0.05)
    )
    with pytest.raises(RuntimeError, match="before its first publication"):
        simulation.run()


def test_out_of_order_version_replay_raises(workload):
    publisher = Publisher(workload)
    page_id = workload.pages[0].page_id
    publisher.publish(page_id, 0)
    with pytest.raises(ValueError, match="out-of-order"):
        publisher.publish(page_id, 2)


def test_unknown_page_size_lookup_raises(workload):
    publisher = Publisher(workload)
    with pytest.raises(KeyError):
        publisher.page_size(10**9)


def test_one_byte_caches_still_serve_everything(workload):
    """Cache so small nothing fits: zero hits, but every request served."""
    tiny = dataclasses.replace(
        SimulationConfig(strategy="sg2"), capacity_fraction=0.05
    )
    simulation = Simulation(workload, tiny)
    for proxy in simulation.proxies:
        proxy.policy.capacity_bytes = 1  # sabotage after construction
    # Rebuild policies properly instead: run with a fresh simulation
    # whose capacities are forced to 1 byte via a monkeypatched table.
    result = run_simulation(
        _with_unit_capacities(workload),
        SimulationConfig(strategy="sg2", capacity_fraction=0.05),
    )
    assert result.requests == workload.request_count
    assert result.hits == 0
    assert result.fetch_pages == result.requests


def _with_unit_capacities(workload):
    class UnitCapacityWorkload(Workload):
        def capacities(self, fraction):
            return {
                server: 1 for server in range(self.config.server_count)
            }

    return UnitCapacityWorkload(
        config=workload.config,
        pages=workload.pages,
        publishes=workload.publishes,
        requests=workload.requests,
        label=workload.label,
    )


def test_match_table_with_unknown_pages_is_ignored(workload):
    bogus = TraceMatchCounts({10**9: {0: 5}})
    result = run_simulation(
        workload,
        SimulationConfig(strategy="sub", capacity_fraction=0.05),
        match_table=bogus,
    )
    assert result.push_transfers == 0


def test_empty_request_stream(workload):
    quiet = Workload(
        config=workload.config,
        pages=workload.pages,
        publishes=list(workload.publishes),
        requests=[],
        label="quiet",
    )
    result = run_simulation(
        quiet, SimulationConfig(strategy="sg2", capacity_fraction=0.05)
    )
    assert result.requests == 0
    assert result.hit_ratio == 0.0


def test_empty_publish_stream_with_no_requests():
    config = news_config(scale=0.02)
    empty = Workload(config=config, pages=[], publishes=[], requests=[])
    result = run_simulation(
        empty, SimulationConfig(strategy="gdstar", capacity_fraction=0.05)
    )
    assert result.requests == 0
