"""Bit-identity guard: fast-path replay vs the legacy heap agenda.

The hybrid replay engine must produce a :class:`SimulationResult`
identical — every field except ``wall_seconds``/``profile`` — to the
agenda-only path, across every strategy, both pushing schemes, and
under chaos plus delivery faults (where dynamic DES events interleave
with the static trace records).
"""

import dataclasses

import pytest

from repro.core.registry import strategy_names
from repro.faults.spec import ChaosSpec
from repro.sim.engine import Environment, NORMAL, URGENT, SimulationError
from repro.sim.rng import RandomStreams
from repro.system.config import PushingScheme, SimulationConfig
from repro.system.simulator import run_simulation
from repro.workload import generate_workload, news_config


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.03), RandomStreams(2), label="news")


CHAOS = ChaosSpec(
    proxy_mtbf=4 * 3600.0,
    proxy_mttr=1800.0,
    publisher_mtbf=6 * 3600.0,
    publisher_mttr=900.0,
    delivery_loss_probability=0.2,
    delivery_duplicate_probability=0.1,
    delivery_reorder_delay=30.0,
    delivery_retry_limit=2,
)


def stripped(result):
    payload = dataclasses.asdict(result)
    payload.pop("wall_seconds")
    payload.pop("profile")
    return payload


def run_both(workload, **kwargs):
    defaults = dict(capacity_fraction=0.05)
    defaults.update(kwargs)
    legacy = run_simulation(
        workload, SimulationConfig(replay="agenda", **defaults)
    )
    fast = run_simulation(workload, SimulationConfig(replay="fast", **defaults))
    return legacy, fast


@pytest.mark.parametrize("strategy", sorted(strategy_names()))
def test_bit_identity_per_strategy(workload, strategy):
    legacy, fast = run_both(workload, strategy=strategy)
    assert stripped(legacy) == stripped(fast)


@pytest.mark.parametrize(
    "pushing", [PushingScheme.ALWAYS, PushingScheme.WHEN_NECESSARY]
)
def test_bit_identity_per_pushing_scheme(workload, pushing):
    legacy, fast = run_both(workload, strategy="sub", pushing=pushing)
    assert stripped(legacy) == stripped(fast)


@pytest.mark.parametrize("strategy", ["sg2", "sub", "dc-lap"])
def test_bit_identity_under_chaos_and_delivery_faults(workload, strategy):
    """Dynamic agenda events (arrivals, fault processes) interleave
    correctly with the merged static stream."""
    legacy, fast = run_both(workload, strategy=strategy, chaos=CHAOS)
    assert legacy.proxy_crashes > 0  # the chaos config actually bites
    assert legacy.notifications_sent > 0
    assert stripped(legacy) == stripped(fast)


def test_bit_identity_with_invariant_checks(workload):
    legacy, fast = run_both(
        workload, strategy="sg2", invariant_check_interval=500
    )
    assert stripped(legacy) == stripped(fast)


def test_replay_knob_validated():
    with pytest.raises(ValueError):
        SimulationConfig(replay="bogus")


# -- engine-level ordering semantics ------------------------------------


def test_run_hybrid_orders_static_vs_dynamic_events():
    """Static records win (time, priority) ties against dynamic events,
    matching the sequence numbers they would have held if pre-scheduled."""
    env = Environment()
    order = []

    def static(tag, _b, t):
        order.append((tag, t))
        if tag == "pub@1":
            # Dynamic event at the same time/priority as a later static
            # record: the static record must still run first.
            env.schedule(2.0, lambda _env: order.append(("dyn@2", _env.now)),
                         priority=NORMAL)
            # Dynamic URGENT event beats a NORMAL static record at t=2.
            env.schedule(2.0, lambda _env: order.append(("dyn-urgent@2", _env.now)),
                         priority=URGENT)

    stream = [
        (1.0, URGENT, static, "pub@1", None),
        (2.0, NORMAL, static, "req@2", None),
        (3.0, NORMAL, static, "req@3", None),
    ]
    env.run_hybrid(iter(stream))
    assert order == [
        ("pub@1", 1.0),
        ("dyn-urgent@2", 2.0),
        ("req@2", 2.0),
        ("dyn@2", 2.0),
        ("req@3", 3.0),
    ]


def test_run_hybrid_drains_agenda_after_stream_ends():
    env = Environment()
    seen = []
    env.schedule(10.0, lambda _env: seen.append(_env.now))
    env.run_hybrid(iter([(1.0, NORMAL, lambda a, b, t: seen.append(t), None, None)]))
    assert seen == [1.0, 10.0]
    assert env.now == 10.0


def test_run_hybrid_rejects_unsorted_stream():
    env = Environment()
    stream = [
        (5.0, NORMAL, lambda a, b, t: None, None, None),
        (1.0, NORMAL, lambda a, b, t: None, None, None),
    ]
    with pytest.raises(SimulationError):
        env.run_hybrid(iter(stream))
