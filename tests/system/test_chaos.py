"""Integration tests for the fault-injection layer.

Covers the acceptance criteria of the chaos PR: empty schedules are
bit-identical to runs without the layer, active schedules are fully
deterministic, crashed proxies restart cold and reject pushes, and
publisher outages turn into retries and (when exhausted) failures.
"""

import dataclasses

import pytest

from repro.faults.schedule import FaultSchedule, Window
from repro.faults.spec import ChaosSpec
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.simulator import Simulation, run_simulation
from repro.workload import generate_workload, news_config

#: SimulationResult fields that only the faults layer populates.
FAULT_FIELDS = {
    "failed_requests",
    "degraded_requests",
    "hourly_failed",
    "hourly_degraded",
    "proxy_crashes",
    "proxy_downtime_seconds",
    "publisher_outage_seconds",
    "pushes_suppressed",
    "time_to_warm_seconds",
    "unwarmed_recoveries",
    "recovery_curve_requests",
    "recovery_curve_hits",
    "recovery_bin_seconds",
    # reliable-delivery fields (zero/empty healthy, dense zero lists
    # and constant bin edges under an engaged faults layer)
    "notifications_sent",
    "notifications_delivered",
    "notifications_lost",
    "notification_loss_events",
    "notifications_retransmitted",
    "duplicate_notifications",
    "delivery_gaps_detected",
    "retransmit_queue_overflows",
    "stale_hits_served",
    "staleness_validations",
    "repair_fetches",
    "repair_bytes",
    "hourly_stale_served",
    "hourly_repair_pages",
    "hourly_repair_bytes",
    "staleness_age_bin_edges",
    "staleness_age_counts",
}

#: A harsh-weather spec used across the determinism tests.
ACTIVE_SPEC = ChaosSpec(
    proxy_mtbf=86_400.0,
    proxy_mttr=3_600.0,
    crash_fraction=0.5,
    publisher_mtbf=172_800.0,
    publisher_mttr=1_800.0,
    degraded_mtbf=86_400.0,
    degraded_mttr=3_600.0,
    degraded_loss_probability=0.05,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.03), RandomStreams(2), label="news")


def _comparable(result):
    payload = dataclasses.asdict(result)
    payload.pop("wall_seconds")
    return payload


def test_empty_spec_is_bit_identical(workload):
    """A zero-rate ChaosSpec must not change any existing metric."""
    plain = run_simulation(workload, SimulationConfig(strategy="gdstar"))
    chaotic = run_simulation(
        workload, SimulationConfig(strategy="gdstar", chaos=ChaosSpec())
    )
    a, b = _comparable(plain), _comparable(chaotic)
    for key in a:
        if key in FAULT_FIELDS:
            continue
        assert a[key] == b[key], f"metric {key} changed by the empty faults layer"
    assert chaotic.failed_requests == 0
    assert chaotic.degraded_requests == 0
    assert chaotic.proxy_crashes == 0
    assert chaotic.availability == 1.0


def test_active_schedule_is_deterministic(workload):
    """Same seed + same spec -> identical SimulationResult, twice."""
    config = SimulationConfig(strategy="gdstar", chaos=ACTIVE_SPEC)
    first = run_simulation(workload, config)
    second = run_simulation(workload, config)
    assert first.proxy_crashes > 0  # the schedule actually did something
    assert _comparable(first) == _comparable(second)


def test_fault_schedule_reproducible_from_seed(workload):
    """The generated schedule is a pure function of the seed."""
    config = SimulationConfig(strategy="sub", chaos=ACTIVE_SPEC)
    first = Simulation(workload, config)
    second = Simulation(workload, config)
    assert first.fault_schedule.crash_windows() == (
        second.fault_schedule.crash_windows()
    )
    assert first.fault_schedule.outage_windows() == (
        second.fault_schedule.outage_windows()
    )
    other = Simulation(
        workload, dataclasses.replace(config, seed=config.seed + 1)
    )
    assert first.fault_schedule.crash_windows() != (
        other.fault_schedule.crash_windows()
    )


def test_crashed_proxy_restarts_cold_and_rejects_pushes(workload):
    """During a crash window the proxy's cache is empty and pushes are
    suppressed; requests fail over to the origin as degraded."""
    horizon = workload.config.horizon
    down = Window(start=horizon * 0.25, end=horizon * 0.75)
    schedule = FaultSchedule(
        proxy_crashes={server: [down] for server in range(workload.config.server_count)}
    )
    result = Simulation(
        workload,
        SimulationConfig(strategy="sub"),
        fault_schedule=schedule,
    ).run()
    assert result.proxy_crashes == workload.config.server_count
    assert result.proxy_downtime_seconds == pytest.approx(
        workload.config.server_count * down.duration
    )
    # Every proxy was down half the run: pushes were rejected and the
    # down-window requests were served by the origin (degraded, not
    # failed — the origin stayed up).
    assert result.pushes_suppressed > 0
    assert result.degraded_requests > 0
    assert result.failed_requests == 0
    assert result.availability == 1.0
    # Cold restart is visible as post-recovery warm-up tracking.
    assert sum(result.recovery_curve_requests) > 0


def test_crash_drops_cache_contents(workload):
    simulation = Simulation(workload, SimulationConfig(strategy="gdstar"))
    proxy = simulation.proxies[0]
    proxy.handle_publish(workload.pages[0].page_id, 0, 1000, 5, 0.0)
    proxy.handle_request(workload.pages[0].page_id, 0, 1000, 5, 1.0)
    assert proxy.policy.contains(workload.pages[0].page_id)
    proxy.crash(now=2.0)
    assert not proxy.up
    assert not proxy.policy.contains(workload.pages[0].page_id)
    with pytest.raises(RuntimeError, match="already down"):
        proxy.crash(now=3.0)
    proxy.recover(now=10.0)
    assert proxy.up
    assert proxy.downtime_seconds == pytest.approx(8.0)


def test_long_publisher_outage_fails_requests(workload):
    """Retries cannot bridge an hour-long outage: requests fail."""
    horizon = workload.config.horizon
    outage = Window(start=horizon * 0.4, end=horizon * 0.6)
    schedule = FaultSchedule(publisher_outages=[outage])
    result = Simulation(
        workload,
        SimulationConfig(strategy="gdstar"),
        fault_schedule=schedule,
    ).run()
    assert result.publisher_outage_seconds == pytest.approx(outage.duration)
    assert result.failed_requests > 0
    assert result.availability < 1.0
    availability = result.hourly_availability()
    down_hour = int((outage.start + outage.end) / 2 // 3600)
    assert min(availability) < 1.0
    assert availability[down_hour] < 1.0
    # Failed requests still count in the denominator.
    assert result.requests == workload.request_count


def test_retries_bridge_a_short_outage(workload):
    """An outage shorter than the backoff budget degrades but serves."""
    request = workload.requests[len(workload.requests) // 2]
    # Outage starts just before one request and ends 2 s later; the
    # capped exponential backoff (0.5 + 1 + 2 + 4 s) reaches past it.
    schedule = FaultSchedule(
        publisher_outages=[Window(start=request.time - 1e-3, end=request.time + 2.0)]
    )
    result = Simulation(
        workload,
        SimulationConfig(strategy="gdstar"),
        fault_schedule=schedule,
    ).run()
    assert result.failed_requests == 0
    assert result.availability == 1.0


def test_chaos_hurts_hit_ratio_but_metrics_stay_consistent(workload):
    healthy = run_simulation(workload, SimulationConfig(strategy="sub"))
    chaotic = run_simulation(
        workload, SimulationConfig(strategy="sub", chaos=ACTIVE_SPEC)
    )
    assert chaotic.hit_ratio <= healthy.hit_ratio
    assert chaotic.requests == workload.request_count
    assert chaotic.hits + chaotic.stale_hits <= chaotic.requests
    assert 0.0 <= chaotic.availability <= 1.0
    assert len(chaotic.hourly_failed) == chaotic.hour_count
    assert len(chaotic.hourly_degraded) == chaotic.hour_count
    assert sum(chaotic.hourly_failed) == chaotic.failed_requests
    assert sum(chaotic.hourly_degraded) == chaotic.degraded_requests
    assert "avail=" in chaotic.summary()
    assert "avail=" not in healthy.summary()


def test_drop_contents_supported_by_every_strategy(workload):
    from repro.core.registry import make_policy_lenient, strategy_names

    for name in strategy_names():
        policy = make_policy_lenient(
            name, capacity_bytes=10_000, cost=4.0, beta=2.0
        )
        policy.on_publish(1, 0, 500, 3, 0.0)
        policy.on_request(1, 0, 500, 3, 1.0)
        assert policy.contains(1), name
        policy.drop_contents()
        assert not policy.contains(1), name
        # Still functional after the cold restart.
        policy.on_request(1, 0, 500, 3, 2.0)
        policy.check_invariants()
