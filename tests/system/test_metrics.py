"""Tests for SimulationResult and HourlySeries."""

import pytest

from repro.system.metrics import HourlySeries, SimulationResult


def make_result(**overrides):
    fields = dict(
        strategy="sg2",
        trace_label="news",
        capacity_fraction=0.05,
        subscription_quality=1.0,
        pushing_scheme="when-necessary",
        requests=100,
        hits=60,
        stale_hits=5,
        push_transfers=30,
        push_bytes=3000,
        fetch_pages=40,
        fetch_bytes=4000,
        hour_count=3,
        hourly_requests=[50, 30, 20],
        hourly_hits=[40, 15, 5],
        hourly_push_pages=[10, 10, 10],
        hourly_fetch_pages=[10, 20, 10],
        hourly_push_bytes=[1000, 1000, 1000],
        hourly_fetch_bytes=[1000, 2000, 1000],
    )
    fields.update(overrides)
    return SimulationResult(**fields)


def test_hit_ratio():
    assert make_result().hit_ratio == pytest.approx(0.6)
    assert make_result(requests=0, hits=0).hit_ratio == 0.0


def test_traffic_totals():
    result = make_result()
    assert result.traffic_pages == 70
    assert result.traffic_bytes == 7000


def test_hourly_hit_ratio():
    result = make_result()
    assert result.hourly_hit_ratio() == [
        pytest.approx(0.8),
        pytest.approx(0.5),
        pytest.approx(0.25),
    ]


def test_hourly_hit_ratio_empty_hour():
    result = make_result(hourly_requests=[0, 30, 20], hourly_hits=[0, 15, 5])
    assert result.hourly_hit_ratio()[0] == 0.0


def test_hourly_traffic():
    result = make_result()
    assert result.hourly_traffic_pages() == [20, 30, 20]
    assert result.hourly_traffic_bytes() == [2000, 3000, 2000]


def test_summary_mentions_key_fields():
    text = make_result().summary()
    assert "sg2" in text
    assert "news" in text
    assert "60.00%" in text


def test_hourly_series():
    series = HourlySeries()
    series.add(0, 1.0)
    series.add(0, 2.0)
    series.add(4, 5.0)
    assert series.dense(6) == [3.0, 0.0, 0.0, 0.0, 5.0, 0.0]


def test_mean_response_time():
    result = make_result(total_response_time=2.0)
    assert result.mean_response_time == pytest.approx(0.02)
    assert make_result(requests=0, hits=0).mean_response_time == 0.0


def test_summary_includes_response_time():
    assert "rt=" in make_result(total_response_time=2.0).summary()


def test_hourly_series_clamps_horizon_boundary():
    # An event landing at exactly hour_count (e.g. a backed-off retry
    # resolving right at the end of the run) must not be dropped: it
    # folds into the final bucket so all hourly lists share one length.
    series = HourlySeries()
    series.add(0, 1.0)
    series.add(3, 7.0)  # == hour_count
    series.add(5, 2.0)  # beyond the horizon
    assert series.dense(3) == [1.0, 0.0, 9.0]


def test_hourly_series_clamps_negative_hours():
    series = HourlySeries()
    series.add(-2, 4.0)
    series.add(1, 1.0)
    assert series.dense(2) == [4.0, 1.0]


def test_hourly_series_empty_horizon():
    series = HourlySeries()
    series.add(0, 1.0)
    assert series.dense(0) == []
    assert series.dense(-1) == []


def test_dense_clamped_matches_series():
    from repro.system.metrics import dense_clamped

    assert dense_clamped({0: 1.0, 9: 2.0}, 4) == [1.0, 0.0, 0.0, 2.0]
    assert dense_clamped({}, 2) == [0.0, 0.0]
