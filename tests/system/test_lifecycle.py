"""Subscription lifecycle under churn: identity, determinism, repair.

The acceptance criteria of the lifecycle PR:

* churn disabled leaves every run bit-identical to the seed (all
  lifecycle metrics zero, no extra RNG stream derived);
* churn enabled is deterministic under a fixed seed and bit-identical
  between the agenda and fast replay engines;
* a chaos + delivery-fault + churn run completes, and no subscriber
  that keeps requesting permanently loses notifications — an access to
  a lapsed or stuck-pending cell always re-polls a confirmed lease
  (asserted exactly on a hand-built micro trace and at the manager
  level, and statistically on the macro run).
"""

import dataclasses

import numpy as np
import pytest

from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.lifecycle import (
    NEVER,
    RENEWAL_LATENCY_BIN_EDGES,
    LifecycleManager,
    SubscriberQueue,
    renewal_latency_bin,
)
from repro.system.simulator import Simulation, run_simulation
from repro.workload import generate_workload, news_config
from repro.workload.churn import ChurnSpec, LifecycleRecord
from repro.workload.config import WorkloadConfig
from repro.workload.trace import PageSpec, PublishRecord, RequestRecord, Workload

from tests.system.test_replay_fastpath import CHAOS, run_both, stripped

#: Aggressive churn so every lifecycle path fires at test scale.
CHURN = ChurnSpec(
    churn_rate=4.0,
    lease_duration=3 * 3600.0,
    renew_probability=0.6,
    confirmation_loss_probability=0.2,
)

#: Every scalar lifecycle counter on SimulationResult.
LIFECYCLE_COUNTERS = [
    "lifecycle_events",
    "leases_granted",
    "leases_renewed",
    "leases_expired",
    "leases_unsubscribed",
    "handshake_losses",
    "handshakes_abandoned",
    "lease_repolls",
    "handshake_repairs",
    "churn_stale_serves",
    "pushes_suppressed_no_lease",
    "active_leases_end",
    "pending_leases_end",
    "expired_leases_end",
    "lifecycle_queue_overflows",
    "lifecycle_queue_peak",
]


@pytest.fixture(scope="module")
def workload():
    return generate_workload(news_config(scale=0.03), RandomStreams(2), label="news")


@pytest.fixture(scope="module")
def churned(workload):
    return workload.with_churn(CHURN, RandomStreams(2).stream("workload.churn"))


# ---------------------------------------------------------------------------
# churn off: the layer does not exist
# ---------------------------------------------------------------------------


def test_lifecycle_fields_zero_without_churn(workload):
    result = run_simulation(workload, SimulationConfig(strategy="sub"))
    for name in LIFECYCLE_COUNTERS:
        assert getattr(result, name) == 0, name
    assert result.renewal_latency_bin_edges == []
    assert result.renewal_latency_counts == []
    assert result.lease_repair_ratio == 1.0  # nothing broke
    assert "leases=" not in result.summary()


def test_attaching_churn_does_not_disturb_the_base_workload(workload):
    """``with_churn`` returns a copy; the original trace — and a run on
    it — is byte-for-byte what it was before the lifecycle layer
    existed (the cached-trace contract of ``run_cell``)."""
    before = run_simulation(workload, SimulationConfig(strategy="dc-lap"))
    churned = workload.with_churn(CHURN, RandomStreams(2).stream("workload.churn"))
    assert churned is not workload and churned.lifecycle
    assert workload.lifecycle == [] and workload.churn is None
    after = run_simulation(workload, SimulationConfig(strategy="dc-lap"))
    assert stripped(before) == stripped(after)


# ---------------------------------------------------------------------------
# churn on: deterministic and engine-identical
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["dc-ap", "dc-lap", "gdstar", "sub"])
def test_bit_identity_across_engines_with_churn(churned, strategy):
    legacy, fast = run_both(churned, strategy=strategy)
    assert legacy.lifecycle_events == len(churned.lifecycle)
    assert legacy.leases_granted > 0
    assert legacy.leases_expired > 0
    assert legacy.handshake_losses > 0  # the loss probability bites
    assert stripped(legacy) == stripped(fast)


def test_churn_run_is_seed_deterministic(churned):
    config = SimulationConfig(strategy="dc-lap")
    first = run_simulation(churned, config)
    second = run_simulation(churned, config)
    assert stripped(first) == stripped(second)


def test_chaos_delivery_churn_completes_and_repairs(churned):
    """The full stack — crash/restart chaos, lossy delivery, churn —
    stays engine-identical, and lapsed cells that are touched again get
    repaired on access (the re-poll path actually fires)."""
    legacy, fast = run_both(churned, strategy="dc-lap", chaos=CHAOS)
    assert stripped(legacy) == stripped(fast)
    assert legacy.proxy_crashes > 0
    assert legacy.notifications_sent > 0
    assert legacy.leases_expired > 0
    assert legacy.lease_repolls + legacy.handshake_repairs > 0
    assert legacy.pushes_suppressed_no_lease > 0
    # End-of-run census covers every cell that ever subscribed.
    census = (
        legacy.active_leases_end
        + legacy.pending_leases_end
        + legacy.expired_leases_end
    )
    assert census > 0
    assert 0.0 <= legacy.lease_repair_ratio <= 1.0


def test_summary_mentions_leases_when_churned(churned):
    result = run_simulation(churned, SimulationConfig(strategy="sub"))
    assert "leases=" in result.summary()
    assert result.renewal_latency_bin_edges == RENEWAL_LATENCY_BIN_EDGES
    assert sum(result.renewal_latency_counts) > 0


# ---------------------------------------------------------------------------
# micro trace: exact no-permanent-loss accounting
# ---------------------------------------------------------------------------


def micro_workload():
    """One page, two proxies, one lease that silently lapses.

    Timeline (lease granted at t=0 for 120 s, never renewed):

    ====  =====================================================
    t     event
    ====  =====================================================
    0     subscribe(proxy 0, lease 120) *and* publish v0 — the
          lifecycle record wins the tie, so v0 is deliverable
    50    request: lease healthy, no repair
    100   publish v1: delivered (lease valid until 120)
    200   publish v2: suppressed — the lease silently expired
    250   request: re-poll repair; the cached copy is behind
          (v1 < v2), so the miss is a churn stale serve and the
          proxy comes back with the current version
    300   publish v3: delivered again (repaired lease)
    ====  =====================================================
    """
    config = WorkloadConfig(
        horizon=1000.0,
        distinct_pages=1,
        modified_pages=1,
        total_requests=2,
        server_count=2,
    )
    pages = [
        PageSpec(
            page_id=0,
            size=100,
            rank=0,
            popularity_class=0,
            request_count=2,
            first_publish=0.0,
            modification_interval=100.0,
            version_count=4,
        )
    ]
    publishes = [
        PublishRecord(time=0.0, page_id=0, version=0),
        PublishRecord(time=100.0, page_id=0, version=1),
        PublishRecord(time=200.0, page_id=0, version=2),
        PublishRecord(time=300.0, page_id=0, version=3),
    ]
    requests = [
        RequestRecord(time=50.0, server_id=0, page_id=0),
        RequestRecord(time=250.0, server_id=0, page_id=0),
    ]
    lifecycle = [
        LifecycleRecord(time=0.0, server_id=0, page_id=0, kind="subscribe", lease=120.0)
    ]
    return Workload(
        config=config,
        pages=pages,
        publishes=publishes,
        requests=requests,
        label="micro",
        lifecycle=lifecycle,
        churn=ChurnSpec(),
    )


@pytest.mark.parametrize("replay", ["agenda", "fast"])
def test_micro_trace_exact_lifecycle_accounting(replay):
    workload = micro_workload()
    config = SimulationConfig(
        strategy="sub", capacity_fraction=1.0, replay=replay
    )
    simulation = Simulation(
        workload, config, match_table=TraceMatchCounts({0: {0: 5}})
    )
    result = simulation.run()
    assert result.lifecycle_events == 1
    assert result.leases_granted == 1
    assert result.leases_expired == 1
    # Exactly the t=200 publish was suppressed; t=0/100/300 got through.
    assert result.pushes_suppressed_no_lease == 1
    # The t=250 access repaired the lapsed lease on the spot...
    assert result.lease_repolls == 1
    assert result.handshake_repairs == 0
    # ... and found the cached copy behind the origin: the missed
    # notification had real cost, but the request still came back with
    # the current version — no permanent loss.
    assert result.churn_stale_serves == 1
    assert result.active_leases_end == 1
    assert result.expired_leases_end == 0
    # Draw-free handshake: no losses, no queue activity.
    assert result.handshake_losses == 0
    assert result.lifecycle_queue_peak == 0


def test_micro_trace_engine_identity():
    runs = []
    for replay in ("agenda", "fast"):
        simulation = Simulation(
            micro_workload(),
            SimulationConfig(strategy="sub", capacity_fraction=1.0, replay=replay),
            match_table=TraceMatchCounts({0: {0: 5}}),
        )
        runs.append(stripped(simulation.run()))
    assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# manager-level: handshake loss, abandonment, queues, repair
# ---------------------------------------------------------------------------


def manager(rng=None, **kwargs):
    defaults = dict(confirmation_loss_probability=0.0)
    defaults.update(kwargs)
    return LifecycleManager(ChurnSpec(**defaults), server_count=2, rng=rng)


def sub(time, lease=100.0, server=0, page=0, kind="subscribe"):
    return LifecycleRecord(
        time=time, server_id=server, page_id=page, kind=kind, lease=lease
    )


class TestManager:
    def test_lossless_lifecycle(self):
        m = manager()
        assert m.deliverable(0, 0, 0.0) == (False, "no-lease")
        m.on_event(sub(0.0, lease=100.0), 0.0)
        assert m.deliverable(0, 0, 10.0) == (True, "")
        m.on_event(sub(90.0, lease=100.0, kind="renew"), 90.0)
        assert m.deliverable(0, 0, 150.0) == (True, "")
        assert m.deliverable(0, 0, 190.1) == (False, "lease-expired")
        assert m.granted == 1 and m.renewed == 1 and m.expired == 1

    def test_unsubscribe_gates_delivery(self):
        m = manager()
        m.on_event(sub(0.0), 0.0)
        m.on_event(sub(10.0, kind="unsubscribe", lease=0.0), 10.0)
        assert m.deliverable(0, 0, 20.0) == (False, "unsubscribed")
        assert m.on_access(0, 0, 20.0) is None  # gone means gone

    def test_expired_lease_repaired_on_access(self):
        m = manager()
        m.on_event(sub(0.0, lease=50.0), 0.0)
        assert m.deliverable(0, 0, 60.0) == (False, "lease-expired")
        assert m.on_access(0, 0, 70.0) == "expired"
        assert m.lease_repolls == 1
        assert m.deliverable(0, 0, 80.0) == (True, "")
        # Repaired lease has the nominal duration (no RNG draw).
        assert m.deliverable(0, 0, 70.0 + m.spec.lease_duration - 1.0) == (True, "")

    def test_abandoned_handshake_repaired_on_access(self):
        m = manager(
            rng=np.random.default_rng(0),
            confirmation_loss_probability=1.0,
            confirm_retry_limit=2,
        )
        m.on_event(sub(0.0, lease=1000.0), 0.0)
        assert m.handshake_losses == 3  # initial attempt + 2 retries
        assert m.handshakes_abandoned == 1
        assert m.deliverable(0, 0, 500.0) == (False, "lease-pending")
        assert m.on_access(0, 0, 500.0) == "handshake"
        assert m.handshake_repairs == 1
        assert m.deliverable(0, 0, 501.0) == (True, "")

    def test_pending_promotes_once_confirmation_lands(self):
        # loss = 0.5 with this seed: first draw is a loss, second
        # confirms — the lease stays pending for one backoff step.
        rng = np.random.default_rng(1)
        m = manager(
            rng=rng,
            confirmation_loss_probability=0.5,
            confirm_timeout=2.0,
        )
        m.on_event(sub(0.0, lease=1000.0), 0.0)
        if m.handshake_losses:
            allowed, reason = m.deliverable(0, 0, 0.5)
            assert (allowed, reason) == (False, "lease-pending")
        assert m.deliverable(0, 0, 200.0) == (True, "")

    def test_queue_overflow_sheds_handshakes(self):
        m = manager(
            rng=np.random.default_rng(0),
            confirmation_loss_probability=1.0,
            confirm_retry_limit=3,
            queue_limit=1,
        )
        m.on_event(sub(0.0, page=0), 0.0)  # occupies the single slot
        m.on_event(sub(0.0, page=1), 0.0)  # shed at admission
        assert m.handshakes_abandoned == 2
        assert m.queue_overflows == 1
        assert m.queue_peak == 1
        # The shed handshake lost only its first attempt.
        assert m.handshake_losses == (m.spec.confirm_retry_limit + 1) + 1

    def test_finalize_census(self):
        m = manager()
        m.on_event(sub(0.0, lease=50.0, page=0), 0.0)    # will expire
        m.on_event(sub(0.0, lease=1e9, page=1), 0.0)     # stays active
        m.on_event(sub(0.0, lease=50.0, page=2), 0.0)
        m.on_event(sub(10.0, kind="unsubscribe", lease=0.0, page=2), 10.0)
        census = m.finalize(horizon=1000.0)
        assert census == {
            "active": 1, "pending": 0, "expired": 1, "unsubscribed": 1
        }
        assert m.expired == 1  # counted exactly once, by finalize


class TestSubscriberQueue:
    def test_admit_drain_peak(self):
        queue = SubscriberQueue(limit=2)
        queue.admit(10.0)
        queue.admit(5.0)
        assert queue.full and queue.peak == 2
        queue.drain(5.0)  # resolve_at <= now frees the slot
        assert len(queue) == 1 and not queue.full
        queue.drain(100.0)
        assert len(queue) == 0
        assert queue.peak == 2  # peak is sticky


def test_renewal_latency_bins():
    assert renewal_latency_bin(0.0) == 0
    assert renewal_latency_bin(0.5) == 0
    assert renewal_latency_bin(3.0) == 3
    assert renewal_latency_bin(1e9) == len(RENEWAL_LATENCY_BIN_EDGES)
    assert NEVER == float("inf")
