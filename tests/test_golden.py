"""Golden regression tests.

Fixed seed, fixed scale — these pin down exact end-to-end numbers so
that any unintended behavioural change in the workload generator, the
policies or the simulator shows up as a diff.  If a change is
*intentional* (a documented model change), regenerate the constants
with::

    python -m tests.test_golden
"""

import pytest

from repro.sim.rng import RandomStreams
from repro.system.config import SimulationConfig
from repro.system.simulator import run_simulation
from repro.workload import generate_workload, news_config

SCALE = 0.05
SEED = 13

#: strategy -> (hits, push_transfers, fetch_pages); regenerate via
#: ``python -m tests.test_golden`` after an intentional model change.
GOLDEN = {
    "gdstar": (7299, 0, 2451),
    "sub": (8206, 1998, 1544),
    "sg2": (8678, 1997, 1072),
    "dc-lap": (7670, 1932, 2080),
}


def _compute():
    workload = generate_workload(
        news_config(scale=SCALE), RandomStreams(SEED), label="news"
    )
    out = {}
    for strategy in GOLDEN:
        result = run_simulation(
            workload,
            SimulationConfig(strategy=strategy, capacity_fraction=0.05, seed=SEED),
        )
        out[strategy] = (result.hits, result.push_transfers, result.fetch_pages)
    return out


@pytest.fixture(scope="module")
def measured():
    return _compute()


@pytest.mark.parametrize("strategy", sorted(GOLDEN))
def test_golden_values(measured, strategy):
    assert measured[strategy] == GOLDEN[strategy], (
        f"{strategy} changed: {measured[strategy]} != golden "
        f"{GOLDEN[strategy]}; if intentional, regenerate with "
        f"`python -m tests.test_golden`"
    )


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    print("GOLDEN = {")
    for strategy, values in _compute().items():
        print(f'    "{strategy}": {values},')
    print("}")
