"""Every example script must run end to end.

Executed in-process via runpy with a scaled-down argv where the script
accepts one, so the suite stays fast while the examples stay green.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "improves the global hit ratio" in out


def test_news_site(capsys):
    run_example("news_site.py", ["--scale", "0.03", "--seed", "3"])
    out = capsys.readouterr().out
    assert "Figure 4a" in out and "Table 2" in out


def test_live_broker(capsys):
    run_example("live_broker.py")
    out = capsys.readouterr().out
    assert "published pages" in out
    assert "served from proxy caches" in out


def test_custom_policy(capsys):
    run_example("custom_policy.py")
    out = capsys.readouterr().out
    assert "sub-lru" in out


def test_subscription_quality(capsys):
    run_example("subscription_quality.py", ["--scale", "0.03", "--seed", "3"])
    out = capsys.readouterr().out
    assert "Most SQ-sensitive strategy" in out


def test_distributed_broker(capsys):
    run_example("distributed_broker.py")
    out = capsys.readouterr().out
    assert "mismatches vs centralized   : 0" in out
    assert "cooperative proxies" in out


def test_all_examples_are_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    covered = {
        "quickstart.py",
        "news_site.py",
        "live_broker.py",
        "custom_policy.py",
        "subscription_quality.py",
        "distributed_broker.py",
    }
    assert scripts == covered, f"untested examples: {scripts - covered}"
