"""Tests for the on-disk artifact cache and its runner/CLI wiring."""

import dataclasses
import json
import os

import pytest

from repro.experiments import runner
from repro.experiments.artifacts import (
    FORMAT_VERSION,
    ArtifactCache,
    cached_match_table,
    cached_topology,
    cached_trace,
)
from repro.experiments.spec import CellKey
from repro.network.topology import Topology, build_topology
from repro.pubsub.matching import TraceMatchCounts
from repro.sim.rng import RandomStreams
from repro.workload.presets import make_trace
from repro.workload.trace import Workload

SCALE = 0.02
SEED = 3


@pytest.fixture(autouse=True)
def fresh_memo():
    """Each test sees cold in-process memos (disk state is its own)."""
    runner.clear_caches()
    yield
    runner.clear_caches()
    runner.set_default_artifact_dir(None)


def test_trace_round_trips_through_cache(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    first = cached_trace(cache, "news", SCALE, SEED)
    assert cache.misses == 1 and cache.hits == 0
    second = cached_trace(cache, "news", SCALE, SEED)
    assert cache.hits == 1
    assert dataclasses.asdict(first.config) == dataclasses.asdict(second.config)
    assert first.pages == second.pages
    assert first.publishes == second.publishes
    assert first.requests == second.requests
    assert first.label == second.label


def test_match_table_and_topology_round_trip(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    workload = make_trace("news", scale=SCALE, seed=SEED)
    table = cached_match_table(cache, workload, "news", SCALE, SEED, 1.0, 1.0)
    again = cached_match_table(cache, workload, "news", SCALE, SEED, 1.0, 1.0)
    assert table._table == again._table
    topology = cached_topology(cache, workload.config.server_count, SEED, "waxman", 20)
    reloaded = cached_topology(
        cache, workload.config.server_count, SEED, "waxman", 20
    )
    assert topology.fetch_costs() == reloaded.fetch_costs()
    assert cache.hits == 2


def test_distinct_params_get_distinct_entries(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    a = cache.path("trace", {"trace": "news", "scale": 0.02, "seed": 3})
    b = cache.path("trace", {"trace": "news", "scale": 0.02, "seed": 4})
    c = cache.path("trace", {"trace": "alternative", "scale": 0.02, "seed": 3})
    assert len({a, b, c}) == 3


def test_format_version_bump_invalidates(tmp_path):
    """An entry written at version N is invisible to version N+1."""
    cache = ArtifactCache(str(tmp_path))
    cached_trace(cache, "news", SCALE, SEED)
    bumped = ArtifactCache(str(tmp_path), format_version=FORMAT_VERSION + 1)
    assert bumped.load_text(
        "trace", {"trace": "news", "scale": SCALE, "seed": SEED}
    ) is None
    cached_trace(bumped, "news", SCALE, SEED)
    assert bumped.misses == 1 and bumped.hits == 0
    # Both versions' entries now coexist; neither shadows the other.
    assert cache.load_text(
        "trace", {"trace": "news", "scale": SCALE, "seed": SEED}
    ) is not None


def test_corrupt_entry_regenerated(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    cached_trace(cache, "news", SCALE, SEED)
    path = cache.path("trace", {"trace": "news", "scale": SCALE, "seed": SEED})
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    workload = cached_trace(cache, "news", SCALE, SEED)
    assert workload.request_count > 0
    assert cache.misses == 2
    # The regenerated entry replaced the corrupt one.
    with open(path, "r", encoding="utf-8") as handle:
        json.loads(handle.read())


def test_clear_removes_entries(tmp_path):
    cache = ArtifactCache(str(tmp_path))
    cached_trace(cache, "news", SCALE, SEED)
    assert cache.clear() >= 1
    assert cache.load_text(
        "trace", {"trace": "news", "scale": SCALE, "seed": SEED}
    ) is None


def test_run_cell_same_result_with_and_without_cache(tmp_path):
    key = CellKey("news", "sg2", 0.05)
    plain = runner.run_cell(key, scale=SCALE, seed=SEED)
    runner.clear_caches()
    cold = runner.run_cell(key, scale=SCALE, seed=SEED, artifact_dir=str(tmp_path))
    runner.clear_caches()
    warm = runner.run_cell(key, scale=SCALE, seed=SEED, artifact_dir=str(tmp_path))

    def stripped(result):
        payload = dataclasses.asdict(result)
        payload.pop("wall_seconds")
        payload.pop("profile")
        return payload

    assert stripped(plain) == stripped(cold) == stripped(warm)
    # All three artifact kinds landed on disk.
    kinds = sorted(os.listdir(tmp_path))
    assert kinds == ["match-table", "topology", "trace"]


def test_default_artifact_dir_used(tmp_path):
    runner.set_default_artifact_dir(str(tmp_path))
    runner.run_cell(CellKey("news", "gdstar", 0.05), scale=SCALE, seed=SEED)
    assert os.path.isdir(tmp_path / "trace")


def test_workload_json_round_trip_equality():
    """Workload.to_json/from_json is lossless."""
    workload = make_trace("news", scale=SCALE, seed=SEED)
    clone = Workload.from_json(workload.to_json())
    assert clone.config == workload.config
    assert clone.pages == workload.pages
    assert clone.publishes == workload.publishes
    assert clone.requests == workload.requests
    assert clone.label == workload.label
    # And the round trip is a fixed point at the text level.
    assert clone.to_json() == workload.to_json()


def test_match_table_json_round_trip():
    table = TraceMatchCounts({1: {0: 3, 2: 1}, 7: {4: 2}})
    clone = TraceMatchCounts.from_json(table.to_json())
    assert clone._table == table._table


def test_topology_json_round_trip():
    topology = build_topology(
        12, RandomStreams(5).stream("topology"), model="waxman", extra_nodes=6
    )
    clone = Topology.from_json(topology.to_json())
    assert clone.publisher_node == topology.publisher_node
    assert clone.proxy_nodes == topology.proxy_nodes
    assert clone.fetch_costs() == topology.fetch_costs()
    assert clone.graph.edge_count == topology.graph.edge_count
