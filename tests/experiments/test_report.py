"""Tests for text rendering."""

from repro.experiments.report import render_series, render_table, sparkline


def test_render_table_alignment():
    text = render_table(
        "Title",
        ["1%", "5%"],
        {"gdstar": [21.0, 40.5], "sg2": [30.0, 60.25]},
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "gdstar" in text and "sg2" in text
    assert "40.5" in text
    # all data rows equally wide
    widths = {len(line) for line in lines[1:] if "|" in line or "-" in line}
    assert len(widths) <= 2


def test_render_table_none_values():
    text = render_table("T", ["a"], {"row": [None]})
    assert "-" in text


def test_sparkline_levels():
    line = sparkline([0.0, 50.0, 100.0], maximum=100.0)
    assert len(line) == 3
    assert line[0] == " " and line[-1] == "█"


def test_sparkline_empty_and_zero():
    assert sparkline([]) == ""
    assert sparkline([0.0, 0.0]) == "  "


def test_render_series_includes_mean():
    text = render_series("S", {"gd": [10.0, 20.0, 30.0]}, maximum=100.0)
    assert "mean=" in text
    assert "20.00" in text


def test_render_series_sampling():
    text = render_series("S", {"x": list(range(100))}, sample_every=10)
    data_line = text.splitlines()[1]
    spark = data_line.rsplit("| ", 1)[1]
    assert len(spark) == 10
