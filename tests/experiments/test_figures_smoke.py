"""Smoke tests: every figure/table function runs at tiny scale and
produces structurally correct output."""

import pytest

from repro.experiments.figures import (
    CAPACITIES,
    MAIN_STRATEGIES,
    SQS,
    beta_sweep,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.tables import TABLE2_STRATEGIES, table2

SCALE = 0.03
SEED = 3


def test_figure3_shape():
    result = figure3(scale=SCALE, seed=SEED)
    assert set(result.data) == {"gdstar", "dm", "dc-fp", "dc-ap", "dc-lap"}
    for values in result.data.values():
        assert len(values) == len(CAPACITIES)
        assert all(0.0 <= v <= 100.0 for v in values)
    assert "Figure 3" in result.text


def test_figure4_both_traces():
    panels = figure4(scale=SCALE, seed=SEED)
    assert set(panels) == {"news", "alternative"}
    for panel in panels.values():
        assert set(panel.data) == set(MAIN_STRATEGIES)
        for values in panel.data.values():
            assert len(values) == len(CAPACITIES)


def test_figure5_sq_sweep():
    panels = figure5(scale=SCALE, seed=SEED)
    for panel in panels.values():
        for values in panel.data.values():
            assert len(values) == len(SQS)
    # GD* ignores subscriptions: its row must be flat across SQ.
    news = panels["news"].data["gdstar"]
    assert max(news) - min(news) < 1e-9


def test_figure6_hourly_series():
    panels = figure6(scale=SCALE, seed=SEED)
    for panel in panels.values():
        assert set(panel.data) == {"sg2", "sub", "gdstar"}
        for series in panel.data.values():
            assert len(series) == 169  # 7 days + boundary hour
            assert all(0.0 <= v <= 100.0 for v in series)


def test_figure7_two_schemes():
    panels = figure7(scale=SCALE, seed=SEED)
    assert set(panels) == {"always", "when-necessary"}
    always = sum(panels["always"].data["sub"])
    necessary = sum(panels["when-necessary"].data["sub"])
    assert always >= necessary  # always-pushing wastes transfers
    # GD* traffic identical across pushing schemes (no pushes at all).
    assert panels["always"].data["gdstar"] == pytest.approx(
        panels["when-necessary"].data["gdstar"]
    )


def test_beta_sweep():
    result = beta_sweep(scale=SCALE, seed=SEED, betas=(0.5, 2.0))
    assert set(result.data) == {"gdstar", "sg1", "sg2"}
    for values in result.data.values():
        assert len(values) == 2


def test_table2_structure():
    result = table2(scale=SCALE, seed=SEED)
    assert set(result.improvements) == {1.5, 1.0}
    for per_alpha in result.improvements.values():
        assert set(per_alpha) == set(TABLE2_STRATEGIES)
    assert "Table 2" in result.text
    assert "paper" in result.text
