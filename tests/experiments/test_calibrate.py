"""Tests for β calibration (§5.1)."""

import pytest

from repro.experiments.calibrate import (
    DEFAULT_BETAS,
    calibrate_all,
    calibrate_beta,
    trace_prefix,
)
from repro.workload.presets import make_trace


@pytest.fixture(scope="module")
def trace():
    return make_trace("news", scale=0.03, seed=3)


def test_trace_prefix_truncates_both_streams(trace):
    prefix = trace_prefix(trace, 0.5)
    cutoff = trace.config.horizon * 0.5
    assert prefix.config.horizon == cutoff
    assert all(event.time <= cutoff for event in prefix.publishes)
    assert all(record.time <= cutoff for record in prefix.requests)
    assert prefix.request_count < trace.request_count
    assert prefix.pages == trace.pages  # page metadata shared


def test_trace_prefix_full_is_identity(trace):
    assert trace_prefix(trace, 1.0) is trace


def test_trace_prefix_validation(trace):
    with pytest.raises(ValueError):
        trace_prefix(trace, 0.0)
    with pytest.raises(ValueError):
        trace_prefix(trace, 1.5)


def test_calibrate_beta_returns_grid_member(trace):
    result = calibrate_beta(trace, "gdstar", betas=(0.5, 2.0), prefix_fraction=0.3)
    assert result.best_beta in (0.5, 2.0)
    assert set(result.prefix_scores) == {0.5, 2.0}
    assert all(0.0 <= score <= 1.0 for score in result.prefix_scores.values())
    assert result.verified_hit_ratio is None


def test_calibrate_beta_best_is_argmax(trace):
    result = calibrate_beta(trace, "sg2", betas=(0.25, 1.0, 4.0), prefix_fraction=0.3)
    best_score = result.prefix_scores[result.best_beta]
    assert best_score == max(result.prefix_scores.values())


def test_calibrate_with_verification(trace):
    result = calibrate_beta(
        trace, "gdstar", betas=(2.0,), prefix_fraction=0.25, verify=True
    )
    assert result.verified_hit_ratio is not None
    assert 0.0 <= result.verified_hit_ratio <= 1.0


def test_calibrate_all_covers_strategies(trace):
    results = calibrate_all(
        trace, strategies=("gdstar", "sg2"), betas=(0.5, 2.0), prefix_fraction=0.3
    )
    assert set(results) == {"gdstar", "sg2"}


def test_default_betas_match_paper_range():
    assert DEFAULT_BETAS[0] == 0.0625
    assert DEFAULT_BETAS[-1] == 4.0
