"""Tests for the experiment grid machinery."""

import pytest

from repro.experiments.runner import paper_beta, run_cell, run_grid, trace_for
from repro.experiments.spec import CellKey, ExperimentGrid, GridResult

SCALE = 0.03


def test_grid_cells_cartesian():
    grid = ExperimentGrid(
        traces=("news", "alternative"),
        strategies=("gdstar", "sub"),
        capacities=(0.01, 0.05),
        sqs=(0.5, 1.0),
    )
    cells = grid.cells()
    assert len(cells) == grid.cell_count == 16
    assert len(set(cells)) == 16


def test_cell_key_str():
    key = CellKey("news", "sg2", 0.05)
    assert "news" in str(key) and "sg2" in str(key)


def test_trace_for_memoized():
    a = trace_for("news", SCALE, 3)
    b = trace_for("news", SCALE, 3)
    assert a is b


def test_run_cell_produces_result():
    result = run_cell(CellKey("news", "gdstar", 0.05), scale=SCALE, seed=3)
    assert result.requests > 0
    assert result.strategy == "gdstar"


def test_run_grid_and_lookup():
    grid = ExperimentGrid(strategies=("gdstar", "sub"), capacities=(0.05,))
    outcome = run_grid(grid, scale=SCALE, seed=3)
    assert isinstance(outcome, GridResult)
    assert outcome.hit_ratio(strategy="gdstar") >= 0.0
    sub = outcome.get(strategy="sub")
    assert sub.strategy == "sub"


def test_grid_result_relative_improvement():
    grid = ExperimentGrid(strategies=("gdstar", "sg2"), capacities=(0.05,))
    outcome = run_grid(grid, scale=SCALE, seed=3)
    relative = outcome.relative_improvement(strategy="sg2")
    expected = outcome.hit_ratio(strategy="sg2") / outcome.hit_ratio(
        strategy="gdstar"
    ) - 1.0
    assert relative == pytest.approx(expected)


def test_grid_result_ambiguous_lookup_raises():
    grid = ExperimentGrid(strategies=("gdstar", "sub"), capacities=(0.01, 0.05))
    outcome = run_grid(grid, scale=SCALE, seed=3)
    with pytest.raises(KeyError):
        outcome.get(strategy="sub")  # capacity ambiguous


def test_run_grid_progress_callback():
    grid = ExperimentGrid(strategies=("gdstar",), capacities=(0.05,))
    seen = []
    run_grid(grid, scale=SCALE, seed=3, progress=lambda key, res: seen.append(key))
    assert len(seen) == 1


def test_paper_beta_rules():
    assert paper_beta("news", "gdstar", 0.05) == 2.0
    assert paper_beta("news", "sg2", 0.01) == 2.0
    assert paper_beta("alternative", "sg2", 0.05) == 0.5
    assert paper_beta("alternative", "gdstar", 0.01) == 1.0
    assert paper_beta("alternative", "sg1", 0.10) == 2.0


def test_run_grid_parallel_matches_serial():
    grid = ExperimentGrid(strategies=("gdstar", "sub"), capacities=(0.05,))
    serial = run_grid(grid, scale=SCALE, seed=3, workers=1)
    parallel = run_grid(grid, scale=SCALE, seed=3, workers=2)
    for key in grid.cells():
        assert serial.results[key].hits == parallel.results[key].hits
        assert (
            serial.results[key].push_transfers
            == parallel.results[key].push_transfers
        )


def test_run_grid_parallel_progress_and_options_forwarded():
    """Workers>1: progress fires once per cell as cells complete, and
    strategy_options/beta reach the pool workers."""
    grid = ExperimentGrid(strategies=("gdstar", "sg2"), capacities=(0.05,))
    seen = []
    parallel = run_grid(
        grid,
        scale=SCALE,
        seed=3,
        beta=0.5,
        strategy_options={"beta": 0.5},
        progress=lambda key, result: seen.append(key),
        workers=2,
    )
    assert sorted(map(str, seen)) == sorted(map(str, grid.cells()))
    serial = run_grid(
        grid, scale=SCALE, seed=3, beta=0.5, strategy_options={"beta": 0.5}
    )
    for key in grid.cells():
        assert serial.results[key].hits == parallel.results[key].hits


def test_run_grid_serial_forwards_strategy_options():
    """An explicit beta in strategy_options overrides the paper default
    in both the serial and pooled paths."""
    grid = ExperimentGrid(strategies=("sg2",), capacities=(0.05,))
    default = run_grid(grid, scale=SCALE, seed=3)
    overridden = run_grid(grid, scale=SCALE, seed=3, strategy_options={"beta": 0.01})
    key = grid.cells()[0]
    assert default.results[key].requests == overridden.results[key].requests
