"""Tests for the SVG figure renderer."""

import xml.dom.minidom

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.svg import (
    PALETTE,
    figure_to_svg,
    grouped_bar_chart,
    line_chart,
)


def parse(svg_text):
    return xml.dom.minidom.parseString(svg_text)


def test_bar_chart_is_valid_xml():
    svg = grouped_bar_chart(
        "Fig", ["1%", "5%"], {"gdstar": [20.0, 40.0], "sg2": [30.0, 60.0]}
    )
    document = parse(svg)
    assert document.documentElement.tagName == "svg"


def test_bar_chart_one_rect_per_bar():
    svg = grouped_bar_chart(
        "Fig", ["a", "b", "c"], {"x": [1.0, 2.0, 3.0], "y": [4.0, 5.0, 6.0]}
    )
    rects = parse(svg).getElementsByTagName("rect")
    # 1 background + 2 legend swatches + 6 bars
    assert len(rects) == 1 + 2 + 6


def test_bar_chart_skips_none_values():
    svg = grouped_bar_chart("Fig", ["a", "b"], {"x": [1.0, None]})
    rects = parse(svg).getElementsByTagName("rect")
    assert len(rects) == 1 + 1 + 1  # background + legend + one bar


def test_bar_heights_proportional():
    svg = grouped_bar_chart("Fig", ["a"], {"half": [50.0], "full": [100.0]}, y_max=100.0)
    bars = [
        rect
        for rect in parse(svg).getElementsByTagName("rect")
        if rect.getElementsByTagName("title")
    ]
    heights = [float(rect.getAttribute("height")) for rect in bars]
    assert heights[1] == pytest.approx(2 * heights[0], rel=0.01)


def test_bar_values_clamped_to_axis():
    svg = grouped_bar_chart("Fig", ["a"], {"over": [150.0]}, y_max=100.0)
    bars = [
        rect
        for rect in parse(svg).getElementsByTagName("rect")
        if rect.getElementsByTagName("title")
    ]
    assert float(bars[0].getAttribute("height")) <= 360.0


def test_line_chart_polylines():
    svg = line_chart("Fig", {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]})
    lines = parse(svg).getElementsByTagName("polyline")
    assert len(lines) == 2
    points = lines[0].getAttribute("points").split()
    assert len(points) == 3


def test_line_chart_auto_scale():
    svg = line_chart("Fig", {"a": [10.0, 200.0]})
    assert "200" in svg or "220" in svg  # y-axis covers the peak


def test_title_escaping():
    svg = grouped_bar_chart("a < b & c", ["x"], {"s": [1.0]})
    assert "a &lt; b &amp; c" in svg
    parse(svg)


def test_figure_to_svg_dispatch():
    figure = FigureResult(name="f", data={"s": [1.0, 2.0]})
    bars = figure_to_svg(figure, kind="bars", column_names=["a", "b"])
    lines = figure_to_svg(figure, kind="lines")
    parse(bars)
    parse(lines)
    with pytest.raises(ValueError):
        figure_to_svg(figure, kind="pie")


def test_palette_is_distinct():
    assert len(set(PALETTE)) == len(PALETTE)
