"""Tests for seed-sensitivity analysis."""

from repro.experiments.sensitivity import (
    compare_across_seeds,
    seed_sweep,
)
from repro.experiments.spec import CellKey

SCALE = 0.03
SEEDS = (1, 2, 3)


def test_seed_sweep_collects_all_seeds():
    sweep = seed_sweep(
        CellKey("news", "gdstar", 0.05), seeds=SEEDS, scale=SCALE
    )
    assert len(sweep.hit_ratios) == 3
    assert all(0.0 <= ratio <= 1.0 for ratio in sweep.hit_ratios)
    assert sweep.spread >= 0.0
    assert 0.0 <= sweep.mean <= 1.0
    assert "gdstar" in sweep.render()


def test_different_seeds_give_different_traces():
    sweep = seed_sweep(
        CellKey("news", "gdstar", 0.05), seeds=SEEDS, scale=SCALE
    )
    assert sweep.spread > 0.0  # distinct workloads per seed


def test_comparison_across_seeds():
    comparison = compare_across_seeds(
        "sg2", baseline="gdstar", seeds=SEEDS, scale=SCALE
    )
    assert 0 <= comparison.wins <= 3
    # The paper's headline claim should be seed-robust even at tiny scale.
    assert comparison.wins >= 2
    assert comparison.mean_relative_gain > 0.0
    assert "sg2 vs gdstar" in comparison.render()
