"""Tests for pages, versions and notifications."""

import pytest

from repro.pubsub.pages import Notification, Page, PageVersion


def test_page_validation():
    with pytest.raises(ValueError):
        Page(page_id=1, size=0)


def test_page_attribute_dict_includes_topic():
    page = Page(page_id=1, size=10, topic="sports", attributes=(("region", "eu"),))
    attributes = page.attribute_dict
    assert attributes["topic"] == "sports"
    assert attributes["region"] == "eu"


def test_page_explicit_topic_attribute_wins():
    page = Page(
        page_id=1, size=10, topic="sports", attributes=(("topic", "override"),)
    )
    assert page.attribute_dict["topic"] == "override"


def test_page_is_hashable_and_frozen():
    page = Page(page_id=1, size=10, keywords=frozenset({"a"}))
    assert hash(page) == hash(Page(page_id=1, size=10, keywords=frozenset({"a"})))
    with pytest.raises(AttributeError):
        page.size = 20


def test_page_version_key():
    page = Page(page_id=7, size=10)
    version = PageVersion(page=page, version=3, published_at=100.0)
    assert version.key == (7, 3)
    assert version.page_id == 7
    assert version.size == 10


def test_page_version_validation():
    page = Page(page_id=1, size=10)
    with pytest.raises(ValueError):
        PageVersion(page=page, version=-1, published_at=0.0)
    with pytest.raises(ValueError):
        PageVersion(page=page, version=0, published_at=-1.0)


def test_notification_validation():
    with pytest.raises(ValueError):
        Notification(page_id=1, version=0, size=5, published_at=0.0, match_count=-1)


def test_notification_carries_metadata_only():
    note = Notification(page_id=1, version=2, size=5, published_at=9.0, match_count=3)
    assert (note.page_id, note.version, note.size, note.match_count) == (1, 2, 5, 3)
