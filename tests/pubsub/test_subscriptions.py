"""Tests for subscription predicates."""

import pytest

from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import (
    Subscription,
    attribute_equals,
    attribute_in,
    attribute_range,
    keyword_all,
    keyword_any,
    topic_is,
)


def page(**kwargs):
    defaults = dict(page_id=1, size=100)
    defaults.update(kwargs)
    return Page(**defaults)


def test_topic_predicate():
    predicate = topic_is("sports")
    assert predicate.matches(page(topic="sports"))
    assert not predicate.matches(page(topic="politics"))


def test_keyword_any():
    predicate = keyword_any({"nba", "nfl"})
    assert predicate.matches(page(keywords=frozenset({"nba", "draft"})))
    assert not predicate.matches(page(keywords=frozenset({"mlb"})))


def test_keyword_all():
    predicate = keyword_all({"nba", "finals"})
    assert predicate.matches(page(keywords=frozenset({"nba", "finals", "mvp"})))
    assert not predicate.matches(page(keywords=frozenset({"nba"})))


def test_keyword_predicates_require_keywords():
    with pytest.raises(ValueError):
        keyword_any(set())
    with pytest.raises(ValueError):
        keyword_all(set())


def test_attribute_equals():
    predicate = attribute_equals("region", "eu")
    assert predicate.matches(page(attributes=(("region", "eu"),)))
    assert not predicate.matches(page(attributes=(("region", "us"),)))
    assert not predicate.matches(page())


def test_attribute_in():
    predicate = attribute_in("region", {"eu", "us"})
    assert predicate.matches(page(attributes=(("region", "us"),)))
    assert not predicate.matches(page(attributes=(("region", "apac"),)))
    with pytest.raises(ValueError):
        attribute_in("region", set())


def test_attribute_range():
    predicate = attribute_range("priority", low=2, high=5)
    assert predicate.matches(page(attributes=(("priority", 3),)))
    assert not predicate.matches(page(attributes=(("priority", 6),)))
    assert not predicate.matches(page(attributes=(("priority", "high"),)))
    assert not predicate.matches(page())


def test_attribute_range_open_ended():
    low_only = attribute_range("p", low=3)
    assert low_only.matches(page(attributes=(("p", 100),)))
    assert not low_only.matches(page(attributes=(("p", 2),)))
    high_only = attribute_range("p", high=3)
    assert high_only.matches(page(attributes=(("p", 1),)))


def test_attribute_range_validation():
    with pytest.raises(ValueError):
        attribute_range("p")
    with pytest.raises(ValueError):
        attribute_range("p", low=5, high=2)


def test_subscription_conjunction():
    subscription = Subscription(
        subscriber_id=1,
        proxy_id=0,
        predicates=(topic_is("sports"), keyword_any({"nba"})),
    )
    assert subscription.matches(page(topic="sports", keywords=frozenset({"nba"})))
    assert not subscription.matches(page(topic="sports"))
    assert not subscription.matches(page(topic="tech", keywords=frozenset({"nba"})))


def test_empty_subscription_matches_everything():
    subscription = Subscription(subscriber_id=1, proxy_id=0)
    assert subscription.matches(page(topic="anything"))


def test_subscription_ids_are_unique():
    a = Subscription(subscriber_id=1, proxy_id=0)
    b = Subscription(subscriber_id=1, proxy_id=0)
    assert a.subscription_id != b.subscription_id


def test_keyword_terms_collects_all():
    subscription = Subscription(
        subscriber_id=1,
        proxy_id=0,
        predicates=(keyword_any({"a", "b"}), keyword_all({"c"})),
    )
    assert subscription.keyword_terms == frozenset({"a", "b", "c"})


def test_indexable_terms():
    assert topic_is("x").indexable_terms == (("topic", "x"),)
    assert attribute_equals("k", 1).indexable_terms == (("k", 1),)
    terms = attribute_in("k", {1, 2}).indexable_terms
    assert set(terms) == {("k", 1), ("k", 2)}
    assert keyword_any({"a"}).indexable_terms is None
    assert attribute_range("k", low=0).indexable_terms is None
