"""Tests for the broker façade."""

import numpy as np

from repro.network.topology import build_topology
from repro.pubsub.broker import Broker
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import Subscription, topic_is


def page(page_id=1, topic="sports"):
    return Page(page_id=page_id, size=100, topic=topic)


def sub(proxy_id, topic, subscriber_id=0):
    return Subscription(
        subscriber_id=subscriber_id, proxy_id=proxy_id, predicates=(topic_is(topic),)
    )


def test_publish_assigns_incrementing_versions():
    broker = Broker()
    v0 = broker.publish(page())
    v1 = broker.publish(page())
    assert v0.version == 0
    assert v1.version == 1
    assert broker.current_version(1) == 1


def test_current_version_unknown_page():
    assert Broker().current_version(42) is None


def test_publish_counts_notifications():
    broker = Broker()
    broker.subscribe(sub(0, "sports", subscriber_id=1))
    broker.subscribe(sub(2, "sports", subscriber_id=2))
    broker.subscribe(sub(2, "tech", subscriber_id=3))
    broker.publish(page(topic="sports"))
    assert broker.published_count == 1
    assert broker.notification_count == 2  # proxies 0 and 2


def test_matched_proxies():
    broker = Broker()
    broker.subscribe(sub(4, "sports"))
    broker.subscribe(sub(2, "sports"))
    assert broker.matched_proxies(page(topic="sports")) == [2, 4]
    assert broker.matched_proxies(page(topic="tech")) == []


def test_unsubscribe_stops_notifications():
    broker = Broker()
    subscription = sub(0, "sports")
    broker.subscribe(subscription)
    broker.unsubscribe(subscription)
    broker.publish(page(topic="sports"))
    assert broker.notification_count == 0


def test_broker_with_topology_routes_notifications():
    topology = build_topology(4, np.random.default_rng(0), extra_nodes=2)
    broker = Broker(topology)
    broker.subscribe(sub(0, "sports", subscriber_id=1))
    broker.subscribe(sub(3, "sports", subscriber_id=2))
    delivered = []
    broker.routing.on_delivery(
        lambda proxy, note: delivered.append((proxy, note.match_count))
    )
    broker.publish(page(topic="sports"), at=5.0)
    assert sorted(delivered) == [(0, 1), (3, 1)]
    assert broker.routing.total_messages > 0


def test_versions_are_per_page():
    broker = Broker()
    broker.publish(page(page_id=1))
    broker.publish(page(page_id=2))
    broker.publish(page(page_id=1))
    assert broker.current_version(1) == 1
    assert broker.current_version(2) == 0
