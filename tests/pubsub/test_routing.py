"""Tests for notification routing."""

from repro.network.graph import Graph
from repro.network.topology import Topology
from repro.pubsub.pages import Notification
from repro.pubsub.routing import RoutingEngine, RoutingTable


def star_topology():
    # 0 (publisher) - 1 - {2, 3}; proxy nodes 2 and 3 share edge (0,1).
    graph = Graph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(1, 3)
    return Topology(graph, publisher_node=0, proxy_nodes=[2, 3])


def note(page_id=1):
    return Notification(page_id=page_id, version=0, size=10, published_at=0.0)


def test_routing_table_paths():
    table = RoutingTable(star_topology())
    assert table.path_to(2) == [0, 1, 2]
    assert table.path_to(3) == [0, 1, 3]
    assert table.hops_to(2) == 2


def test_routing_table_unreachable_raises():
    graph = Graph()
    graph.add_edge(0, 1)
    graph.add_node(5)
    topology = Topology(graph, publisher_node=0, proxy_nodes=[1])
    table = RoutingTable(topology)
    try:
        table.path_to(5)
        assert False, "expected KeyError"
    except KeyError:
        pass


def test_multicast_deduplicates_shared_edges():
    engine = RoutingEngine(star_topology())
    messages = engine.deliver(note(), [0, 1])  # both proxies
    # edges used: (0,1) shared once, (1,2), (1,3)
    assert messages == 3
    assert engine.link_messages[(0, 1)] == 1


def test_unicast_link_counting_accumulates():
    engine = RoutingEngine(star_topology())
    engine.deliver(note(), [0])
    engine.deliver(note(), [0])
    assert engine.link_messages[(0, 1)] == 2
    assert engine.link_messages[(1, 2)] == 2
    assert engine.total_messages == 4


def test_delivery_hooks_called_per_proxy():
    engine = RoutingEngine(star_topology())
    seen = []
    engine.on_delivery(lambda proxy, notification: seen.append((proxy, notification.page_id)))
    engine.deliver(note(page_id=9), [0, 1])
    assert seen == [(0, 9), (1, 9)]


def test_empty_delivery_is_noop():
    engine = RoutingEngine(star_topology())
    assert engine.deliver(note(), []) == 0
    assert engine.total_messages == 0
