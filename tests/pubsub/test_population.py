"""Tests for the subscription-population materialization."""

import numpy as np
import pytest

from repro.pubsub.matching import MatchingEngine
from repro.pubsub.population import (
    EngineMatchCounts,
    build_population,
    engine_from_table,
    make_page,
    page_category,
    page_topic,
)

TABLE = {0: {0: 3, 2: 1}, 5: {1: 2}, 9: {0: 1, 1: 1, 2: 1}}


def rng(seed=0):
    return np.random.default_rng(seed)


def test_population_size_matches_table():
    population = build_population(TABLE, rng())
    assert len(population) == sum(
        count for row in TABLE.values() for count in row.values()
    )


def test_population_counts_exact_via_engine():
    engine = MatchingEngine()
    for subscription in build_population(TABLE, rng(), category_fraction=0.5):
        engine.subscribe(subscription)
    for page_id, expected in TABLE.items():
        page = make_page(page_id, size=100)
        assert engine.match_counts(page) == expected


def test_unlisted_page_matches_nothing():
    counts = engine_from_table(TABLE, {0: 10, 5: 10, 9: 10}, rng())
    assert counts.match_counts_by_id(12345) == {}


def test_category_fraction_zero_uses_single_predicate():
    population = build_population(TABLE, rng(), category_fraction=0.0)
    assert all(len(sub.predicates) == 1 for sub in population)


def test_category_fraction_one_uses_two_predicates():
    population = build_population(TABLE, rng(), category_fraction=1.0)
    assert all(len(sub.predicates) == 2 for sub in population)


def test_category_fraction_validation():
    with pytest.raises(ValueError):
        build_population(TABLE, rng(), category_fraction=1.5)


def test_engine_match_counts_memoizes():
    adapter = engine_from_table(TABLE, {0: 10, 5: 10, 9: 10}, rng())
    first = adapter.match_counts_by_id(0)
    second = adapter.match_counts_by_id(0)
    assert first == second == TABLE[0]
    assert adapter.count_for(0, 2) == 1
    assert adapter.count_for(0, 9) == 0


def test_page_metadata_helpers():
    assert page_topic(7) == "page:7"
    assert page_category(17, categories=16) == "cat:1"
    page = make_page(7, size=100)
    assert page.topic == "page:7"
    assert page.attribute_dict["category"] == page_category(7)


def test_simulation_with_live_engine_matches_table_run():
    """The full loop: eq. 7 table -> explicit subscribers -> real
    matching engine -> identical simulation results."""
    from repro.pubsub.matching import TraceMatchCounts
    from repro.sim.rng import RandomStreams
    from repro.system.config import SimulationConfig
    from repro.system.simulator import run_simulation
    from repro.workload import build_match_counts, generate_workload, news_config

    workload = generate_workload(
        news_config(scale=0.02), RandomStreams(6), label="news"
    )
    table = build_match_counts(
        workload.request_pairs(), 1.0, RandomStreams(6).stream("subs")
    )
    sizes = {page.page_id: page.size for page in workload.pages}
    config = SimulationConfig(strategy="sg2", capacity_fraction=0.05)

    with_table = run_simulation(
        workload, config, match_table=TraceMatchCounts(table)
    )
    with_engine = run_simulation(
        workload, config, match_table=engine_from_table(table, sizes, rng(1))
    )
    assert with_engine.hits == with_table.hits
    assert with_engine.push_transfers == with_table.push_transfers
    assert with_engine.fetch_pages == with_table.fetch_pages
