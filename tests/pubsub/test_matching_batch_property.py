"""Property test: the batched match vector equals the legacy path.

:meth:`MatchingEngine.match_count_vector` is the replay interior's
single-pass matcher; :meth:`MatchingEngine.match_counts` is the legacy
per-subscription aggregation it replaced.  The two must agree as
mappings for every page, in every engine state reachable through
subscribe / unsubscribe / lease-expiry interleavings — including the
lazy-expiry side effect both paths perform while matching.

Both paths mutate the engine (lapsed candidates are retired on the
spot), so each generated operation sequence is applied to *two*
engines fed identical subscription objects, and the batched vector
from one is compared against the legacy counts from the other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pubsub.matching import MatchingEngine
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import (
    Subscription,
    attribute_equals,
    attribute_range,
    keyword_any,
    topic_is,
)

TOPICS = ("sports", "politics", "tech")
KEYWORDS = ("nba", "vote", "ai")
REGIONS = ("eu", "us")

#: A small closed predicate pool: indexed (topic, equality), residual
#: (keyword, range) and mixed conjunctions all occur.
PREDICATE_POOL = (
    (topic_is("sports"),),
    (topic_is("politics"),),
    (topic_is("tech"), attribute_equals("region", "eu")),
    (attribute_equals("region", "us"),),
    (keyword_any({"nba", "ai"}),),
    (topic_is("sports"), keyword_any({"nba"})),
    (attribute_range("priority", low=5),),
    (topic_is("politics"), attribute_range("priority", low=2, high=8)),
    (),  # match-everything
)

pages = st.builds(
    lambda page_id, topic, keywords, priority, region: Page(
        page_id=page_id,
        size=100,
        topic=topic,
        keywords=frozenset(keywords),
        attributes=(("priority", priority), ("region", region)),
    ),
    page_id=st.integers(min_value=1, max_value=50),
    topic=st.sampled_from(TOPICS),
    keywords=st.sets(st.sampled_from(KEYWORDS), max_size=3),
    priority=st.integers(min_value=0, max_value=10),
    region=st.sampled_from(REGIONS),
)

#: One operation: ("sub", proxy, pool_index, lease_offset|None),
#: ("unsub", created_index), ("expire",) or ("check", page).
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("sub"),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=len(PREDICATE_POOL) - 1),
            st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
        ),
        st.tuples(st.just("unsub"), st.integers(min_value=0, max_value=100)),
        st.tuples(st.just("expire")),
        st.tuples(st.just("check"), pages),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(ops=operations, final_page=pages)
def test_batched_vector_equals_legacy_counts(ops, final_page):
    batched = MatchingEngine()
    legacy = MatchingEngine()
    created = []
    now = 0.0
    for op in ops:
        now += 1.0
        if op[0] == "sub":
            _, proxy_id, pool_index, lease_offset = op
            subscription = Subscription(
                subscriber_id=len(created),
                proxy_id=proxy_id,
                predicates=PREDICATE_POOL[pool_index],
            )
            created.append(subscription)
            lease_until = None if lease_offset is None else now + lease_offset
            batched.subscribe(subscription, lease_until=lease_until)
            legacy.subscribe(subscription, lease_until=lease_until)
        elif op[0] == "unsub":
            if created:
                subscription = created[op[1] % len(created)]
                batched.unsubscribe(subscription)
                legacy.unsubscribe(subscription)
        elif op[0] == "expire":
            assert batched.expire_leases(now) == legacy.expire_leases(now)
        else:
            page = op[1]
            assert batched.match_count_vector(page, now=now) == legacy.match_counts(
                page, now=now
            )
            assert batched.subscription_count == legacy.subscription_count

    # Terminal agreement, both with and without lazy expiry.
    assert batched.match_count_vector(final_page) == legacy.match_counts(final_page)
    assert batched.match_count_vector(final_page, now=now) == legacy.match_counts(
        final_page, now=now
    )
    assert batched.subscription_count == legacy.subscription_count
