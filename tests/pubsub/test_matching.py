"""Tests for the matching engines."""

import pytest

from repro.pubsub.matching import MatchingEngine, TraceMatchCounts
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import (
    Subscription,
    attribute_equals,
    attribute_range,
    keyword_any,
    topic_is,
)


def page(page_id=1, topic="sports", keywords=(), attributes=()):
    return Page(
        page_id=page_id,
        size=100,
        topic=topic,
        keywords=frozenset(keywords),
        attributes=tuple(attributes),
    )


def subscription(proxy_id, *predicates, subscriber_id=0):
    return Subscription(
        subscriber_id=subscriber_id, proxy_id=proxy_id, predicates=tuple(predicates)
    )


class TestMatchingEngine:
    def test_topic_match_via_index(self):
        engine = MatchingEngine()
        sports = subscription(0, topic_is("sports"))
        politics = subscription(1, topic_is("politics"))
        engine.subscribe_all([sports, politics])
        matched = engine.matching_subscriptions(page(topic="sports"))
        assert matched == [sports]

    def test_match_counts_aggregate_per_proxy(self):
        engine = MatchingEngine()
        engine.subscribe(subscription(0, topic_is("sports"), subscriber_id=1))
        engine.subscribe(subscription(0, topic_is("sports"), subscriber_id=2))
        engine.subscribe(subscription(3, topic_is("sports"), subscriber_id=3))
        counts = engine.match_counts(page(topic="sports"))
        assert counts == {0: 2, 3: 1}

    def test_conjunction_of_indexed_and_residual(self):
        engine = MatchingEngine()
        both = subscription(0, topic_is("sports"), keyword_any({"nba"}))
        engine.subscribe(both)
        assert engine.matching_subscriptions(page(topic="sports")) == []
        assert engine.matching_subscriptions(
            page(topic="sports", keywords={"nba"})
        ) == [both]

    def test_purely_residual_subscription_scanned(self):
        engine = MatchingEngine()
        residual = subscription(0, keyword_any({"nba"}))
        engine.subscribe(residual)
        assert engine.matching_subscriptions(page(keywords={"nba"})) == [residual]

    def test_multiple_indexed_predicates_require_all(self):
        engine = MatchingEngine()
        strict = subscription(
            0, topic_is("sports"), attribute_equals("region", "eu")
        )
        engine.subscribe(strict)
        assert engine.matching_subscriptions(page(topic="sports")) == []
        assert engine.matching_subscriptions(
            page(topic="sports", attributes=(("region", "eu"),))
        ) == [strict]

    def test_range_predicates_evaluated(self):
        engine = MatchingEngine()
        ranged = subscription(0, attribute_range("priority", low=5))
        engine.subscribe(ranged)
        assert engine.matching_subscriptions(
            page(attributes=(("priority", 7),))
        ) == [ranged]
        assert engine.matching_subscriptions(
            page(attributes=(("priority", 3),))
        ) == []

    def test_unsubscribe_removes(self):
        engine = MatchingEngine()
        sub = subscription(0, topic_is("sports"))
        engine.subscribe(sub)
        engine.unsubscribe(sub)
        assert engine.matching_subscriptions(page(topic="sports")) == []
        assert engine.subscription_count == 0

    def test_unsubscribe_unknown_is_noop(self):
        engine = MatchingEngine()
        engine.unsubscribe(subscription(0, topic_is("x")))

    def test_subscribe_idempotent(self):
        engine = MatchingEngine()
        sub = subscription(0, topic_is("sports"))
        engine.subscribe(sub)
        engine.subscribe(sub)
        assert engine.subscription_count == 1
        assert engine.match_counts(page(topic="sports")) == {0: 1}

    def test_results_sorted_by_subscription_id(self):
        engine = MatchingEngine()
        subs = [subscription(0, topic_is("sports")) for _ in range(5)]
        for sub in reversed(subs):
            engine.subscribe(sub)
        matched = engine.matching_subscriptions(page(topic="sports"))
        assert matched == sorted(subs, key=lambda s: s.subscription_id)

    def test_membership_predicate_via_index(self):
        engine = MatchingEngine()
        sub = subscription(0, attribute_equals("region", "eu"))
        multi = subscription(1, *(attribute_equals("region", "eu"),))
        engine.subscribe_all([sub, multi])
        counts = engine.match_counts(page(attributes=(("region", "eu"),)))
        assert counts == {0: 1, 1: 1}

    def test_engine_matches_brute_force(self):
        import numpy as np

        rng = np.random.default_rng(11)
        engine = MatchingEngine()
        topics = ["a", "b", "c"]
        words = ["w0", "w1", "w2", "w3"]
        subs = []
        for i in range(60):
            predicates = []
            if rng.random() < 0.7:
                predicates.append(topic_is(topics[rng.integers(3)]))
            if rng.random() < 0.5:
                predicates.append(keyword_any({words[rng.integers(4)]}))
            if rng.random() < 0.3:
                predicates.append(attribute_range("p", low=float(rng.integers(5))))
            sub = subscription(int(rng.integers(4)), *predicates, subscriber_id=i)
            subs.append(sub)
            engine.subscribe(sub)
        for page_index in range(40):
            candidate = page(
                page_id=page_index,
                topic=topics[rng.integers(3)],
                keywords={words[rng.integers(4)]},
                attributes=(("p", int(rng.integers(8))),),
            )
            expected = sorted(
                (s for s in subs if s.matches(candidate)),
                key=lambda s: s.subscription_id,
            )
            assert engine.matching_subscriptions(candidate) == expected


class TestTraceMatchCounts:
    def test_lookup_by_page_and_id(self):
        table = TraceMatchCounts({1: {0: 3, 2: 1}, 5: {0: 2}})
        assert table.match_counts(page(page_id=1)) == {0: 3, 2: 1}
        assert table.match_counts_by_id(5) == {0: 2}
        assert table.count_for(1, 0) == 3
        assert table.count_for(1, 9) == 0
        assert table.match_counts_by_id(404) == {}

    def test_zero_entries_dropped(self):
        table = TraceMatchCounts({1: {0: 0, 1: 2}})
        assert table.match_counts_by_id(1) == {1: 2}

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            TraceMatchCounts({1: {0: -1}})

    def test_total_subscriptions(self):
        table = TraceMatchCounts({1: {0: 3, 2: 1}, 5: {0: 2}})
        assert table.total_subscriptions() == 6

    def test_page_ids(self):
        table = TraceMatchCounts({1: {0: 1}, 5: {0: 1}})
        assert sorted(table.page_ids) == [1, 5]


class TestUnsubscribeChurn:
    def test_unsubscribe_shrinks_index_buckets(self):
        """Churn must not grow the inverted index: unsubscribe discards
        the subscription from exactly its own buckets and drops buckets
        it emptied."""
        engine = MatchingEngine()
        subs = [
            subscription(i % 4, topic_is(f"topic-{i}"), subscriber_id=i)
            for i in range(50)
        ]
        engine.subscribe_all(subs)
        assert len(engine._index) == 50
        for sub in subs[:40]:
            engine.unsubscribe(sub)
        # Each topic term was unique to its subscription, so emptied
        # buckets disappear entirely.
        assert len(engine._index) == 10
        assert engine.subscription_count == 10
        assert all(engine._index.values())

    def test_unsubscribe_keeps_shared_buckets(self):
        engine = MatchingEngine()
        a = subscription(0, topic_is("shared"), subscriber_id=1)
        b = subscription(1, topic_is("shared"), subscriber_id=2)
        engine.subscribe_all([a, b])
        engine.unsubscribe(a)
        assert len(engine._index) == 1
        matched = engine.matching_subscriptions(page(topic="shared"))
        assert matched == [b]
        engine.unsubscribe(b)
        assert len(engine._index) == 0
        assert engine.matching_subscriptions(page(topic="shared")) == []

    def test_reverse_map_tracks_subscription_lifecycle(self):
        engine = MatchingEngine()
        sub = subscription(0, topic_is("news"), keyword_any({"x"}))
        engine.subscribe(sub)
        assert sub.subscription_id in engine._terms_by_sid
        engine.unsubscribe(sub)
        assert sub.subscription_id not in engine._terms_by_sid
        # Idempotent: a second unsubscribe is a no-op.
        engine.unsubscribe(sub)
        assert engine.subscription_count == 0
