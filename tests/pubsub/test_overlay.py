"""Tests for the distributed broker overlay."""

import numpy as np
import pytest

from repro.network.topology import build_topology
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.overlay import BrokerTree
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import (
    Subscription,
    attribute_range,
    keyword_any,
    topic_is,
)

TOPICS = ["a", "b", "c", "d"]
WORDS = ["w0", "w1", "w2"]


def build_tree(proxy_count=6, seed=0, extra=4):
    topology = build_topology(
        proxy_count, np.random.default_rng(seed), extra_nodes=extra
    )
    return BrokerTree(topology)


def random_population(proxy_count, count, seed=1):
    rng = np.random.default_rng(seed)
    subscriptions = []
    for subscriber in range(count):
        predicates = []
        if rng.random() < 0.8:
            predicates.append(topic_is(TOPICS[rng.integers(len(TOPICS))]))
        if rng.random() < 0.4:
            predicates.append(keyword_any({WORDS[rng.integers(len(WORDS))]}))
        if rng.random() < 0.2:
            predicates.append(attribute_range("p", low=float(rng.integers(4))))
        subscriptions.append(
            Subscription(
                subscriber_id=subscriber,
                proxy_id=int(rng.integers(proxy_count)),
                predicates=tuple(predicates),
            )
        )
    return subscriptions


def random_pages(count, seed=2):
    rng = np.random.default_rng(seed)
    return [
        Page(
            page_id=index,
            size=100,
            topic=TOPICS[rng.integers(len(TOPICS))],
            keywords=frozenset({WORDS[rng.integers(len(WORDS))]}),
            attributes=(("p", int(rng.integers(6))),),
        )
        for index in range(count)
    ]


def test_tree_spans_topology():
    tree = build_tree()
    assert tree.broker_count == tree.topology.graph.node_count
    assert tree.root.node_id == tree.topology.publisher_node
    assert tree.root.parent is None


def test_each_proxy_attached_once():
    tree = build_tree()
    attached = [
        proxy
        for node_id in tree.evaluation_load()
        for proxy in tree._nodes[node_id].attached_proxies
    ]
    assert sorted(attached) == list(range(6))


def test_match_counts_equal_centralized():
    """The distributed tree must agree exactly with a flat engine."""
    tree = build_tree(proxy_count=8, seed=3)
    flat = MatchingEngine()
    for subscription in random_population(8, 120, seed=4):
        tree.subscribe(subscription)
        flat.subscribe(subscription)
    for page in random_pages(60, seed=5):
        assert tree.match_counts(page) == flat.match_counts(page)


def test_match_counts_equal_centralized_under_churn():
    """Equivalence must survive unsubscribe/resubscribe churn.

    Half the population unsubscribes, a third of those resubscribe, and
    the tree's per-proxy match counts must still agree exactly with a
    flat engine that saw the same churn — even though the tree's
    upstream aggregated interests go stale (they are never withdrawn).
    """
    tree = build_tree(proxy_count=8, seed=3)
    flat = MatchingEngine()
    population = random_population(8, 120, seed=4)
    for subscription in population:
        tree.subscribe(subscription)
        flat.subscribe(subscription)
    churned = population[::2]
    for subscription in churned:
        tree.unsubscribe(subscription)
        flat.unsubscribe(subscription)
    for subscription in churned[::3]:
        tree.subscribe(subscription)
        flat.subscribe(subscription)
    for page in random_pages(60, seed=5):
        assert tree.match_counts(page) == flat.match_counts(page)


def test_unsubscribe_leaves_covering_filter_stale():
    """Leaf-only removal: upstream interest copies and ``_forwarded``
    markers stay in place, so a resubscribe of the same predicate set
    is fully covered (zero control messages) and matching stays exact.
    """
    tree = build_tree()
    predicates = (topic_is("a"),)
    subscription = Subscription(
        subscriber_id=1, proxy_id=2, predicates=predicates
    )
    leaf = tree.broker_for_proxy(2)
    messages = tree.subscribe(subscription)
    assert messages > 0
    assert leaf.covers(predicates)

    tree.unsubscribe(subscription)
    # The interest is gone from the leaf engine: no deliveries...
    assert tree.match_counts(Page(page_id=1, size=10, topic="a")) == {}
    # ...but the covering filter still claims the predicate set was
    # forwarded, and every broker on the upward path still holds its
    # aggregated copy (the stale covering filter, pinned on purpose).
    assert leaf.covers(predicates)
    current = leaf.parent
    while current is not None:
        matched = current.engine.matching_subscriptions(
            Page(page_id=2, size=10, topic="a")
        )
        assert any(sub.proxy_id == 2 for sub in matched)
        current = current.parent

    # Resubscribing the identical predicate set rides the stale filter:
    # zero upward control messages, and counting works again.
    resubscribed = Subscription(
        subscriber_id=9, proxy_id=2, predicates=predicates
    )
    assert tree.subscribe(resubscribed) == 0
    assert tree.match_counts(Page(page_id=3, size=10, topic="a")) == {2: 1}


def test_stale_upstream_interest_wastes_descent_not_counts():
    """A fully unsubscribed branch still attracts publication messages
    (the stale aggregated interest routes them down) but contributes no
    match counts — wasted descent, never a wrong answer."""
    tree = build_tree(proxy_count=8, seed=3)
    subscription = Subscription(
        subscriber_id=1, proxy_id=5, predicates=(topic_is("a"),)
    )
    tree.subscribe(subscription)
    tree.unsubscribe(subscription)
    before = tree.total_publication_messages()
    counts = tree.match_counts(Page(page_id=1, size=10, topic="a"))
    after = tree.total_publication_messages()
    assert counts == {}
    assert after > before


def test_covering_suppresses_duplicate_forwarding():
    tree = build_tree()
    first = Subscription(
        subscriber_id=1, proxy_id=2, predicates=(topic_is("a"),)
    )
    duplicate = Subscription(
        subscriber_id=2, proxy_id=2, predicates=(topic_is("a"),)
    )
    messages_first = tree.subscribe(first)
    messages_duplicate = tree.subscribe(duplicate)
    assert messages_first > 0
    assert messages_duplicate == 0  # fully covered at the leaf


def test_duplicate_interests_still_counted():
    tree = build_tree()
    for subscriber in range(3):
        tree.subscribe(
            Subscription(
                subscriber_id=subscriber,
                proxy_id=2,
                predicates=(topic_is("a"),),
            )
        )
    counts = tree.match_counts(Page(page_id=1, size=10, topic="a"))
    assert counts == {2: 3}


def test_unmatched_branches_not_descended():
    tree = build_tree(proxy_count=8, seed=3)
    tree.subscribe(
        Subscription(subscriber_id=1, proxy_id=0, predicates=(topic_is("a"),))
    )
    tree.match_counts(Page(page_id=1, size=10, topic="zzz"))
    # only the root evaluated the unmatched page
    evaluations = tree.evaluation_load()
    assert evaluations[tree.root.node_id] == 1
    assert sum(evaluations.values()) == 1


def test_publication_messages_follow_matches():
    tree = build_tree(proxy_count=8, seed=3)
    tree.subscribe(
        Subscription(subscriber_id=1, proxy_id=5, predicates=(topic_is("a"),))
    )
    before = tree.total_publication_messages()
    tree.match_counts(Page(page_id=1, size=10, topic="a"))
    after = tree.total_publication_messages()
    # exactly the path length from root to proxy 5's broker
    from repro.pubsub.routing import RoutingTable

    hops = RoutingTable(tree.topology).hops_to(tree.topology.proxy_nodes[5])
    assert after - before == hops


def test_load_distributes_below_root():
    tree = build_tree(proxy_count=10, seed=6, extra=6)
    for subscription in random_population(10, 80, seed=7):
        tree.subscribe(subscription)
    for page in random_pages(40, seed=8):
        tree.match_counts(page)
    load = tree.evaluation_load()
    root_load = load[tree.root.node_id]
    assert root_load == 40  # root sees everything...
    others = [value for node, value in load.items() if node != tree.root.node_id]
    assert max(others) <= root_load  # ...no broker sees more
    assert sum(others) > 0  # and the work actually spreads


def test_control_messages_bounded_by_subscriptions():
    tree = build_tree(proxy_count=8, seed=3)
    population = random_population(8, 100, seed=9)
    total = sum(tree.subscribe(subscription) for subscription in population)
    assert total == tree.total_control_messages()
    # Covering means (strictly, for this population) fewer messages than
    # subscriptions * path length.
    assert total < 100 * tree.broker_count
