"""Lease-aware matching: lazy retirement, sweeps, and the churn property.

The property test is the subscription-lifecycle safety net: *any*
interleaving of subscribe/unsubscribe calls that ends at the seed
subscription set must restore the inverted index and the sid->terms
reverse map exactly — churn may never leave tombstones behind.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import build_topology
from repro.pubsub.matching import MatchingEngine
from repro.pubsub.overlay import BrokerTree
from repro.pubsub.pages import Page
from repro.pubsub.subscriptions import (
    Subscription,
    attribute_equals,
    keyword_any,
    topic_is,
)

TOPICS = ["sports", "politics", "tech", "weather"]
WORDS = ["nba", "vote", "ai", "rain"]


def page(page_id=1, topic="sports", keywords=(), attributes=()):
    return Page(
        page_id=page_id,
        size=100,
        topic=topic,
        keywords=frozenset(keywords),
        attributes=tuple(attributes),
    )


def subscription(proxy_id, *predicates, subscriber_id=0):
    return Subscription(
        subscriber_id=subscriber_id, proxy_id=proxy_id, predicates=tuple(predicates)
    )


# -- hypothesis strategies ------------------------------------------------


@st.composite
def subscriptions(draw):
    predicates = []
    if draw(st.booleans()):
        predicates.append(topic_is(draw(st.sampled_from(TOPICS))))
    if draw(st.booleans()):
        predicates.append(
            keyword_any(frozenset(draw(st.sets(st.sampled_from(WORDS), min_size=1))))
        )
    if draw(st.booleans()):
        predicates.append(
            attribute_equals("region", draw(st.sampled_from(["us", "eu"])))
        )
    return Subscription(
        subscriber_id=draw(st.integers(0, 30)),
        proxy_id=draw(st.integers(0, 3)),
        predicates=tuple(predicates),
    )


def engine_state(engine):
    return (
        dict(engine._subscriptions),
        {term: set(sids) for term, sids in engine._index.items()},
        {sid: list(terms) for sid, terms in engine._terms_by_sid.items()},
        dict(engine._required_hits),
        set(engine._scan_list),
        dict(engine._lease_until),
    )


class TestChurnProperty:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_interleaving_back_to_seed_set_restores_state(self, data):
        seed = data.draw(st.lists(subscriptions(), max_size=5))
        extras = data.draw(st.lists(subscriptions(), max_size=5))
        pool = seed + extras

        engine = MatchingEngine()
        if pool:
            # A random interleaving of subscribes (some leased) and
            # unsubscribes over the whole pool...
            ops = data.draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(["sub", "sub-leased", "unsub"]),
                        st.integers(0, len(pool) - 1),
                    ),
                    max_size=30,
                )
            )
            for action, index in ops:
                if action == "sub":
                    engine.subscribe(pool[index])
                elif action == "sub-leased":
                    engine.subscribe(
                        pool[index],
                        lease_until=data.draw(st.floats(1.0, 100.0)),
                    )
                else:
                    engine.unsubscribe(pool[index])
        # ... then settle back to exactly the seed set (re-subscribing a
        # present sid with no lease clears its lease; subscribing a
        # missing one registers it).
        for sub in seed:
            engine.subscribe(sub)
        seed_ids = {sub.subscription_id for sub in seed}
        for sub in extras:
            if sub.subscription_id not in seed_ids:
                engine.unsubscribe(sub)

        reference = MatchingEngine()
        reference.subscribe_all(seed)
        assert engine_state(engine) == engine_state(reference)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_full_teardown_leaves_engine_empty(self, data):
        subs = data.draw(st.lists(subscriptions(), max_size=8))
        engine = MatchingEngine()
        for sub in subs:
            engine.subscribe(sub)
        order = data.draw(st.permutations(subs))
        for sub in order:
            engine.unsubscribe(sub)
        assert engine.subscription_count == 0
        assert not engine._index
        assert not engine._terms_by_sid
        assert not engine._required_hits
        assert not engine._scan_list
        assert not engine._lease_until


class TestEngineLeases:
    def test_lease_stored_and_cleared_on_resubscribe(self):
        engine = MatchingEngine()
        sub = subscription(0, topic_is("sports"))
        engine.subscribe(sub, lease_until=50.0)
        assert engine.lease_expiry(sub.subscription_id) == 50.0
        engine.subscribe(sub)  # idempotent re-subscribe clears the lease
        assert engine.lease_expiry(sub.subscription_id) is None

    def test_renew_lease(self):
        engine = MatchingEngine()
        sub = subscription(0, topic_is("sports"))
        engine.subscribe(sub, lease_until=50.0)
        assert engine.renew_lease(sub.subscription_id, 80.0) is True
        assert engine.lease_expiry(sub.subscription_id) == 80.0
        assert engine.renew_lease(999_999_999, 80.0) is False

    def test_expire_leases_sweep(self):
        engine = MatchingEngine()
        live = subscription(0, topic_is("sports"), subscriber_id=1)
        dead = subscription(0, topic_is("sports"), subscriber_id=2)
        permanent = subscription(0, topic_is("sports"), subscriber_id=3)
        engine.subscribe(live, lease_until=100.0)
        engine.subscribe(dead, lease_until=10.0)
        engine.subscribe(permanent)
        assert engine.expire_leases(10.0) == 1  # until <= now expires
        assert engine.subscription_count == 2
        assert engine.lease_expiry(dead.subscription_id) is None

    def test_matching_retires_expired_lazily(self):
        engine = MatchingEngine()
        dead = subscription(0, topic_is("sports"), subscriber_id=1)
        live = subscription(0, topic_is("sports"), subscriber_id=2)
        engine.subscribe(dead, lease_until=10.0)
        engine.subscribe(live, lease_until=100.0)
        matched = engine.matching_subscriptions(page(topic="sports"), now=20.0)
        assert matched == [live]
        # The expired subscription was retired on the way through.
        assert engine.subscription_count == 1
        assert not engine._index[("topic", "sports")] - {live.subscription_id}

    def test_matching_without_now_ignores_leases(self):
        engine = MatchingEngine()
        dead = subscription(0, topic_is("sports"))
        engine.subscribe(dead, lease_until=10.0)
        assert engine.matching_subscriptions(page(topic="sports")) == [dead]
        assert engine.subscription_count == 1

    def test_match_counts_respects_now(self):
        engine = MatchingEngine()
        engine.subscribe(
            subscription(0, topic_is("sports"), subscriber_id=1), lease_until=10.0
        )
        engine.subscribe(
            subscription(2, topic_is("sports"), subscriber_id=2), lease_until=99.0
        )
        assert engine.match_counts(page(topic="sports"), now=20.0) == {2: 1}


class TestOverlayLeases:
    def build_tree(self, proxy_count=4, seed=0):
        topology = build_topology(
            proxy_count, np.random.default_rng(seed), extra_nodes=3
        )
        return BrokerTree(topology)

    def test_leaf_lease_expires_but_aggregate_persists(self):
        tree = self.build_tree()
        sub = subscription(1, topic_is("sports"))
        tree.subscribe(sub, lease_until=10.0)
        leaf = tree.broker_for_proxy(1).engine
        assert leaf.lease_expiry(sub.subscription_id) == 10.0
        assert tree.expire_leases(20.0) == 1
        assert leaf.subscription_count == 0
        # Upstream aggregates are unleased by design (stale-aggregate
        # policy): expiry costs wasted descent, never a wrong count.
        assert tree.match_counts(page(topic="sports"), now=20.0) == {}

    def test_expire_leases_sums_across_brokers(self):
        tree = self.build_tree()
        tree.subscribe(
            subscription(0, topic_is("sports"), subscriber_id=1), lease_until=5.0
        )
        tree.subscribe(
            subscription(2, topic_is("tech"), subscriber_id=2), lease_until=5.0
        )
        tree.subscribe(
            subscription(3, topic_is("tech"), subscriber_id=3), lease_until=99.0
        )
        assert tree.expire_leases(6.0) == 2
