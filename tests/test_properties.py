"""Property-based tests on core data structures and invariants."""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.entry import CacheEntry
from repro.cache.heap import AddressableHeap
from repro.cache.storage import CacheStorage
from repro.core.registry import make_policy_lenient, strategy_names
from repro.core.values import gdstar_value, sr_value, sub_value
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.workload.popularity import class_boundaries, zipf_weights
from repro.workload.requests import sample_ages
from repro.workload.subscriptions import build_match_counts


# -- addressable heap vs reference model -------------------------------------

heap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 15), st.floats(-100, 100)),
        st.tuples(st.just("pop"), st.just(0), st.just(0.0)),
        st.tuples(st.just("discard"), st.integers(0, 15), st.just(0.0)),
    ),
    max_size=200,
)


@given(heap_ops)
def test_heap_matches_reference_model(operations):
    heap = AddressableHeap()
    model = {}
    for op, key, priority in operations:
        if op == "push":
            heap.push(key, priority)
            model[key] = priority
        elif op == "discard":
            heap.discard(key)
            model.pop(key, None)
        else:  # pop
            if not model:
                with pytest.raises(IndexError):
                    heap.pop()
                continue
            popped_key, popped_priority = heap.pop()
            assert popped_priority == min(model.values())
            assert model.pop(popped_key) == popped_priority
    assert len(heap) == len(model)
    assert dict(heap.items()) == model


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
def test_heap_is_a_sorting_machine(priorities):
    heap = AddressableHeap()
    for index, priority in enumerate(priorities):
        heap.push(index, priority)
    drained = [heap.pop()[1] for _ in range(len(priorities))]
    assert drained == sorted(priorities)


# -- storage accounting -------------------------------------------------------

storage_ops = st.lists(
    st.tuples(st.integers(0, 10), st.integers(1, 50)), max_size=100
)


@given(storage_ops)
def test_storage_byte_accounting_exact(operations):
    storage = CacheStorage(500)
    for page_id, size in operations:
        if page_id in storage:
            storage.remove(page_id)
        elif storage.fits(size):
            storage.add(
                CacheEntry(page_id=page_id, version=0, size=size, cost=1.0)
            )
        storage.check_invariants()
        assert storage.used_bytes <= storage.capacity_bytes


# -- value functions ------------------------------------------------------------

@given(
    st.floats(0, 1e6),
    st.integers(-1000, 1000),
    st.floats(0.1, 100),
    st.integers(1, 10**7),
    st.floats(0.05, 8.0),
)
def test_gdstar_value_always_at_least_inflation(L, f, c, s, beta):
    assert gdstar_value(L, f, c, s, beta) >= L


@given(st.integers(0, 10**6), st.floats(0.1, 100), st.integers(1, 10**7))
def test_sub_value_nonnegative_and_scales_with_matches(matches, c, s):
    value = sub_value(matches, c, s)
    assert value >= 0.0
    assert sub_value(matches + 1, c, s) >= value


@given(
    st.integers(0, 1000),
    st.integers(0, 1000),
    st.floats(0.1, 100),
    st.integers(1, 10**6),
)
def test_sr_value_sign_tracks_remaining_demand(matches, accesses, c, s):
    value = sr_value(matches, accesses, c, s)
    if matches > accesses:
        assert value > 0
    elif matches < accesses:
        assert value < 0
    else:
        assert value == 0.0


# -- policies under random workloads -----------------------------------------

policy_events = st.lists(
    st.tuples(
        st.booleans(),  # publish?
        st.integers(0, 12),  # page id
        st.integers(1, 400),  # size
        st.integers(0, 20),  # match count
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=25, deadline=None)
@given(st.sampled_from(sorted(strategy_names())), policy_events, st.integers(50, 1500))
def test_any_policy_respects_capacity_and_invariants(name, events, capacity):
    policy = make_policy_lenient(name, capacity, cost=2.0)
    versions = {}
    for step, (is_publish, page_id, size, match_count) in enumerate(events):
        # one stable size per page id, derived from its first event
        size = 1 + (page_id * 37) % 300
        if is_publish or page_id not in versions:
            versions[page_id] = versions.get(page_id, -1) + 1
            policy.on_publish(page_id, versions[page_id], size, match_count, float(step))
        else:
            policy.on_request(page_id, versions[page_id], size, match_count, float(step))
        policy.check_invariants()
        assert policy.used_bytes <= capacity


# -- workload building blocks ---------------------------------------------------

@given(st.integers(1, 5000), st.floats(0.2, 3.0))
def test_zipf_weights_properties(n, alpha):
    weights = zipf_weights(n, alpha)
    assert len(weights) == n
    assert weights.sum() == pytest.approx(1.0)
    assert np.all(np.diff(weights) <= 1e-18)


@given(st.integers(4, 3000), st.floats(1.5, 20.0))
def test_class_boundaries_partition_ranks(n, decay):
    weights = zipf_weights(n, 1.2)
    boundaries = class_boundaries(weights, 4, decay)
    assert boundaries[0] == 0
    assert np.all(np.diff(boundaries) >= 1)
    assert boundaries[-1] < n


@given(
    st.integers(0, 2000),
    st.floats(0.0, 1e6),
    st.floats(0.0, 3.0),
    st.integers(0, 2**31 - 1),
)
def test_sample_ages_always_in_bounds(count, max_age, gamma, seed):
    ages = sample_ages(count, max_age, gamma, np.random.default_rng(seed))
    assert len(ages) == count
    if count:
        assert ages.min() >= 0.0
        assert ages.max() <= max_age + 1e-6


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 5)), max_size=300
    ),
    st.sampled_from([0.25, 0.5, 0.75, 1.0]),
    st.integers(0, 2**31 - 1),
)
def test_eq7_match_counts_cover_every_requested_pair(pairs, sq, seed):
    table = build_match_counts(pairs, sq, np.random.default_rng(seed))
    requested = set(pairs)
    for page_id, server_id in requested:
        assert table[page_id][server_id] >= 1
    # at SQ=1 the counts equal request counts exactly
    if sq == 1.0:
        from collections import Counter

        counts = Counter(pairs)
        for (page_id, server_id), count in counts.items():
            assert table[page_id][server_id] == count


# -- engine determinism ----------------------------------------------------------

@given(st.lists(st.floats(0.0, 1000.0), max_size=60))
def test_engine_processes_any_schedule_in_order(times):
    env = Environment()
    seen = []
    for at in times:
        env.schedule(at, lambda e, t=at: seen.append(t))
    env.run()
    assert seen == sorted(times)


@given(st.integers(0, 2**31 - 1), st.text(min_size=1, max_size=20))
def test_rng_streams_deterministic(seed, name):
    a = RandomStreams(seed).stream(name).integers(0, 2**62, size=5)
    b = RandomStreams(seed).stream(name).integers(0, 2**62, size=5)
    assert np.array_equal(a, b)


# -- distributed broker equivalence ------------------------------------------

@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10**6), st.integers(10, 60))
def test_broker_tree_equals_flat_engine(seed, subscription_count):
    """For any random population, the distributed tree's match counts
    equal the centralized engine's, page for page."""
    from repro.network.topology import build_topology
    from repro.pubsub.matching import MatchingEngine
    from repro.pubsub.overlay import BrokerTree
    from repro.pubsub.pages import Page
    from repro.pubsub.subscriptions import Subscription, keyword_any, topic_is

    generator = np.random.default_rng(seed)
    topology = build_topology(6, generator, extra_nodes=3)
    tree = BrokerTree(topology)
    flat = MatchingEngine()
    topics = ["t0", "t1", "t2"]
    words = ["w0", "w1"]
    for subscriber in range(subscription_count):
        predicates = []
        if generator.random() < 0.8:
            predicates.append(topic_is(topics[generator.integers(3)]))
        if generator.random() < 0.4:
            predicates.append(keyword_any({words[generator.integers(2)]}))
        subscription = Subscription(
            subscriber_id=subscriber,
            proxy_id=int(generator.integers(6)),
            predicates=tuple(predicates),
        )
        tree.subscribe(subscription)
        flat.subscribe(subscription)
    for page_id in range(20):
        page = Page(
            page_id=page_id,
            size=10,
            topic=topics[generator.integers(3)],
            keywords=frozenset({words[generator.integers(2)]}),
        )
        assert tree.match_counts(page) == flat.match_counts(page)
