"""Tests for CacheEntry and CacheStats."""

import pytest

from repro.cache.entry import ACCESS_MODULE, PUSH_MODULE, CacheEntry
from repro.cache.stats import CacheStats


def test_entry_key_is_page_and_version():
    entry = CacheEntry(page_id=3, version=2, size=10, cost=1.0)
    assert entry.key == (3, 2)


def test_entry_validation():
    with pytest.raises(ValueError):
        CacheEntry(page_id=1, version=0, size=0, cost=1.0)
    with pytest.raises(ValueError):
        CacheEntry(page_id=1, version=0, size=10, cost=0.0)
    with pytest.raises(ValueError):
        CacheEntry(page_id=1, version=0, size=10, cost=1.0, module="bogus")


def test_entry_record_access():
    entry = CacheEntry(page_id=1, version=0, size=10, cost=1.0)
    entry.accessed_since_replacement = False
    entry.record_access(at=42.0)
    assert entry.access_count == 1
    assert entry.accessed_since_replacement
    assert entry.last_access_time == 42.0


def test_module_labels():
    push = CacheEntry(page_id=1, version=0, size=1, cost=1.0, module=PUSH_MODULE)
    access = CacheEntry(page_id=2, version=0, size=1, cost=1.0, module=ACCESS_MODULE)
    assert push.module == "push"
    assert access.module == "access"


def test_stats_hit_ratio():
    stats = CacheStats()
    assert stats.hit_ratio == 0.0
    stats.record_request(hit=True, size=10, bucket=0)
    stats.record_request(hit=False, size=10, bucket=0)
    assert stats.requests == 2
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.hit_ratio == 0.5


def test_stats_bytes_accounting():
    stats = CacheStats()
    stats.record_request(hit=True, size=100, bucket=0)
    stats.record_request(hit=False, size=50, bucket=1)
    assert stats.bytes_served_local == 100
    assert stats.bytes_fetched == 50
    assert stats.pages_fetched == 1


def test_stats_stale_counted_as_miss():
    stats = CacheStats()
    stats.record_request(hit=False, size=10, bucket=0, stale=True)
    assert stats.stale_hits == 1
    assert stats.misses == 1


def test_stats_push_accounting():
    stats = CacheStats()
    stats.record_push(stored=True, size=100, transferred=True)
    stats.record_push(stored=False, size=200, transferred=False)
    stats.record_push(stored=False, size=300, transferred=True)  # always-pushing waste
    assert stats.pages_pushed_stored == 1
    assert stats.pages_pushed_rejected == 2
    assert stats.bytes_pushed == 400


def test_stats_bucketing():
    stats = CacheStats()
    stats.record_request(hit=True, size=1, bucket=3)
    stats.record_request(hit=False, size=1, bucket=3)
    stats.record_request(hit=True, size=1, bucket=5)
    assert stats.bucketed_requests == {3: 2, 5: 1}
    assert stats.bucketed_hits == {3: 1, 5: 1}


def test_stats_eviction_accounting():
    stats = CacheStats()
    stats.record_eviction(size=64)
    stats.record_eviction(size=36)
    assert stats.evictions == 2
    assert stats.bytes_evicted == 100


def test_stats_merge():
    a = CacheStats()
    b = CacheStats()
    a.record_request(hit=True, size=10, bucket=0)
    b.record_request(hit=False, size=20, bucket=0)
    b.record_request(hit=True, size=30, bucket=1)
    merged = a.merged_with(b)
    assert merged.requests == 3
    assert merged.hits == 2
    assert merged.bucketed_requests == {0: 2, 1: 1}
    assert merged.bucketed_hits == {0: 1, 1: 1}
    # originals untouched
    assert a.requests == 1 and b.requests == 2
