"""Tests for the addressable min-heap."""

import pytest

from repro.cache.heap import AddressableHeap


def test_empty_heap():
    heap = AddressableHeap()
    assert len(heap) == 0
    assert heap.min_priority() is None
    with pytest.raises(IndexError):
        heap.pop()
    with pytest.raises(IndexError):
        heap.peek()


def test_push_and_pop_in_priority_order():
    heap = AddressableHeap()
    heap.push("b", 2.0)
    heap.push("a", 1.0)
    heap.push("c", 3.0)
    assert [heap.pop()[0] for _ in range(3)] == ["a", "b", "c"]


def test_pop_returns_priority():
    heap = AddressableHeap()
    heap.push("x", 1.5)
    assert heap.pop() == ("x", 1.5)


def test_update_priority_moves_key():
    heap = AddressableHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    heap.push("a", 3.0)  # re-push updates
    assert heap.pop()[0] == "b"
    assert heap.pop() == ("a", 3.0)


def test_contains_and_len():
    heap = AddressableHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    assert "a" in heap and "b" in heap and "c" not in heap
    assert len(heap) == 2
    heap.push("a", 5.0)
    assert len(heap) == 2  # update, not insert


def test_remove_and_discard():
    heap = AddressableHeap()
    heap.push("a", 1.0)
    heap.remove("a")
    assert "a" not in heap
    with pytest.raises(KeyError):
        heap.remove("a")
    heap.discard("a")  # no-op, no raise


def test_removed_key_never_pops():
    heap = AddressableHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    heap.remove("a")
    assert heap.pop()[0] == "b"
    assert len(heap) == 0


def test_priority_lookup():
    heap = AddressableHeap()
    heap.push("a", 4.5)
    assert heap.priority("a") == 4.5
    with pytest.raises(KeyError):
        heap.priority("missing")


def test_peek_does_not_remove():
    heap = AddressableHeap()
    heap.push("a", 1.0)
    assert heap.peek() == ("a", 1.0)
    assert len(heap) == 1


def test_ties_pop_in_insertion_order():
    heap = AddressableHeap()
    for key in "abc":
        heap.push(key, 1.0)
    assert [heap.pop()[0] for _ in range(3)] == ["a", "b", "c"]


def test_negative_priorities_sort_first():
    heap = AddressableHeap()
    heap.push("pos", 1.0)
    heap.push("neg", -5.0)
    heap.push("zero", 0.0)
    assert [heap.pop()[0] for _ in range(3)] == ["neg", "zero", "pos"]


def test_items_and_keys_reflect_live_entries():
    heap = AddressableHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    heap.push("a", 3.0)
    heap.remove("b")
    assert set(heap.keys()) == {"a"}
    assert dict(heap.items()) == {"a": 3.0}


def test_compact_preserves_order():
    heap = AddressableHeap()
    for i in range(50):
        heap.push(i, float(i))
    for i in range(50):
        heap.push(i, float(50 - i))  # invert priorities via updates
    heap.compact()
    popped = [heap.pop()[0] for _ in range(50)]
    assert popped == list(range(49, -1, -1))


def test_maybe_compact_bounds_backing_list():
    heap = AddressableHeap()
    for round_index in range(100):
        for key in range(10):
            heap.push(key, float(round_index * 10 + key))
        heap.maybe_compact()
    assert len(heap._heap) < 200  # bounded despite 1000 pushes


def test_interleaved_operations_stay_consistent():
    heap = AddressableHeap()
    reference = {}
    import random

    rng = random.Random(42)
    for step in range(2000):
        action = rng.random()
        key = rng.randrange(40)
        if action < 0.5:
            priority = rng.uniform(-10, 10)
            heap.push(key, priority)
            reference[key] = priority
        elif action < 0.7 and reference:
            victim = rng.choice(sorted(reference))
            heap.discard(victim)
            reference.pop(victim, None)
        elif reference:
            key, priority = heap.pop()
            expected_min = min(reference.values())
            assert priority == pytest.approx(expected_min)
            assert reference.pop(key) == priority
    assert len(heap) == len(reference)


def test_update_heavy_churn_stays_bounded():
    """Auto-compaction: the backing list never exceeds 2x the live
    population (for heaps past the compaction floor), no matter how
    many priority updates pile up."""
    heap = AddressableHeap()
    live = 200
    for key in range(live):
        heap.push(key, float(key))
    for round_index in range(50):
        for key in range(live):
            heap.push(key, float(round_index * live + key))
        assert len(heap._heap) <= 2 * live
    assert len(heap) == live
    # Ordering survives the rebuilds.
    popped = [heap.pop()[0] for _ in range(live)]
    assert popped == sorted(range(live))


def test_push_pop_churn_stays_bounded():
    heap = AddressableHeap()
    for step in range(5000):
        heap.push(step % 100, float(step))
        if step % 3 == 0:
            heap.pop()
    assert len(heap._heap) <= max(64, 2 * len(heap) + 1)


def test_tiny_heaps_never_auto_compact():
    heap = AddressableHeap()
    for step in range(20):
        heap.push("k", float(step))
    # Below the floor the dead records are left alone (cheapest path).
    assert len(heap._heap) == 20
    assert heap.pop() == ("k", 19.0)
